// E13 — closed-loop autoscaling convergence (the capstone of the elasticity
// work): a skewed workload concentrates on one shard of a 4-node service
// whose per-node ingress bandwidth is finite, so the hot shard's host
// saturates and client p99 degrades. The ClusterAutoscaler scrapes
// bedrock/get_metrics, detects the hot shard from per-provider counter
// deltas, and issues a flip-first split that moves half of the hot range to
// the least-loaded node. Reported (and gated by tools/bench_gate.py against
// bench/baselines/autoscale.json):
//
//   * detect_periods / convergence_periods — control periods until the
//     first split and until the loop goes quiet again (bounded: the loop
//     must converge, not thrash);
//   * client_errors — the zero-client-visible-errors invariant while the
//     reconfiguration runs under full load;
//   * p99_before_us / p99_after_us / p99_recovery_ratio — batched-read tail
//     latency while the shard is hot vs after convergence: the split must
//     restore a balanced tail.
#include "composed/cluster_autoscaler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

using namespace mochi;
using namespace mochi::composed;
using Clock = std::chrono::steady_clock;

namespace {

double p99(std::vector<double> v) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1))];
}

int run_autoscale(const char* json_path) {
    constexpr int k_max_periods = 60;
    const auto k_period = std::chrono::milliseconds(50);

    mercury::LinkModel link;
    link.latency_us = 5.0;
    link.bandwidth_bytes_per_us = 100.0; // finite ingress: a hot node queues
    Cluster cluster{link};
    ElasticKvConfig cfg;
    cfg.num_shards = 8;
    cfg.enable_swim = false;
    auto svc = ElasticKvService::create(
        cluster, {"sim://n0", "sim://n1", "sim://n2", "sim://n3"}, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        return 1;
    }
    auto& kv = **svc;

    // Keys that all route to one shard: the workload's hot set.
    const std::uint32_t hot_shard = kv.shard_of("hot-seed");
    std::vector<std::string> hot_keys;
    for (int i = 0; hot_keys.size() < 32; ++i) {
        auto k = "h" + std::to_string(i);
        if (kv.shard_of(k) == hot_shard) hot_keys.push_back(k);
    }

    auto app = margo::Instance::create(cluster.fabric(), "sim://bench-app").value();
    std::atomic<bool> done{false};
    std::atomic<int> client_errors{0};
    std::mutex samples_mutex;
    std::vector<std::pair<Clock::time_point, double>> samples; // (when, get_multi us)
    std::thread load{[&] {
        ElasticKvClient client{app, kv.controller_address()};
        const std::string value(2048, 'd');
        int round = 0;
        while (!done.load()) {
            std::vector<std::pair<std::string, std::string>> pairs;
            for (const auto& k : hot_keys) pairs.emplace_back(k, value);
            for (int i = 0; i < 8; ++i)
                pairs.emplace_back("b" + std::to_string((round * 8 + i) % 512), value);
            if (auto st = client.put_multi(pairs); !st.ok()) {
                ++client_errors;
                std::fprintf(stderr, "put_multi: %s\n", st.error().message.c_str());
            }
            auto t0 = Clock::now();
            auto got = client.get_multi(hot_keys);
            auto t1 = Clock::now();
            if (!got.has_value()) {
                ++client_errors;
                std::fprintf(stderr, "get_multi: %s\n", got.error().message.c_str());
            } else {
                std::lock_guard lk{samples_mutex};
                samples.emplace_back(
                    t1, std::chrono::duration<double, std::micro>(t1 - t0).count());
            }
            ++round;
        }
    }};

    ClusterAutoscalerConfig acfg;
    acfg.policy.hot_shard_factor = 3.0;
    acfg.policy.min_hot_ops = 32.0;
    acfg.policy.min_total_ops = 8.0;
    acfg.policy.hysteresis = 2;
    acfg.policy.cooldown = 2;
    acfg.policy.max_shards = 16;
    ClusterAutoscaler scaler{cluster, kv, acfg};

    // Drive the loop deterministically, one step per period; converged =
    // at least one split happened and the loop then stayed quiet for a
    // full damping window.
    const int quiet_needed =
        static_cast<int>(acfg.policy.cooldown + acfg.policy.hysteresis) + 1;
    int detect_periods = -1, convergence_periods = -1, quiet = 0;
    Clock::time_point t_detect{}, t_converged{};
    for (int period = 0; period < k_max_periods; ++period) {
        std::this_thread::sleep_for(k_period);
        Action a = scaler.step();
        if (a.kind == ActionKind::None)
            ++quiet;
        else
            quiet = 0;
        if (detect_periods < 0 && scaler.stats().splits >= 1) {
            detect_periods = period + 1;
            t_detect = Clock::now();
        }
        if (detect_periods >= 0 && quiet >= quiet_needed) {
            convergence_periods = period + 1;
            t_converged = Clock::now();
            break;
        }
    }
    // Post-convergence observation window for the recovered tail.
    std::this_thread::sleep_for(std::chrono::seconds(1));
    done.store(true);
    load.join();

    std::vector<double> before, after;
    {
        std::lock_guard lk{samples_mutex};
        for (const auto& [when, us] : samples) {
            if (detect_periods >= 0 && when < t_detect) before.push_back(us);
            if (convergence_periods >= 0 && when > t_converged) after.push_back(us);
        }
    }
    double p99_before = p99(before), p99_after = p99(after);
    double recovery = p99_before > 0 ? p99_after / p99_before : 0;
    auto stats = scaler.stats();

    if (json_path != nullptr) {
        std::FILE* out = std::fopen(json_path, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(out,
                     "{\n  \"metrics\": {\n"
                     "    \"detect_periods\": %d,\n"
                     "    \"convergence_periods\": %d,\n"
                     "    \"splits\": %zu,\n"
                     "    \"failed_actions\": %zu,\n"
                     "    \"client_errors\": %d,\n"
                     "    \"p99_before_us\": %.1f,\n"
                     "    \"p99_after_us\": %.1f,\n"
                     "    \"p99_recovery_ratio\": %.4f,\n"
                     "    \"samples_before\": %zu,\n"
                     "    \"samples_after\": %zu\n"
                     "  }\n}\n",
                     detect_periods, convergence_periods, stats.splits,
                     stats.failed_actions, client_errors.load(), p99_before, p99_after,
                     recovery, before.size(), after.size());
        std::fclose(out);
    }
    std::printf("# E13: detect %d periods, converged %d periods, %zu splits, "
                "%d client errors, p99 %.0f -> %.0f us (ratio %.2f)\n",
                detect_periods, convergence_periods, stats.splits,
                client_errors.load(), p99_before, p99_after, recovery);
    app->shutdown();
    return convergence_periods > 0 && client_errors.load() == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0) return run_autoscale(argv[i + 1]);
    return run_autoscale(nullptr);
}
