// Shutdown-drain latency: how long Instance::shutdown() takes to cancel and
// drain N in-flight forwards. The condition-based drain signals shutdown()
// the moment the last forward exits, so the cost should track the forwards'
// own unwind time instead of a fixed polling cadence (the previous
// implementation slept in 1 ms steps, flooring every shutdown at the poll
// interval regardless of how quickly the forwards resolved).
#include "margo/instance.hpp"

#include <benchmark/benchmark.h>

using namespace mochi;
using namespace std::chrono_literals;

namespace {

void BM_ShutdownWithInflightForwards(benchmark::State& state) {
    const int inflight = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        auto fabric = mercury::Fabric::create();
        auto server = margo::Instance::create(fabric, "sim://server").value();
        auto client = margo::Instance::create(fabric, "sim://client").value();
        // Handlers never respond: every forward stays pending until the
        // shutdown sweep cancels it.
        (void)server->register_rpc("blackhole", margo::k_default_provider_id,
                                   [](const margo::Request&) {});
        std::atomic<int> started{0};
        std::vector<abt::ThreadHandle> handles;
        for (int i = 0; i < inflight; ++i) {
            handles.push_back(client->runtime()->post_thread(
                client->runtime()->primary_pool(), [&client, &started] {
                    ++started;
                    margo::ForwardOptions opts;
                    opts.timeout = 60000ms;
                    (void)client->forward("sim://server", "blackhole", "", opts);
                }));
        }
        while (started.load() < inflight) std::this_thread::sleep_for(1ms);
        state.ResumeTiming();
        client->shutdown(); // cancel + drain all pending forwards
        state.PauseTiming();
        for (auto& h : handles) h.join();
        server->shutdown();
        state.ResumeTiming();
    }
    state.SetLabel(std::to_string(inflight) + " in-flight");
}
BENCHMARK(BM_ShutdownWithInflightForwards)->Arg(0)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ShutdownIdle(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        auto fabric = mercury::Fabric::create();
        auto inst = margo::Instance::create(fabric, "sim://solo").value();
        state.ResumeTiming();
        inst->shutdown();
    }
}
BENCHMARK(BM_ShutdownIdle)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
