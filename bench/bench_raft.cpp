// E6 — Mochi-RAFT: replicated-Yokan put throughput/latency vs. replication
// factor, and leader-failover time. Shapes to reproduce: throughput
// decreases with replication factor (more acks per commit); failover is
// bounded by the election timeout.
#include "composed/replicated_kv.hpp"

#include <cstdio>
#include <numeric>
#include <thread>

using namespace mochi;
using namespace mochi::composed;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

raft::RaftConfig bench_config() {
    raft::RaftConfig cfg;
    cfg.election_timeout_min = 100ms;
    cfg.election_timeout_max = 200ms;
    cfg.heartbeat_period = 25ms;
    return cfg;
}

struct ClusterOf {
    std::shared_ptr<mercury::Fabric> fabric = mercury::Fabric::create();
    std::vector<std::string> addrs;
    std::vector<KvReplica> replicas;
    margo::InstancePtr client;

    explicit ClusterOf(int n) {
        for (int i = 0; i < n; ++i) {
            addrs.push_back("sim://raft" + std::to_string(i));
            remi::SimFileStore::destroy_node(addrs.back());
        }
        for (int i = 0; i < n; ++i)
            replicas.push_back(
                KvReplica::create(fabric, addrs[i], addrs, 7, bench_config()).value());
        client = margo::Instance::create(fabric, "sim://bench-client").value();
    }
    ~ClusterOf() {
        client->shutdown();
        for (auto& r : replicas) r.shutdown();
    }
    int wait_leader() {
        auto deadline = Clock::now() + 10s;
        while (Clock::now() < deadline) {
            for (std::size_t i = 0; i < replicas.size(); ++i)
                if (replicas[i].raft && replicas[i].raft->role() == raft::Role::Leader)
                    return static_cast<int>(i);
            std::this_thread::sleep_for(5ms);
        }
        return -1;
    }
};

} // namespace

int main() {
    std::printf("# E6a: replicated put throughput/latency vs replication factor\n");
    std::printf("%6s %10s %12s %12s %12s\n", "N", "puts", "puts_per_s", "avg_lat_us",
                "p99_lat_us");
    for (int n : {1, 3, 5}) {
        ClusterOf c{n};
        int leader = c.wait_leader();
        if (leader < 0) {
            std::fprintf(stderr, "no leader elected\n");
            return 1;
        }
        ReplicatedKvClient kv{c.client, c.addrs, 7};
        (void)kv.put("warmup", "x");
        constexpr int k_ops = 300;
        std::vector<double> lat_us;
        lat_us.reserve(k_ops);
        auto t0 = Clock::now();
        for (int i = 0; i < k_ops; ++i) {
            auto s0 = Clock::now();
            if (!kv.put("key" + std::to_string(i), std::string(128, 'v')).ok()) {
                std::fprintf(stderr, "put failed\n");
                return 1;
            }
            lat_us.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() - s0).count());
        }
        double secs = std::chrono::duration<double>(Clock::now() - t0).count();
        std::sort(lat_us.begin(), lat_us.end());
        double avg = std::accumulate(lat_us.begin(), lat_us.end(), 0.0) / k_ops;
        double p99 = lat_us[static_cast<std::size_t>(k_ops * 0.99)];
        std::printf("%6d %10d %12.0f %12.1f %12.1f\n", n, k_ops, k_ops / secs, avg, p99);
    }

    std::printf("\n# E6b: leader failover time (3 replicas, election timeout 100-200 ms)\n");
    std::printf("%8s %16s\n", "trial", "failover_ms");
    std::vector<double> failovers;
    for (int trial = 0; trial < 3; ++trial) {
        ClusterOf c{3};
        int leader = c.wait_leader();
        if (leader < 0) return 1;
        ReplicatedKvClient kv{c.client, c.addrs, 7};
        (void)kv.put("k", "v");
        auto t0 = Clock::now();
        c.replicas[leader].shutdown();
        // Time until the service answers again (client retries internally).
        auto v = kv.get("k");
        double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        if (!v) {
            std::fprintf(stderr, "recovery failed: %s\n", v.error().message.c_str());
            return 1;
        }
        failovers.push_back(ms);
        std::printf("%8d %16.0f\n", trial, ms);
    }
    double avg_failover =
        std::accumulate(failovers.begin(), failovers.end(), 0.0) / failovers.size();
    std::printf("# avg failover %.0f ms (expected: bounded by election timeout + client "
                "retry backoff)\n",
                avg_failover);

    std::printf("\n# E6c: snapshot effect — sustained puts with compaction every 64 entries\n");
    {
        auto fabric = mercury::Fabric::create();
        std::vector<std::string> addrs = {"sim://s0", "sim://s1", "sim://s2"};
        for (auto& a : addrs) remi::SimFileStore::destroy_node(a);
        auto cfg = bench_config();
        cfg.snapshot_threshold = 64;
        std::vector<KvReplica> replicas;
        for (auto& a : addrs)
            replicas.push_back(KvReplica::create(fabric, a, addrs, 7, cfg).value());
        auto cm = margo::Instance::create(fabric, "sim://c").value();
        ReplicatedKvClient kv{cm, addrs, 7};
        auto t0 = Clock::now();
        constexpr int k_ops = 400;
        for (int i = 0; i < k_ops; ++i)
            (void)kv.put("k" + std::to_string(i % 32), std::string(64, 'v'));
        double secs = std::chrono::duration<double>(Clock::now() - t0).count();
        std::size_t log_entries = 0;
        for (auto& r : replicas)
            log_entries = std::max(log_entries, r.raft->log_size_entries());
        std::printf("%d puts at %.0f puts/s; max in-memory log after compaction: %zu "
                    "entries (<< %d commands)\n",
                    k_ops, k_ops / secs, log_entries, k_ops);
        cm->shutdown();
        for (auto& r : replicas) r.shutdown();
    }
    return 0;
}
