// E1 — §4's "no engineering cost" claim, quantified: RPC round-trip cost
// with monitoring disabled, with the default statistics monitor, with an
// extra custom monitor injected, and with fast periodic sampling. The paper
// claims the infrastructure is cheap enough to leave on; the shape to
// reproduce is a small relative overhead that shrinks as payloads grow.
#include "margo/instance.hpp"

#include <benchmark/benchmark.h>

using namespace mochi;

namespace {

enum class Mode : int { Off = 0, Stats = 1, StatsPlusCustom = 2, FastSampling = 3 };

struct NullMonitor : margo::Monitor {
    std::atomic<std::uint64_t> events{0};
    void on_forward_start(const margo::CallContext&) override { ++events; }
    void on_forward_complete(const margo::CallContext&, bool) override { ++events; }
    void on_request_received(const margo::CallContext&) override { ++events; }
    void on_handler_start(const margo::CallContext&) override { ++events; }
    void on_handler_complete(const margo::CallContext&) override { ++events; }
};

struct World {
    std::shared_ptr<mercury::Fabric> fabric = mercury::Fabric::create();
    margo::InstancePtr server;
    margo::InstancePtr client;

    explicit World(Mode mode) {
        auto cfg = json::Value::object();
        if (mode == Mode::FastSampling)
            cfg["monitoring"]["sampling_period_ms"] = 1;
        server = margo::Instance::create(fabric, "sim://server", cfg).value();
        client = margo::Instance::create(fabric, "sim://client", cfg).value();
        if (mode == Mode::Off) {
            server->set_monitoring_enabled(false);
            client->set_monitoring_enabled(false);
        }
        if (mode == Mode::StatsPlusCustom) {
            server->add_monitor(std::make_shared<NullMonitor>());
            client->add_monitor(std::make_shared<NullMonitor>());
        }
        (void)server->register_rpc("echo", margo::k_default_provider_id,
                                   [](const margo::Request& req) {
                                       req.respond(req.payload());
                                   });
    }
    ~World() {
        client->shutdown();
        server->shutdown();
    }
};

void BM_MonitoringOverhead(benchmark::State& state) {
    World world{static_cast<Mode>(state.range(0))};
    std::string payload(static_cast<std::size_t>(state.range(1)), 'x');
    for (auto _ : state) {
        auto r = world.client->forward("sim://server", "echo", payload);
        if (!r) state.SkipWithError("forward failed");
    }
    static const char* names[] = {"off", "stats", "stats+custom", "fast-sampling"};
    state.SetLabel(names[state.range(0)]);
}
// Sweep mode x payload.
BENCHMARK(BM_MonitoringOverhead)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Args({2, 65536});

void BM_StatisticsDump(benchmark::State& state) {
    // Cost of rendering the Listing-1 JSON at run time, vs. number of
    // distinct RPCs tracked.
    World world{Mode::Stats};
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        (void)world.server->register_rpc("op" + std::to_string(i), 3,
                                         [](const margo::Request& req) { req.respond(""); });
        margo::ForwardOptions opts;
        opts.provider_id = 3;
        (void)world.client->forward("sim://server", "op" + std::to_string(i), "", opts);
    }
    for (auto _ : state) {
        auto doc = world.server->monitoring_json();
        benchmark::DoNotOptimize(doc);
    }
}
BENCHMARK(BM_StatisticsDump)->Arg(1)->Arg(32)->Arg(256);

} // namespace

BENCHMARK_MAIN();
