// Ablation for DESIGN.md decision 2: ULT-aware blocking. Margo handlers run
// as ULTs; when a handler blocks (on I/O, a nested RPC, a sleep), the
// execution stream picks up other work. This bench compares a server whose
// handlers block cooperatively (ULT-aware sleep: the modeled I/O) against
// one whose handlers block the OS thread, under concurrent load on a single
// execution stream — the property that makes Figure 2's shared-runtime
// design viable.
// `--json FILE` writes a flat {"metrics": {...}} document consumed by the
// bench-regression gate (tools/bench_gate.py).
#include "margo/instance.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <thread>

using namespace mochi;
using Clock = std::chrono::steady_clock;

namespace {

double run(bool ult_aware, int concurrency, int ops_per_ult,
           std::chrono::microseconds service_time) {
    auto fabric = mercury::Fabric::create();
    auto server = margo::Instance::create(fabric, "sim://server").value();
    auto client_cfg = json::Value::parse(R"({"argobots": {
        "pools": [{"name": "p", "type": "fifo_wait"}],
        "xstreams": [{"name": "x0", "scheduler": {"pools": ["p"]}},
                      {"name": "x1", "scheduler": {"pools": ["p"]}}]}})")
                          .value();
    auto client = margo::Instance::create(fabric, "sim://client", client_cfg).value();
    auto rt_server = server->runtime();
    (void)server->register_rpc(
        "io", margo::k_default_provider_id,
        [rt_server, ult_aware, service_time](const margo::Request& req) {
            if (ult_aware)
                rt_server->sleep_for(service_time); // suspends the ULT only
            else
                std::this_thread::sleep_for(service_time); // blocks the ES
            req.respond("");
        });
    std::atomic<std::uint64_t> done{0};
    auto rt = client->runtime();
    auto t0 = Clock::now();
    std::vector<abt::ThreadHandle> handles;
    for (int u = 0; u < concurrency; ++u) {
        handles.push_back(rt->post_thread(rt->primary_pool(), [&] {
            margo::ForwardOptions opts;
            opts.timeout = std::chrono::milliseconds(30000);
            for (int i = 0; i < ops_per_ult; ++i)
                if (client->forward("sim://server", "io", "", opts)) ++done;
        }));
    }
    for (auto& h : handles) h.join();
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    client->shutdown();
    server->shutdown();
    return static_cast<double>(done.load()) / secs;
}

} // namespace

int main(int argc, char** argv) {
    using namespace std::chrono_literals;
    const char* json_path = nullptr;
    for (int i = 1; i < argc - 1; ++i)
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    std::printf("# ULT-aware blocking ablation: 1 server ES, handlers 'do I/O' for 1 ms\n");
    std::printf("%12s %18s %18s %10s\n", "concurrency", "ult_aware_ops_s",
                "blocking_ops_s", "ratio");
    std::map<int, std::pair<double, double>> results;
    for (int conc : {1, 4, 16}) {
        double ult = run(/*ult_aware=*/true, conc, 40, 1000us);
        double blk = run(/*ult_aware=*/false, conc, 40, 1000us);
        results[conc] = {ult, blk};
        std::printf("%12d %18.0f %18.0f %9.1fx\n", conc, ult, blk, ult / blk);
    }
    std::printf("# expected shape: ~1x at concurrency 1, growing toward Nx with "
                "concurrency (blocked ESs serialize handlers)\n");
    if (json_path) {
        std::ofstream out{json_path};
        out << "{\n  \"metrics\": {\n";
        for (const auto& [conc, r] : results)
            out << "    \"ult_aware_ops_s_c" << conc << "\": " << r.first << ",\n"
                << "    \"blocking_ops_s_c" << conc << "\": " << r.second << ",\n";
        out << "    \"ult_ratio_c16\": " << results[16].first / results[16].second
            << "\n  }\n}\n";
    }
    return 0;
}
