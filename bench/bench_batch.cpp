// E10: client-side op coalescing. Measures yokan put throughput vs batch
// size — N ops packed into one put_multi RPC (one request, one vectored
// server execution, one reply) against N individual put round trips — plus
// the pipelined auto-batcher. The headline gated metric is speedup_32
// (batch 32 vs batch 1), which the bench-regression harness
// (tools/bench_gate.py) requires to stay >= 3x.
//
// Plain main like bench_ult; `--json FILE` additionally writes a flat
// {"metrics": {...}} document for the gate.
#include "yokan/provider.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace mochi;
using Clock = std::chrono::steady_clock;

namespace {

struct World {
    std::shared_ptr<mercury::Fabric> fabric = mercury::Fabric::create();
    margo::InstancePtr server;
    margo::InstancePtr client;
    std::unique_ptr<yokan::Provider> provider;

    World() {
        // Two server execution streams so the vectored handler's
        // parallel_for actually overlaps op execution.
        auto cfg = json::Value::parse(R"({"argobots": {
            "pools": [{"name": "p", "type": "fifo_wait"}],
            "xstreams": [{"name": "x0", "scheduler": {"pools": ["p"]}},
                          {"name": "x1", "scheduler": {"pools": ["p"]}}]}})")
                       .value();
        server = margo::Instance::create(fabric, "sim://server", cfg).value();
        client = margo::Instance::create(fabric, "sim://client").value();
        provider = std::make_unique<yokan::Provider>(server, 1, yokan::ProviderConfig{});
    }
    ~World() {
        client->shutdown();
        server->shutdown();
    }
};

std::vector<std::pair<std::string, std::string>> make_pairs(std::size_t n,
                                                            std::size_t value_size) {
    std::vector<std::pair<std::string, std::string>> pairs;
    pairs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pairs.emplace_back("key" + std::to_string(i), std::string(value_size, 'v'));
    return pairs;
}

/// ops/sec for `total_ops` puts issued in batches of `batch`.
double run_batched(std::size_t batch, std::size_t total_ops, std::size_t value_size) {
    World w;
    yokan::Database db{w.client, "sim://server", 1};
    auto pairs = make_pairs(total_ops, value_size);
    // Warm up the path (RPC registration lookups, first allocations).
    (void)db.put_multi(make_pairs(std::min<std::size_t>(batch, 8), value_size));
    auto t0 = Clock::now();
    std::size_t done = 0;
    if (batch == 1) {
        for (const auto& [k, v] : pairs)
            if (db.put(k, v).ok()) ++done;
    } else {
        for (std::size_t at = 0; at < pairs.size(); at += batch) {
            std::vector<std::pair<std::string, std::string>> slice(
                pairs.begin() + static_cast<std::ptrdiff_t>(at),
                pairs.begin() +
                    static_cast<std::ptrdiff_t>(std::min(at + batch, pairs.size())));
            auto n = slice.size();
            if (db.put_multi(slice).ok()) done += n;
        }
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (done != total_ops) std::fprintf(stderr, "warning: %zu/%zu puts ok\n", done, total_ops);
    return static_cast<double>(done) / secs;
}

/// ops/sec through the auto-batcher (async pipelined flushes).
double run_batcher(std::size_t max_ops, std::size_t total_ops, std::size_t value_size) {
    World w;
    yokan::Database db{w.client, "sim://server", 1};
    auto pairs = make_pairs(total_ops, value_size);
    yokan::Batcher::Options opts;
    opts.max_ops = max_ops;
    auto t0 = Clock::now();
    {
        yokan::Batcher batcher{db, opts};
        for (const auto& [k, v] : pairs) batcher.put(k, v);
        auto st = batcher.drain();
        if (!st.ok()) std::fprintf(stderr, "warning: drain failed: %s\n", st.error().message.c_str());
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(total_ops) / secs;
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i < argc - 1; ++i)
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

    constexpr std::size_t k_total_ops = 4096;
    constexpr std::size_t k_value_size = 64;

    std::printf("# E10: yokan put throughput vs batch size (%zu ops, %zu-byte values)\n",
                k_total_ops, k_value_size);
    std::printf("%10s %14s %10s\n", "batch", "ops_per_s", "speedup");
    std::map<std::size_t, double> ops_s;
    for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32}, std::size_t{64}}) {
        ops_s[batch] = run_batched(batch, k_total_ops, k_value_size);
        std::printf("%10zu %14.0f %9.1fx\n", batch, ops_s[batch], ops_s[batch] / ops_s[1]);
    }
    double batcher = run_batcher(32, k_total_ops, k_value_size);
    std::printf("%10s %14.0f %9.1fx   (auto-batcher, max_ops=32, async flushes)\n",
                "batcher", batcher, batcher / ops_s[1]);
    double speedup_32 = ops_s[32] / ops_s[1];
    std::printf("# speedup_32 = %.2fx (bench_gate requires >= 3x)\n", speedup_32);

    if (json_path) {
        std::ofstream out{json_path};
        out << "{\n  \"metrics\": {\n";
        for (const auto& [batch, v] : ops_s)
            out << "    \"yokan_put_ops_s_batch_" << batch << "\": " << v << ",\n";
        out << "    \"yokan_put_ops_s_batcher_32\": " << batcher << ",\n";
        out << "    \"speedup_32\": " << speedup_32 << "\n  }\n}\n";
    }
    return 0;
}
