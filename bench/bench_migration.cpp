// E3 — §6 Observation 4: "[RDMA] is more efficient for large files. [Chunked
// RPCs are] more efficient when sending multiple small files, since they can
// be packed together into larger chunks and the transfer of chunks can be
// pipelined."
//
// This harness migrates a fixed 16 MiB dataset shaped as (N files x S bytes)
// with both REMI methods over a modeled HPC link (2 us/message latency,
// 10 GB/s bandwidth) and reports the crossover.
#include "remi/provider.hpp"

#include <cstdio>

using namespace mochi;

namespace {

struct MigrationWorld {
    std::shared_ptr<mercury::Fabric> fabric;
    margo::InstancePtr src;
    margo::InstancePtr dst;
    std::unique_ptr<remi::Provider> dst_provider;
    std::shared_ptr<remi::SimFileStore> src_store;

    MigrationWorld() {
        mercury::LinkModel link;
        link.latency_us = 2.0;                  // per-message overhead
        link.bandwidth_bytes_per_us = 10'000.0; // 10 GB/s
        fabric = mercury::Fabric::create(link);
        remi::SimFileStore::destroy_node("sim://src");
        remi::SimFileStore::destroy_node("sim://dst");
        src = margo::Instance::create(fabric, "sim://src").value();
        dst = margo::Instance::create(fabric, "sim://dst").value();
        dst_provider = std::make_unique<remi::Provider>(dst, 1);
        src_store = remi::SimFileStore::for_node("sim://src");
    }
    ~MigrationWorld() {
        dst_provider.reset();
        src->shutdown();
        dst->shutdown();
    }
};

} // namespace

int main() {
    std::printf("# E3: REMI migration, RDMA-per-file vs pipelined chunks\n");
    std::printf("# dataset 16 MiB, link: 2 us/msg + 10 GB/s, chunk 1 MiB, pipeline 4\n");
    std::printf("%10s %12s | %10s %10s | %10s %10s | %s\n", "files", "file_size", "rdma_ms",
                "rdma_MBps", "chunk_ms", "chunk_MBps", "winner");

    constexpr std::size_t k_total = 16u << 20;
    int crossover_logged = 0;
    const char* prev_winner = nullptr;
    for (std::size_t files : {4096u, 1024u, 256u, 64u, 16u, 4u, 1u}) {
        std::size_t file_size = k_total / files;
        double ms[2] = {0, 0};
        for (int method = 0; method < 2; ++method) {
            MigrationWorld world;
            for (std::size_t i = 0; i < files; ++i) {
                char name[32];
                std::snprintf(name, sizeof name, "f%06zu", i);
                (void)world.src_store->write("/data/" + std::string(name),
                                             std::string(file_size, 'd'));
            }
            auto fileset = remi::Fileset::scan(*world.src_store, "/data/");
            remi::MigrationOptions opts;
            opts.method = method == 0 ? remi::Method::Rdma : remi::Method::Chunks;
            opts.chunk_size = 1u << 20;
            opts.pipeline_width = 4;
            auto stats =
                remi::migrate(world.src, world.src_store, fileset, "sim://dst", 1, opts);
            if (!stats) {
                std::fprintf(stderr, "migration failed: %s\n", stats.error().message.c_str());
                return 1;
            }
            ms[method] = stats->duration_us / 1000.0;
        }
        const char* winner = ms[0] < ms[1] ? "rdma" : "chunks";
        if (prev_winner && std::string(prev_winner) != winner) ++crossover_logged;
        prev_winner = winner;
        double mb = static_cast<double>(k_total) / (1 << 20);
        std::printf("%10zu %12zu | %10.2f %10.1f | %10.2f %10.1f | %s\n", files, file_size,
                    ms[0], mb / (ms[0] / 1000.0), ms[1], mb / (ms[1] / 1000.0), winner);
    }
    std::printf("# crossovers observed: %d (paper's claim: chunks win for many small "
                "files, rdma wins for large files)\n",
                crossover_logged);

    // Secondary sweep: chunk size sensitivity for the many-small-files case.
    std::printf("\n# E3b: chunk-size sensitivity (4096 files x 4 KiB)\n");
    std::printf("%12s %10s %12s\n", "chunk_size", "ms", "messages");
    for (std::size_t chunk : {64u << 10, 256u << 10, 1u << 20, 4u << 20}) {
        MigrationWorld world;
        for (std::size_t i = 0; i < 4096; ++i) {
            char name[32];
            std::snprintf(name, sizeof name, "f%06zu", i);
            (void)world.src_store->write("/data/" + std::string(name),
                                         std::string(4096, 'd'));
        }
        auto fileset = remi::Fileset::scan(*world.src_store, "/data/");
        remi::MigrationOptions opts;
        opts.method = remi::Method::Chunks;
        opts.chunk_size = chunk;
        auto stats = remi::migrate(world.src, world.src_store, fileset, "sim://dst", 1, opts);
        if (!stats) return 1;
        std::printf("%12zu %10.2f %12zu\n", chunk, stats->duration_us / 1000.0,
                    stats->messages);
    }

    // Pipeline-width ablation.
    std::printf("\n# E3c: pipeline width ablation (1024 files x 16 KiB, 256 KiB chunks)\n");
    std::printf("%8s %10s\n", "width", "ms");
    for (int width : {1, 2, 4, 8}) {
        MigrationWorld world;
        for (std::size_t i = 0; i < 1024; ++i) {
            char name[32];
            std::snprintf(name, sizeof name, "f%06zu", i);
            (void)world.src_store->write("/data/" + std::string(name),
                                         std::string(16384, 'd'));
        }
        auto fileset = remi::Fileset::scan(*world.src_store, "/data/");
        remi::MigrationOptions opts;
        opts.method = remi::Method::Chunks;
        opts.chunk_size = 256u << 10;
        opts.pipeline_width = width;
        auto stats = remi::migrate(world.src, world.src_store, fileset, "sim://dst", 1, opts);
        if (!stats) return 1;
        std::printf("%8d %10.2f\n", width, stats->duration_us / 1000.0);
    }
    return 0;
}
