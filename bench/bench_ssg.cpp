// E5 — SSG/SWIM behaviour: failure-detection latency (crash -> first member
// notices) and dissemination latency (crash -> every member's view is
// updated), vs. group size and protocol parameters. The shapes to reproduce
// (SWIM's properties): detection bounded by O(period x suspicion), roughly
// independent of group size; dissemination grows slowly (gossip).
#include "ssg/group.hpp"

#include <cstdio>
#include <thread>

using namespace mochi;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

struct Result {
    double detect_ms = -1;   ///< first member's view drops the victim
    double disseminate_ms = -1; ///< all members' views drop the victim
};

Result run_once(std::size_t group_size, const ssg::GroupConfig& cfg) {
    auto fabric = mercury::Fabric::create();
    std::vector<std::string> addrs;
    for (std::size_t i = 0; i < group_size; ++i)
        addrs.push_back("sim://g" + std::to_string(i));
    std::vector<margo::InstancePtr> instances;
    std::vector<std::shared_ptr<ssg::Group>> groups;
    for (auto& a : addrs) instances.push_back(margo::Instance::create(fabric, a).value());
    for (std::size_t i = 0; i < group_size; ++i)
        groups.push_back(ssg::Group::create(instances[i], "bench", addrs, cfg).value());

    // Let the protocol settle.
    std::this_thread::sleep_for(4 * cfg.swim_period);

    // Hard-crash the last member.
    const std::string victim = addrs.back();
    auto t0 = Clock::now();
    instances.back()->shutdown();

    Result r;
    auto gone_from = [&](std::size_t i) {
        auto v = groups[i]->view();
        return std::find(v.members.begin(), v.members.end(), victim) == v.members.end();
    };
    auto deadline = t0 + 30s;
    while (Clock::now() < deadline) {
        std::size_t gone = 0;
        for (std::size_t i = 0; i + 1 < group_size; ++i)
            if (gone_from(i)) ++gone;
        if (gone > 0 && r.detect_ms < 0)
            r.detect_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        if (gone == group_size - 1) {
            r.disseminate_ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
            break;
        }
        std::this_thread::sleep_for(2ms);
    }
    for (std::size_t i = 0; i + 1 < group_size; ++i) groups[i]->leave();
    groups.clear();
    for (std::size_t i = 0; i + 1 < group_size; ++i) instances[i]->shutdown();
    return r;
}

} // namespace

int main() {
    std::printf("# E5a: SWIM failure detection vs group size\n");
    std::printf("# period 50 ms, ping timeout 25 ms, suspicion 3 periods, fanout 2\n");
    std::printf("%8s %12s %16s\n", "members", "detect_ms", "disseminate_ms");
    ssg::GroupConfig cfg;
    cfg.swim_period = 50ms;
    cfg.ping_timeout = 25ms;
    cfg.suspicion_periods = 3;
    cfg.ping_req_fanout = 2;
    for (std::size_t n : {4u, 8u, 16u, 32u}) {
        auto r = run_once(n, cfg);
        std::printf("%8zu %12.1f %16.1f\n", n, r.detect_ms, r.disseminate_ms);
    }

    std::printf("\n# E5b: detection latency vs protocol period (8 members)\n");
    std::printf("%12s %12s %16s\n", "period_ms", "detect_ms", "disseminate_ms");
    for (auto period : {25ms, 50ms, 100ms, 200ms}) {
        ssg::GroupConfig c;
        c.swim_period = period;
        c.ping_timeout = period / 2;
        c.suspicion_periods = 3;
        auto r = run_once(8, c);
        std::printf("%12lld %12.1f %16.1f\n",
                    static_cast<long long>(period.count()), r.detect_ms, r.disseminate_ms);
    }

    std::printf("\n# E5c: detection latency vs suspicion periods (8 members, 50 ms)\n");
    std::printf("%12s %12s %16s\n", "suspicion", "detect_ms", "disseminate_ms");
    for (int susp : {1, 2, 4, 8}) {
        ssg::GroupConfig c;
        c.swim_period = 50ms;
        c.ping_timeout = 25ms;
        c.suspicion_periods = susp;
        auto r = run_once(8, c);
        std::printf("%12d %12.1f %16.1f\n", susp, r.detect_ms, r.disseminate_ms);
    }
    std::printf("# expected shape: detection ~ period x (suspicion + O(1)), flat in group "
                "size; dissemination adds a few gossip rounds\n");
    return 0;
}
