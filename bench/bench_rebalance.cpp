// E4 — Pufferscale rebalancing quality and cost. Reproduces the paper's
// description of [24]: the planner optimizes "load balance ..., data
// balance ..., rebalancing time, or a compromise between these three
// objectives". Tables: scale-up/scale-down balance quality; the Pareto
// tradeoff as the migration-time weight sweeps; planning scalability.
#include "pufferscale/rebalancer.hpp"

#include <chrono>
#include <cstdio>
#include <random>

using namespace mochi;
using namespace mochi::pufferscale;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<Resource> make_resources(int count, int nodes, unsigned seed) {
    std::mt19937 rng{seed};
    std::lognormal_distribution<double> load_dist{2.0, 1.0};
    std::lognormal_distribution<double> size_dist{5.0, 1.5};
    std::vector<Resource> out;
    for (int i = 0; i < count; ++i)
        out.push_back(Resource{"r" + std::to_string(i), "n" + std::to_string(i % nodes),
                               load_dist(rng), size_dist(rng)});
    return out;
}

std::vector<std::string> node_names(int n) {
    std::vector<std::string> out;
    for (int i = 0; i < n; ++i) out.push_back("n" + std::to_string(i));
    return out;
}

void report(const char* label, const Plan& plan) {
    std::printf("%-24s %7zu %12.0f | %9.3f -> %6.3f | %9.3f -> %6.3f\n", label,
                plan.moves.size(), plan.after.bytes_moved, plan.before.load_imbalance,
                plan.after.load_imbalance, plan.before.data_imbalance,
                plan.after.data_imbalance);
}

} // namespace

int main() {
    std::printf("# E4a: rescaling quality (64 lognormal resources)\n");
    std::printf("%-24s %7s %12s | %20s | %20s\n", "scenario", "moves", "bytes_moved",
                "load imb before->after", "data imb before->after");
    {
        auto rs = make_resources(64, 8, 1);
        report("scale-up 8 -> 12", *plan_rescale(rs, node_names(12), {}));
        report("scale-up 8 -> 16", *plan_rescale(rs, node_names(16), {}));
        report("scale-down 8 -> 6", *plan_rescale(rs, node_names(6), {}));
        report("scale-down 8 -> 4", *plan_rescale(rs, node_names(4), {}));
        report("rebalance in place", *plan_rescale(rs, node_names(8), {}));
    }

    std::printf("\n# E4b: objective-weight sweep (the load/data/time compromise)\n");
    std::printf("%12s %7s %14s %12s %12s\n", "w_time", "moves", "bytes_moved", "load_imb",
                "data_imb");
    {
        auto rs = make_resources(64, 4, 2);
        for (double w_time : {0.0, 0.1, 0.5, 2.0, 10.0}) {
            Objectives obj;
            obj.w_time = w_time;
            auto plan = plan_rescale(rs, node_names(8), obj);
            std::printf("%12.1f %7zu %14.0f %12.3f %12.3f\n", w_time, plan->moves.size(),
                        plan->after.bytes_moved, plan->after.load_imbalance,
                        plan->after.data_imbalance);
        }
        std::printf("# expected shape: higher w_time -> fewer bytes moved, worse balance "
                    "(Pareto front)\n");
    }

    std::printf("\n# E4c: load-only vs data-only objectives\n");
    std::printf("%-16s %12s %12s\n", "objective", "load_imb", "data_imb");
    {
        auto rs = make_resources(64, 4, 3);
        Objectives load_only;
        load_only.w_data = 0;
        load_only.w_time = 0;
        Objectives data_only;
        data_only.w_load = 0;
        data_only.w_time = 0;
        auto pl = plan_rescale(rs, node_names(8), load_only);
        auto pd = plan_rescale(rs, node_names(8), data_only);
        std::printf("%-16s %12.3f %12.3f\n", "load only", pl->after.load_imbalance,
                    pl->after.data_imbalance);
        std::printf("%-16s %12.3f %12.3f\n", "data only", pd->after.load_imbalance,
                    pd->after.data_imbalance);
    }

    std::printf("\n# E4d: planning time vs problem size\n");
    std::printf("%12s %8s %12s %10s\n", "resources", "nodes", "plan_ms", "moves");
    for (int count : {64, 256, 1024}) {
        auto rs = make_resources(count, 8, 4);
        auto t0 = Clock::now();
        auto plan = plan_rescale(rs, node_names(12), {});
        double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        std::printf("%12d %8d %12.2f %10zu\n", count, 12, ms, plan->moves.size());
    }
    return 0;
}
