// E7 — §7 Observation 9: checkpoint/restore through Bedrock as the
// bottom-up resilience baseline. Tables: checkpoint and restore cost vs.
// database size, and end-to-end crash-recovery time (provision a fresh
// provider + restore from the PFS) vs. database size.
#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "remi/provider.hpp"
#include "yokan/provider.hpp"

#include <cstdio>

using namespace mochi;
using Clock = std::chrono::steady_clock;

namespace {

json::Value node_config() {
    return json::Value::parse(R"({
      "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
      "providers": [
        {"name": "remi", "type": "remi", "provider_id": 1},
        {"name": "kv", "type": "yokan", "provider_id": 42,
         "config": {"name": "db"}, "dependencies": {"remi": "remi"}}
      ]
    })").value();
}

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

} // namespace

int main() {
    yokan::register_module();
    remi::register_module();

    std::printf("# E7a: checkpoint/restore cost vs database size (128-byte values)\n");
    std::printf("%10s %12s %14s %12s\n", "keys", "ckpt_ms", "restore_ms", "ckpt_MiB");
    for (int keys : {1000, 10000, 50000}) {
        auto fabric = mercury::Fabric::create();
        remi::SimFileStore::destroy_node("sim://n1");
        auto proc = bedrock::Process::spawn(fabric, "sim://n1", node_config()).value();
        auto client = margo::Instance::create(fabric, "sim://client").value();
        yokan::Database db{client, "sim://n1", 42};
        std::vector<std::pair<std::string, std::string>> batch;
        for (int i = 0; i < keys; ++i) {
            batch.emplace_back("key" + std::to_string(i), std::string(128, 'v'));
            if (batch.size() == 500 || i == keys - 1) {
                (void)db.put_multi(batch);
                batch.clear();
            }
        }
        bedrock::Client bc{client};
        auto handle = bc.makeServiceHandle("sim://n1");
        std::string path = "/ckpt/bench-" + std::to_string(keys);
        auto t0 = Clock::now();
        if (!handle.checkpointProvider("kv", path).ok()) return 1;
        double ckpt_ms = ms_since(t0);
        double mib = static_cast<double>(remi::SimFileStore::pfs()->read(path)->size()) /
                     (1 << 20);
        t0 = Clock::now();
        if (!handle.restoreProvider("kv", path).ok()) return 1;
        double restore_ms = ms_since(t0);
        std::printf("%10d %12.2f %14.2f %12.2f\n", keys, ckpt_ms, restore_ms, mib);
        client->shutdown();
        proc->shutdown();
    }

    std::printf("\n# E7b: crash recovery time = start replacement provider + restore\n");
    std::printf("%10s %16s\n", "keys", "recovery_ms");
    for (int keys : {1000, 10000, 50000}) {
        auto fabric = mercury::Fabric::create();
        remi::SimFileStore::destroy_node("sim://n1");
        remi::SimFileStore::destroy_node("sim://n2");
        auto n1 = bedrock::Process::spawn(fabric, "sim://n1", node_config()).value();
        auto spare_cfg = json::Value::parse(
                             R"({"libraries": {"yokan": "libyokan.so",
                                  "remi": "libremi.so"},
                                  "providers": [{"name": "remi", "type": "remi",
                                                  "provider_id": 1}]})")
                             .value();
        auto n2 = bedrock::Process::spawn(fabric, "sim://n2", spare_cfg).value();
        auto client = margo::Instance::create(fabric, "sim://client").value();
        yokan::Database db{client, "sim://n1", 42};
        std::vector<std::pair<std::string, std::string>> batch;
        for (int i = 0; i < keys; ++i) {
            batch.emplace_back("key" + std::to_string(i), std::string(128, 'v'));
            if (batch.size() == 500 || i == keys - 1) {
                (void)db.put_multi(batch);
                batch.clear();
            }
        }
        bedrock::Client bc{client};
        std::string path = "/ckpt/recovery-" + std::to_string(keys);
        if (!bc.makeServiceHandle("sim://n1").checkpointProvider("kv", path).ok()) return 1;
        n1->shutdown(); // crash

        // Recovery: spin the provider up on the spare node, restore.
        auto t0 = Clock::now();
        auto h2 = bc.makeServiceHandle("sim://n2");
        auto desc = json::Value::parse(
                        R"({"name": "kv", "type": "yokan", "provider_id": 42,
                             "config": {"name": "db"}, "dependencies": {"remi": "remi"}})")
                        .value();
        if (!h2.startProvider(desc).ok()) return 1;
        if (!h2.restoreProvider("kv", path).ok()) return 1;
        double recovery_ms = ms_since(t0);
        yokan::Database db2{client, "sim://n2", 42};
        if (db2.count().value_or(0) != static_cast<std::uint64_t>(keys)) {
            std::fprintf(stderr, "recovery lost data\n");
            return 1;
        }
        std::printf("%10d %16.2f\n", keys, recovery_ms);
        client->shutdown();
        n2->shutdown();
    }
    std::printf("# expected shape: both costs linear in database size; recovery is "
                "dominated by the restore\n");
    return 0;
}
