// E9 — cost of the observability layer added on top of the monitor hooks:
// RPC round-trip latency with monitoring fully off, with the built-in
// monitors (Listing-1 statistics + MetricsRegistry — the default every
// instance gets), and with the distributed TracingMonitor attached on top.
// Tracing allocates a span per forward and per handler, so the interesting
// number is the per-RPC delta against the built-in baseline — it should
// stay in the same "cheap enough to leave on" band the paper claims for
// the monitoring infrastructure itself.
#include "margo/instance.hpp"
#include "margo/metrics.hpp"
#include "margo/tracing.hpp"

#include <benchmark/benchmark.h>

using namespace mochi;

namespace {

enum class Mode : int { Off = 0, Builtin = 1, Tracing = 2 };

struct World {
    std::shared_ptr<mercury::Fabric> fabric = mercury::Fabric::create();
    margo::InstancePtr server;
    margo::InstancePtr client;
    std::shared_ptr<margo::TracingMonitor> tracer;

    explicit World(Mode mode) {
        server = margo::Instance::create(fabric, "sim://server", json::Value::object()).value();
        client = margo::Instance::create(fabric, "sim://client", json::Value::object()).value();
        switch (mode) {
        case Mode::Off:
            // Short-circuits all monitor dispatch: the floor.
            server->set_monitoring_enabled(false);
            client->set_monitoring_enabled(false);
            break;
        case Mode::Builtin:
            // StatisticsMonitor + MetricsMonitor are installed by default.
            break;
        case Mode::Tracing:
            tracer = std::make_shared<margo::TracingMonitor>();
            server->add_monitor(tracer);
            client->add_monitor(tracer);
            break;
        }
        (void)server->register_rpc("echo", margo::k_default_provider_id,
                                   [](const margo::Request& req) {
                                       req.respond(req.payload());
                                   });
    }
    ~World() {
        client->shutdown();
        server->shutdown();
    }
};

void BM_TracingOverhead(benchmark::State& state) {
    World world{static_cast<Mode>(state.range(0))};
    std::string payload(static_cast<std::size_t>(state.range(1)), 'x');
    std::size_t since_reset = 0;
    for (auto _ : state) {
        auto r = world.client->forward("sim://server", "echo", payload);
        if (!r) state.SkipWithError("forward failed");
        // Keep the tracer's span map bounded (each RPC records ~2 spans) so
        // we measure per-RPC cost, not unbounded map growth over millions of
        // iterations.
        if (world.tracer && ++since_reset >= 8192) {
            world.tracer->reset();
            since_reset = 0;
        }
    }
    static const char* names[] = {"off", "stats+metrics", "tracing"};
    state.SetLabel(names[state.range(0)]);
}
// Sweep mode x payload; 8-byte payloads expose the fixed per-RPC cost,
// larger payloads show the relative overhead shrinking.
BENCHMARK(BM_TracingOverhead)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({0, 4096})
    ->Args({2, 4096})
    ->Args({0, 65536})
    ->Args({2, 65536});

void BM_TraceExport(benchmark::State& state) {
    // Cost of rendering the Chrome trace_event JSON, vs. number of spans
    // collected — operators dump this at checkpoint boundaries, not per RPC.
    World world{Mode::Tracing};
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
        (void)world.client->forward("sim://server", "echo", "x");
    for (auto _ : state) {
        auto doc = world.tracer->trace_events_json();
        benchmark::DoNotOptimize(doc);
    }
    state.SetLabel(std::to_string(world.tracer->spans().size()) + " spans");
}
BENCHMARK(BM_TraceExport)->Arg(64)->Arg(512)->Arg(4096);

void BM_MetricsScrape(benchmark::State& state) {
    // Cost of serialising the metrics registry (what bedrock/get_metrics pays).
    World world{Mode::Builtin};
    for (int i = 0; i < 256; ++i)
        (void)world.client->forward("sim://server", "echo", "x");
    for (auto _ : state) {
        auto doc = world.server->metrics_json();
        benchmark::DoNotOptimize(doc);
    }
}
BENCHMARK(BM_MetricsScrape);

} // namespace

BENCHMARK_MAIN();
