// E2 — §5's claim: online reconfiguration "without taking the service
// offline". Two parts:
//   1. latency of each reconfiguration primitive (local and remote);
//   2. a serving-while-reconfiguring timeline: client throughput in 50 ms
//      buckets while pools/xstreams/providers are added and removed
//      mid-run. The shape to reproduce: no zero-throughput bucket.
#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "remi/provider.hpp"
#include "yokan/provider.hpp"

#include <cstdio>
#include <numeric>

using namespace mochi;
using Clock = std::chrono::steady_clock;

namespace {

double time_us(const std::function<Status()>& fn, const char* what) {
    auto t0 = Clock::now();
    auto st = fn();
    double us = std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (!st.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", what, st.error().message.c_str());
        return -1;
    }
    return us;
}

} // namespace

int main() {
    yokan::register_module();
    remi::register_module();
    auto fabric = mercury::Fabric::create();
    auto config = json::Value::parse(R"({
      "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
      "providers": [
        {"name": "remi", "type": "remi", "provider_id": 1},
        {"name": "kv", "type": "yokan", "provider_id": 42,
         "config": {"name": "db"}, "dependencies": {"remi": "remi"}}
      ]
    })").value();
    auto server = bedrock::Process::spawn(fabric, "sim://server", config).value();
    auto client = margo::Instance::create(fabric, "sim://client").value();
    bedrock::Client bc{client};
    auto handle = bc.makeServiceHandle("sim://server");

    std::printf("# E2a: reconfiguration primitive latency (microseconds)\n");
    std::printf("%-28s %12s %12s\n", "operation", "local_us", "remote_us");
    struct Op {
        const char* name;
        std::function<Status()> local;
        std::function<Status()> remote;
    };
    auto pool_cfg = json::Value::parse(R"({"name": "dyn_pool", "type": "fifo_wait"})").value();
    auto pool_cfg2 = json::Value::parse(R"({"name": "dyn_pool2", "type": "fifo_wait"})").value();
    auto es_cfg =
        json::Value::parse(R"({"name": "dyn_es", "scheduler": {"pools": ["dyn_pool"]}})").value();
    auto es_cfg2 =
        json::Value::parse(R"({"name": "dyn_es2", "scheduler": {"pools": ["dyn_pool2"]}})")
            .value();
    auto prov = json::Value::parse(
                    R"({"name": "dyn_kv", "type": "yokan", "provider_id": 77,
                         "config": {"name": "dyn_db"}})")
                    .value();
    auto prov2 = prov;
    prov2["name"] = "dyn_kv2";
    prov2["provider_id"] = 78;

    std::vector<Op> ops = {
        {"add_pool",
         [&] {
             auto r = server->add_pool(pool_cfg);
             return r ? Status{} : Status{r.error()};
         },
         [&] { return handle.addPool(pool_cfg2); }},
        {"add_xstream", [&] { return server->add_xstream(es_cfg); },
         [&] { return handle.addXstream(es_cfg2); }},
        {"start_provider", [&] { return server->start_provider(prov); },
         [&] { return handle.startProvider(prov2); }},
        {"stop_provider", [&] { return server->stop_provider("dyn_kv"); },
         [&] { return handle.stopProvider("dyn_kv2"); }},
        {"remove_xstream", [&] { return server->remove_xstream("dyn_es"); },
         [&] { return handle.removeXstream("dyn_es2"); }},
        {"remove_pool", [&] { return server->remove_pool("dyn_pool"); },
         [&] { return handle.removePool("dyn_pool2"); }},
    };
    for (auto& op : ops) {
        double local = time_us(op.local, op.name);
        double remote = time_us(op.remote, op.name);
        std::printf("%-28s %12.1f %12.1f\n", op.name, local, remote);
    }

    // -- E2b: serving while reconfiguring --------------------------------------
    std::printf("\n# E2b: client throughput while reconfiguring (50 ms buckets)\n");
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops_done{0};
    auto rt = client->runtime();
    std::vector<abt::ThreadHandle> workers;
    for (int u = 0; u < 4; ++u) {
        workers.push_back(rt->post_thread(rt->primary_pool(), [&] {
            yokan::Database db{client, "sim://server", 42};
            int i = 0;
            while (!stop.load()) {
                if (db.put("k" + std::to_string(i++ % 512), "v").ok()) ++ops_done;
            }
        }));
    }
    constexpr int k_buckets = 30;
    std::vector<std::uint64_t> buckets(k_buckets);
    std::vector<std::string> events(k_buckets);
    std::uint64_t prev = 0;
    for (int b = 0; b < k_buckets; ++b) {
        // Reconfigure mid-run at fixed buckets.
        if (b == 8) {
            (void)server->add_pool(pool_cfg);
            (void)server->add_xstream(es_cfg);
            events[b] = "<- add pool+ES";
        }
        if (b == 15) {
            (void)handle.startProvider(prov);
            events[b] = "<- start provider";
        }
        if (b == 22) {
            (void)handle.stopProvider("dyn_kv");
            (void)server->remove_xstream("dyn_es");
            (void)server->remove_pool("dyn_pool");
            events[b] = "<- stop provider, remove ES+pool";
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::uint64_t now = ops_done.load();
        buckets[b] = now - prev;
        prev = now;
    }
    stop.store(true);
    for (auto& w : workers) w.join();
    std::printf("%-8s %12s %s\n", "bucket", "ops/50ms", "event");
    std::uint64_t min_bucket = buckets[2];
    for (int b = 0; b < k_buckets; ++b) {
        std::printf("%-8d %12llu %s\n", b, static_cast<unsigned long long>(buckets[b]),
                    events[b].c_str());
        if (b >= 2) min_bucket = std::min(min_bucket, buckets[b]); // skip warmup
    }
    double total = static_cast<double>(std::accumulate(buckets.begin() + 2, buckets.end(),
                                                       std::uint64_t{0}));
    std::printf("summary: min bucket %llu ops, mean %.0f ops -> service %s\n",
                static_cast<unsigned long long>(min_bucket), total / (k_buckets - 2),
                min_bucket > 0 ? "NEVER interrupted" : "INTERRUPTED");

    client->shutdown();
    server->shutdown();
    return min_bucket > 0 ? 0 : 1;
}
