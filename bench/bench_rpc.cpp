// F2/E1 substrate benchmark: RPC round-trip latency and throughput of the
// Margo runtime over the simulated fabric, vs. payload size, handler-pool
// concurrency, and bulk (RDMA) transfer size. Establishes the baseline the
// other experiments build on.
//
// `--json FILE` switches to the hot-path metrics mode consumed by the
// bench-regression gate (tools/bench_gate.py): small-message ops/s, p99
// latency, and the speedup of the zero-copy/SPSC fast path over the generic
// timer-driven delivery path (Fabric::set_fast_path_enabled(false)).
#include "margo/instance.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>

using namespace mochi;

namespace {

struct RpcWorld {
    std::shared_ptr<mercury::Fabric> fabric;
    margo::InstancePtr server;
    margo::InstancePtr client;

    explicit RpcWorld(int server_es = 1) {
        fabric = mercury::Fabric::create();
        auto cfg = json::Value::object();
        auto& abt = cfg["argobots"];
        auto pool = json::Value::object();
        pool["name"] = "p";
        pool["type"] = "fifo_wait";
        abt["pools"].push_back(pool);
        for (int i = 0; i < server_es; ++i) {
            auto es = json::Value::object();
            es["name"] = "x" + std::to_string(i);
            es["scheduler"]["pools"].push_back("p");
            abt["xstreams"].push_back(es);
        }
        server = margo::Instance::create(fabric, "sim://server", cfg).value();
        client = margo::Instance::create(fabric, "sim://client").value();
        (void)server->register_rpc("echo", margo::k_default_provider_id,
                                   [](const margo::Request& req) {
                                       req.respond(req.payload());
                                   });
    }
    ~RpcWorld() {
        client->shutdown();
        server->shutdown();
    }
};

void BM_EchoRoundTrip(benchmark::State& state) {
    RpcWorld world;
    std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        auto r = world.client->forward("sim://server", "echo", payload);
        if (!r) state.SkipWithError("forward failed");
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EchoRoundTrip)->Arg(8)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_EchoConcurrent(benchmark::State& state) {
    // Throughput with N concurrent client ULTs; server handler ES count is
    // the ablation knob (DESIGN.md decision 2: ULT-aware blocking keeps a
    // single ES usable under concurrency).
    int server_es = static_cast<int>(state.range(0));
    int concurrency = static_cast<int>(state.range(1));
    RpcWorld world{server_es};
    std::string payload(64, 'x');
    for (auto _ : state) {
        auto rt = world.client->runtime();
        std::vector<abt::ThreadHandle> handles;
        constexpr int k_ops_per_ult = 50;
        for (int u = 0; u < concurrency; ++u) {
            handles.push_back(rt->post_thread(rt->primary_pool(), [&] {
                for (int i = 0; i < k_ops_per_ult; ++i)
                    (void)world.client->forward("sim://server", "echo", payload);
            }));
        }
        for (auto& h : handles) h.join();
        state.SetIterationTime(0); // default timing
    }
    state.counters["rpcs_per_iter"] = static_cast<double>(concurrency) * 50;
}
BENCHMARK(BM_EchoConcurrent)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({1, 32})
    ->Args({2, 32});

void BM_BulkPull(benchmark::State& state) {
    RpcWorld world;
    std::size_t size = static_cast<std::size_t>(state.range(0));
    std::vector<char> remote(size, 'R');
    auto handle = world.server->expose(remote.data(), remote.size(), false);
    std::vector<char> local(size);
    for (auto _ : state) {
        auto st = world.client->bulk_pull(handle, 0, local.data(), size);
        if (!st.ok()) state.SkipWithError("bulk failed");
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BulkPull)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(16 << 20);

void BM_RegisteredRpcLookup(benchmark::State& state) {
    // Registration-table scaling: dispatch cost with many registered RPCs.
    RpcWorld world;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
        (void)world.server->register_rpc("filler/" + std::to_string(i), 7,
                                         [](const margo::Request& req) { req.respond(""); });
    std::string payload(8, 'x');
    for (auto _ : state)
        (void)world.client->forward("sim://server", "echo", payload);
}
BENCHMARK(BM_RegisteredRpcLookup)->Arg(1)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Hot-path metrics mode (--json FILE), gated by tools/bench_gate.py.
// ---------------------------------------------------------------------------

struct HotPathStats {
    double ops_s = 0;
    double p50_us = 0;
    double p99_us = 0;
};

HotPathStats measure_small_echo(bool fast_path) {
    using Clock = std::chrono::steady_clock;
    RpcWorld world;
    world.fabric->set_fast_path_enabled(fast_path);
    std::string payload(8, 'x');
    constexpr int k_warmup = 200;
    constexpr int k_ops = 3000;
    for (int i = 0; i < k_warmup; ++i)
        (void)world.client->forward("sim://server", "echo", payload);
    std::vector<double> lat_us;
    lat_us.reserve(k_ops);
    auto t0 = Clock::now();
    for (int i = 0; i < k_ops; ++i) {
        auto s = Clock::now();
        (void)world.client->forward("sim://server", "echo", payload);
        lat_us.push_back(std::chrono::duration<double, std::micro>(Clock::now() - s).count());
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    std::sort(lat_us.begin(), lat_us.end());
    HotPathStats st;
    st.ops_s = static_cast<double>(k_ops) / secs;
    st.p50_us = lat_us[lat_us.size() / 2];
    st.p99_us = lat_us[lat_us.size() * 99 / 100];
    return st;
}

int run_hotpath_metrics(const char* json_path) {
    std::printf("# small-message (8 B) echo round-trip, 1 client ULT\n");
    auto fast = measure_small_echo(/*fast_path=*/true);
    auto slow = measure_small_echo(/*fast_path=*/false);
    double speedup = fast.ops_s / slow.ops_s;
    std::printf("%-28s %12.0f ops/s  p50 %7.1f us  p99 %7.1f us\n", "fast path (default)",
                fast.ops_s, fast.p50_us, fast.p99_us);
    std::printf("%-28s %12.0f ops/s  p50 %7.1f us  p99 %7.1f us\n", "generic path (disabled)",
                slow.ops_s, slow.p50_us, slow.p99_us);
    std::printf("%-28s %12.2fx\n", "fast-path speedup", speedup);
    std::ofstream out{json_path};
    out << "{\n  \"metrics\": {\n"
        << "    \"small_echo_ops_s\": " << fast.ops_s << ",\n"
        << "    \"small_echo_p50_us\": " << fast.p50_us << ",\n"
        << "    \"small_echo_p99_us\": " << fast.p99_us << ",\n"
        << "    \"generic_path_ops_s\": " << slow.ops_s << ",\n"
        << "    \"fast_path_speedup\": " << speedup << "\n  }\n}\n";
    return out ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc - 1; ++i)
        if (std::strcmp(argv[i], "--json") == 0) return run_hotpath_metrics(argv[i + 1]);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
