// F2/E1 substrate benchmark: RPC round-trip latency and throughput of the
// Margo runtime over the simulated fabric, vs. payload size, handler-pool
// concurrency, and bulk (RDMA) transfer size. Establishes the baseline the
// other experiments build on.
#include "margo/instance.hpp"

#include <benchmark/benchmark.h>

using namespace mochi;

namespace {

struct RpcWorld {
    std::shared_ptr<mercury::Fabric> fabric;
    margo::InstancePtr server;
    margo::InstancePtr client;

    explicit RpcWorld(int server_es = 1) {
        fabric = mercury::Fabric::create();
        auto cfg = json::Value::object();
        auto& abt = cfg["argobots"];
        auto pool = json::Value::object();
        pool["name"] = "p";
        pool["type"] = "fifo_wait";
        abt["pools"].push_back(pool);
        for (int i = 0; i < server_es; ++i) {
            auto es = json::Value::object();
            es["name"] = "x" + std::to_string(i);
            es["scheduler"]["pools"].push_back("p");
            abt["xstreams"].push_back(es);
        }
        server = margo::Instance::create(fabric, "sim://server", cfg).value();
        client = margo::Instance::create(fabric, "sim://client").value();
        (void)server->register_rpc("echo", margo::k_default_provider_id,
                                   [](const margo::Request& req) {
                                       req.respond(req.payload());
                                   });
    }
    ~RpcWorld() {
        client->shutdown();
        server->shutdown();
    }
};

void BM_EchoRoundTrip(benchmark::State& state) {
    RpcWorld world;
    std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        auto r = world.client->forward("sim://server", "echo", payload);
        if (!r) state.SkipWithError("forward failed");
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EchoRoundTrip)->Arg(8)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_EchoConcurrent(benchmark::State& state) {
    // Throughput with N concurrent client ULTs; server handler ES count is
    // the ablation knob (DESIGN.md decision 2: ULT-aware blocking keeps a
    // single ES usable under concurrency).
    int server_es = static_cast<int>(state.range(0));
    int concurrency = static_cast<int>(state.range(1));
    RpcWorld world{server_es};
    std::string payload(64, 'x');
    for (auto _ : state) {
        auto rt = world.client->runtime();
        std::vector<abt::ThreadHandle> handles;
        constexpr int k_ops_per_ult = 50;
        for (int u = 0; u < concurrency; ++u) {
            handles.push_back(rt->post_thread(rt->primary_pool(), [&] {
                for (int i = 0; i < k_ops_per_ult; ++i)
                    (void)world.client->forward("sim://server", "echo", payload);
            }));
        }
        for (auto& h : handles) h.join();
        state.SetIterationTime(0); // default timing
    }
    state.counters["rpcs_per_iter"] = static_cast<double>(concurrency) * 50;
}
BENCHMARK(BM_EchoConcurrent)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({1, 32})
    ->Args({2, 32});

void BM_BulkPull(benchmark::State& state) {
    RpcWorld world;
    std::size_t size = static_cast<std::size_t>(state.range(0));
    std::vector<char> remote(size, 'R');
    auto handle = world.server->expose(remote.data(), remote.size(), false);
    std::vector<char> local(size);
    for (auto _ : state) {
        auto st = world.client->bulk_pull(handle, 0, local.data(), size);
        if (!st.ok()) state.SkipWithError("bulk failed");
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BulkPull)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(16 << 20);

void BM_RegisteredRpcLookup(benchmark::State& state) {
    // Registration-table scaling: dispatch cost with many registered RPCs.
    RpcWorld world;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
        (void)world.server->register_rpc("filler/" + std::to_string(i), 7,
                                         [](const margo::Request& req) { req.respond(""); });
    std::string payload(8, 'x');
    for (auto _ : state)
        (void)world.client->forward("sim://server", "echo", payload);
}
BENCHMARK(BM_RegisteredRpcLookup)->Arg(1)->Arg(100)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
