// E14 — multi-tenant QoS under overload: a YCSB-style open-loop workload
// harness driving the elastic KV service with a configurable tenant mix
// (Zipfian keys, mixed get/put/scan ops, plus shard migration churn) against
// per-tenant weights and quotas enforced by the margo QoS layer.
//
// The E14 scenario (defaults; every knob has a flag):
//
//   * two tenants with a 4:1 weight ratio — "light" (interactive, modest
//     rate, no quota) and "heavy" (bulk, offered at 2x its ops/s quota);
//   * phase 1 runs the light tenant in isolation to record its baseline
//     tail; phase 2 adds the heavy tenant at 2x overload (and, unless
//     --no-migrate, a shard split/merge cycle racing the load);
//   * ops are generated open-loop: arrivals are pre-scheduled at the
//     offered rate and latency is measured from the *scheduled* arrival
//     time, so queueing (the thing overload actually causes) is captured
//     instead of being absorbed by a closed loop's self-throttling.
//
// Gated by tools/bench_gate.py against bench/baselines/workload.json:
//
//   * light_p99_ratio       — light tenant's overloaded p99 / isolated p99;
//                             the fairness invariant (ceiling 1.5);
//   * heavy_backpressure /  — the heavy tenant must actually be throttled,
//     heavy_shed_scraped      and the shed must be visible via the
//                             bedrock/get_metrics tenant counters;
//   * non_retryable_errors  — backpressure must surface as the retryable
//                             Backpressure code and nothing else (0);
//   * lost_ops              — every key must read back after the churn (0).
#include "composed/cluster_autoscaler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>

using namespace mochi;
using namespace mochi::composed;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::uint32_t k_light_tenant = 1;
constexpr std::uint32_t k_heavy_tenant = 2;

struct Options {
    const char* json_path = nullptr;
    int duration_ms = 2500;    // per phase
    double light_rate = 800;   // ops/s offered by the light tenant
    double heavy_rate = 0;     // 0 = 2x the heavy quota (the E14 overload)
    double heavy_quota = 1500; // ops/s quota on the heavy tenant
    double light_weight = 4;
    double heavy_weight = 1;
    std::size_t keys = 2048; // per tenant
    std::size_t value_bytes = 512;
    double zipf_theta = 0.99;
    double put_frac = 0.5;
    double scan_frac = 0.1; // scan = get_multi over an 8-key window
    bool migrate = true;
    std::size_t shards = 8;
    std::size_t nodes = 2;
};

/// YCSB's Zipfian generator (Gray et al.): skewed key popularity over
/// [0, n) with parameter theta.
struct Zipf {
    std::size_t n;
    double theta, alpha, zetan, eta;

    Zipf(std::size_t n_, double theta_) : n(n_), theta(theta_) {
        zetan = 0;
        for (std::size_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(double(i), theta);
        const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan);
    }

    std::size_t operator()(std::mt19937_64& rng) const {
        const double u = std::uniform_real_distribution<double>(0, 1)(rng);
        const double uz = u * zetan;
        if (uz < 1.0) return 0;
        if (uz < 1.0 + std::pow(0.5, theta)) return 1;
        auto idx = static_cast<std::size_t>(double(n) * std::pow(eta * u - eta + 1.0, alpha));
        return std::min(idx, n - 1);
    }
};

double p99(std::vector<double> v) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1))];
}

/// Retryable per the docs/QOS.md backpressure contract: Backpressure (back
/// off and resend), Conflict (stale layout, repaired by the elastic client),
/// Timeout/Unreachable (routing races a migration).
bool retryable(const Error& err) {
    switch (err.code) {
    case Error::Code::Backpressure:
    case Error::Code::Conflict:
    case Error::Code::Timeout:
    case Error::Code::Unreachable:
    case Error::Code::NotFound: return true; // mid-migration routing window
    default: return false;
    }
}

std::string tenant_key(std::uint32_t tenant, std::size_t idx) {
    return "t" + std::to_string(tenant) + "-k" + std::to_string(idx);
}

struct TenantResult {
    std::size_t offered = 0;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> throttled{0};    ///< gave up after retryable-only failures
    std::atomic<std::size_t> backpressure{0}; ///< Backpressure errors observed
    std::atomic<std::size_t> non_retryable{0};
    std::mutex mutex;
    std::vector<double> latencies_us; ///< from scheduled arrival to completion
};

/// Open-loop load for one tenant: `workers` threads claim pre-scheduled
/// arrivals and execute the op mix under the tenant's TenantScope. Blocks
/// until the phase's schedule is drained.
void run_tenant_phase(const margo::InstancePtr& app, ElasticKvService& kv,
                      const Options& opt, std::uint32_t tenant, double rate,
                      Clock::time_point start, Clock::time_point deadline,
                      std::size_t workers, std::uint64_t seed, TenantResult& out) {
    const auto phase_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - start).count();
    const auto total_ops =
        static_cast<std::size_t>(rate * static_cast<double>(phase_us) / 1e6);
    out.offered = total_ops;
    std::atomic<std::size_t> next{0};
    const Zipf zipf{opt.keys, opt.zipf_theta};
    const std::string value(opt.value_bytes, 'w');

    std::vector<std::thread> crew;
    crew.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        crew.emplace_back([&, w] {
            margo::TenantScope scope{tenant};
            ElasticKvClient client{app, kv.controller_address()};
            std::mt19937_64 rng(seed * 1000003 + w);
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= total_ops) break;
                const auto arrival =
                    start + std::chrono::microseconds(static_cast<std::int64_t>(
                                double(i) / rate * 1e6));
                std::this_thread::sleep_until(arrival);
                if (Clock::now() >= deadline && i > 0) continue; // schedule overran
                const std::size_t idx = zipf(rng);
                const double mix = std::uniform_real_distribution<double>(0, 1)(rng);
                bool ok = false;
                for (int attempt = 0; attempt < 8; ++attempt) {
                    std::optional<Error> err;
                    if (mix < opt.put_frac) {
                        auto st = client.put(tenant_key(tenant, idx), value);
                        if (st.ok())
                            ok = true;
                        else
                            err = st.error();
                    } else if (mix < opt.put_frac + opt.scan_frac) {
                        std::vector<std::string> window;
                        for (std::size_t k = 0; k < 8; ++k)
                            window.push_back(tenant_key(tenant, (idx + k) % opt.keys));
                        auto got = client.get_multi(window);
                        if (got.has_value())
                            ok = true;
                        else
                            err = got.error();
                    } else {
                        auto got = client.get(tenant_key(tenant, idx));
                        if (got.has_value())
                            ok = true;
                        else
                            err = got.error();
                    }
                    if (ok) break;
                    if (err->code == Error::Code::Backpressure) ++out.backpressure;
                    if (!retryable(*err)) {
                        ++out.non_retryable;
                        std::fprintf(stderr, "tenant %u non-retryable: %s (%s)\n", tenant,
                                     err->message.c_str(), err->code_name());
                        break;
                    }
                    // Backpressure means "back off and resend" (docs/QOS.md);
                    // migration races (Conflict/Timeout) are repaired by the
                    // elastic client already and retry immediately.
                    if (err->code == Error::Code::Backpressure)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(std::min(1 << attempt, 16)));
                }
                if (ok) {
                    ++out.completed;
                    const double us = std::chrono::duration<double, std::micro>(
                                          Clock::now() - arrival)
                                          .count();
                    std::lock_guard lk{out.mutex};
                    out.latencies_us.push_back(us);
                } else if (out.non_retryable.load() == 0) {
                    ++out.throttled;
                }
            }
        });
    }
    for (auto& t : crew) t.join();
}

int run_workload(const Options& opt) {
    const double heavy_rate = opt.heavy_rate > 0 ? opt.heavy_rate : 2.0 * opt.heavy_quota;

    mercury::LinkModel link;
    link.latency_us = 5.0;
    link.bandwidth_bytes_per_us = 200.0;
    Cluster cluster{link};

    ElasticKvConfig cfg;
    cfg.num_shards = opt.shards;
    cfg.enable_swim = false;
    // QoS deployment config: a prio_wait handler pool so the WFQ deficit
    // priorities actually order dispatch, plus the tenant table (weights and
    // the heavy tenant's quota with a short burst so throttling engages
    // within the phase).
    auto& margo_cfg = cfg.margo;
    margo_cfg = json::Value::object();
    auto pool = json::Value::object();
    pool["name"] = "__primary__";
    pool["type"] = "prio_wait";
    pool["access"] = "mpmc";
    margo_cfg["argobots"]["pools"].push_back(std::move(pool));
    auto& tenants = margo_cfg["qos"]["tenants"];
    tenants[std::to_string(k_light_tenant)]["weight"] = opt.light_weight;
    tenants[std::to_string(k_heavy_tenant)]["weight"] = opt.heavy_weight;
    tenants[std::to_string(k_heavy_tenant)]["ops_per_sec"] = opt.heavy_quota;
    tenants[std::to_string(k_heavy_tenant)]["burst_ops"] = opt.heavy_quota / 4.0;

    std::vector<std::string> addresses;
    for (std::size_t n = 0; n < opt.nodes; ++n)
        addresses.push_back("sim://w" + std::to_string(n));
    auto svc = ElasticKvService::create(cluster, addresses, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        return 1;
    }
    auto& kv = **svc;
    auto app = margo::Instance::create(cluster.fabric(), "sim://bench-workload").value();

    // Preload both tenants' keyspaces (untenanted: setup is not workload).
    {
        ElasticKvClient loader{app, kv.controller_address()};
        const std::string value(opt.value_bytes, 'p');
        for (std::uint32_t tenant : {k_light_tenant, k_heavy_tenant}) {
            std::vector<std::pair<std::string, std::string>> pairs;
            for (std::size_t i = 0; i < opt.keys; ++i) {
                pairs.emplace_back(tenant_key(tenant, i), value);
                if (pairs.size() == 256 || i + 1 == opt.keys) {
                    if (auto st = loader.put_multi(pairs); !st.ok()) {
                        std::fprintf(stderr, "preload: %s\n", st.error().message.c_str());
                        return 1;
                    }
                    pairs.clear();
                }
            }
        }
    }

    const auto phase = std::chrono::milliseconds(opt.duration_ms);

    // Phase 1 — isolated baseline: the light tenant alone.
    TenantResult light_iso;
    {
        auto start = Clock::now();
        run_tenant_phase(app, kv, opt, k_light_tenant, opt.light_rate, start, start + phase,
                         4, 17, light_iso);
    }

    // Phase 2 — overload: heavy tenant at 2x its quota alongside the light
    // tenant, with a shard split/merge racing the load (the "migrate" leg of
    // the op mix) unless disabled.
    TenantResult light_over, heavy;
    std::size_t migrations = 0;
    {
        auto start = Clock::now();
        auto deadline = start + phase;
        std::thread heavy_thread{[&] {
            run_tenant_phase(app, kv, opt, k_heavy_tenant, heavy_rate, start, deadline, 8,
                             29, heavy);
        }};
        std::thread migrate_thread{[&] {
            if (!opt.migrate) return;
            std::this_thread::sleep_for(phase / 4);
            auto shards_now = kv.layout().shards();
            auto plan = kv.split_shard(shards_now.front().id);
            if (!plan) {
                std::fprintf(stderr, "split: %s\n", plan.error().message.c_str());
                return;
            }
            ++migrations;
            std::this_thread::sleep_for(phase / 4);
            if (auto merged = kv.merge_shards(plan->child); merged)
                ++migrations;
            else
                std::fprintf(stderr, "merge: %s\n", merged.error().message.c_str());
        }};
        run_tenant_phase(app, kv, opt, k_light_tenant, opt.light_rate, start, deadline, 4,
                         43, light_over);
        heavy_thread.join();
        migrate_thread.join();
    }

    // Audit: every key of both tenants must still read back (zero loss
    // through quota enforcement racing the shard migration).
    std::size_t lost_ops = 0;
    {
        ElasticKvClient auditor{app, kv.controller_address()};
        for (std::uint32_t tenant : {k_light_tenant, k_heavy_tenant}) {
            for (std::size_t i = 0; i < opt.keys; i += 64) {
                std::vector<std::string> window;
                for (std::size_t k = i; k < std::min(i + 64, opt.keys); ++k)
                    window.push_back(tenant_key(tenant, k));
                auto got = auditor.get_multi(window);
                if (!got.has_value()) {
                    lost_ops += window.size();
                    continue;
                }
                for (const auto& v : *got)
                    if (!v.has_value()) ++lost_ops;
            }
        }
    }

    // Scrape the per-tenant counters off every node (the same path the
    // autoscaler and docs/OBSERVABILITY.md's fairness example use): the
    // server-side view of the shed must corroborate the client's.
    double heavy_shed_scraped = 0;
    {
        bedrock::Client scraper{app};
        const std::string shed_name =
            "tenant_" + std::to_string(k_heavy_tenant) + "_shed_total";
        for (const auto& address : kv.nodes()) {
            auto metrics = scraper.makeServiceHandle(address).getMetrics();
            if (!metrics) continue;
            for (const auto& [name, value] : (*metrics)["counters"].as_object())
                if (name == shed_name) heavy_shed_scraped += value.as_real();
        }
    }

    const double phase_s = static_cast<double>(opt.duration_ms) / 1000.0;
    const double light_p99_iso = p99(light_iso.latencies_us);
    const double light_p99_over = p99(light_over.latencies_us);
    const double ratio = light_p99_iso > 0 ? light_p99_over / light_p99_iso : 0;
    const auto non_retryable = light_iso.non_retryable.load() +
                               light_over.non_retryable.load() + heavy.non_retryable.load();

    if (opt.json_path != nullptr) {
        std::FILE* out = std::fopen(opt.json_path, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.json_path);
            return 1;
        }
        std::fprintf(out,
                     "{\n  \"metrics\": {\n"
                     "    \"light_p99_iso_us\": %.1f,\n"
                     "    \"light_p99_over_us\": %.1f,\n"
                     "    \"light_p99_ratio\": %.4f,\n"
                     "    \"light_ops_s\": %.1f,\n"
                     "    \"light_completed\": %zu,\n"
                     "    \"heavy_offered\": %zu,\n"
                     "    \"heavy_completed\": %zu,\n"
                     "    \"heavy_throttled\": %zu,\n"
                     "    \"heavy_backpressure\": %zu,\n"
                     "    \"heavy_shed_scraped\": %.0f,\n"
                     "    \"non_retryable_errors\": %zu,\n"
                     "    \"lost_ops\": %zu,\n"
                     "    \"migrations\": %zu\n"
                     "  }\n}\n",
                     light_p99_iso, light_p99_over, ratio,
                     static_cast<double>(light_over.completed.load()) / phase_s,
                     light_over.completed.load(), heavy.offered, heavy.completed.load(),
                     heavy.throttled.load(), heavy.backpressure.load(), heavy_shed_scraped,
                     non_retryable, lost_ops, migrations);
        std::fclose(out);
    }
    std::printf("# E14: light p99 %.0f -> %.0f us (ratio %.2f), heavy %zu/%zu done, "
                "%zu backpressure (%.0f scraped), %zu non-retryable, %zu lost, "
                "%zu migrations\n",
                light_p99_iso, light_p99_over, ratio, heavy.completed.load(), heavy.offered,
                heavy.backpressure.load(), heavy_shed_scraped, non_retryable, lost_ops,
                migrations);
    app->shutdown();
    return non_retryable == 0 && lost_ops == 0 && heavy.backpressure.load() > 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    Options opt;
    auto real_arg = [&](int& i) { return std::atof(argv[++i]); };
    for (int i = 1; i < argc; ++i) {
        auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
        if (is("--json") && i + 1 < argc)
            opt.json_path = argv[++i];
        else if (is("--duration-ms") && i + 1 < argc)
            opt.duration_ms = std::atoi(argv[++i]);
        else if (is("--light-rate") && i + 1 < argc)
            opt.light_rate = real_arg(i);
        else if (is("--heavy-rate") && i + 1 < argc)
            opt.heavy_rate = real_arg(i);
        else if (is("--heavy-quota") && i + 1 < argc)
            opt.heavy_quota = real_arg(i);
        else if (is("--light-weight") && i + 1 < argc)
            opt.light_weight = real_arg(i);
        else if (is("--heavy-weight") && i + 1 < argc)
            opt.heavy_weight = real_arg(i);
        else if (is("--keys") && i + 1 < argc)
            opt.keys = static_cast<std::size_t>(std::atoi(argv[++i]));
        else if (is("--value-bytes") && i + 1 < argc)
            opt.value_bytes = static_cast<std::size_t>(std::atoi(argv[++i]));
        else if (is("--zipf-theta") && i + 1 < argc)
            opt.zipf_theta = real_arg(i);
        else if (is("--put-frac") && i + 1 < argc)
            opt.put_frac = real_arg(i);
        else if (is("--scan-frac") && i + 1 < argc)
            opt.scan_frac = real_arg(i);
        else if (is("--no-migrate"))
            opt.migrate = false;
        else if (is("--shards") && i + 1 < argc)
            opt.shards = static_cast<std::size_t>(std::atoi(argv[++i]));
        else if (is("--nodes") && i + 1 < argc)
            opt.nodes = static_cast<std::size_t>(std::atoi(argv[++i]));
        else {
            std::fprintf(stderr, "unknown flag %s (see README.md, Workloads & QoS)\n",
                         argv[i]);
            return 2;
        }
    }
    return run_workload(opt);
}
