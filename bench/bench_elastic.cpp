// E8 — the end-to-end HEPnOS-style scenario (§1 + §6): a phased workload
// against (a) a static 2-node service and (b) an elastic service that scales
// to 4 nodes when the burst arrives and back down afterwards. The shape to
// reproduce: during the burst the elastic service's throughput recovers
// after the scale-out, while the static deployment stays saturated; after
// scale-down both converge again.
//
// The fabric models per-node ingress bandwidth, so a node serving more
// shards really is a bottleneck.
//
// E12 — `--json FILE` switches to the layout-scale harness instead: a
// million keys over 32 shards driven through a detached ElasticKvClient,
// measuring (a) explicit layout/directory RPCs per steady-state op — must be
// exactly zero, routing is client-computed — (b) the fraction of resident
// keys a shard split moves (x num_shards; bounded by 2), and (c) that after
// the split every key is still readable with the stale client repaired
// purely from piggybacked epoch hints. Gated by tools/bench_gate.py against
// bench/baselines/elastic.json.
#include "composed/elastic_kv.hpp"

#include <cstdio>
#include <cstring>
#include <numeric>

using namespace mochi;
using namespace mochi::composed;
using Clock = std::chrono::steady_clock;

namespace {

struct PhaseResult {
    std::string name;
    double ops_per_s = 0; ///< MiB/s for this harness
};

/// Run puts with `n_ults` concurrent client ULTs and `value_size`-byte
/// values; returns MiB/s of ingested data (the burst phase is bandwidth
/// bound, so aggregate node ingress is what elasticity buys).
double run_phase(ElasticKvService& kv, const margo::InstancePtr& client, int n_ults,
                 int ops_per_ult, std::size_t value_size) {
    std::atomic<std::uint64_t> done{0};
    auto rt = client->runtime();
    auto t0 = Clock::now();
    std::vector<abt::ThreadHandle> handles;
    for (int u = 0; u < n_ults; ++u) {
        handles.push_back(rt->post_thread(rt->primary_pool(), [&, u] {
            for (int i = 0; i < ops_per_ult; ++i) {
                std::string key = "k/" + std::to_string(u) + "/" + std::to_string(i % 256);
                if (kv.put(key, std::string(value_size, 'd')).ok()) ++done;
            }
        }));
    }
    for (auto& h : handles) h.join();
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(done.load()) * static_cast<double>(value_size) /
           (1 << 20) / secs;
}

mercury::LinkModel hpc_link() {
    mercury::LinkModel link;
    link.latency_us = 5.0;
    link.bandwidth_bytes_per_us = 50.0; // 50 MB/s per directional link (slow enough that the
                                        // modeled network, not the host CPU, is the bottleneck)
    return link;
}

std::vector<PhaseResult> run_scenario(bool elastic) {
    Cluster cluster{hpc_link()};
    ElasticKvConfig cfg;
    cfg.num_shards = 16;
    cfg.enable_swim = false; // membership churn not under test here
    auto svc = ElasticKvService::create(cluster, {"sim://n0", "sim://n1"}, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        std::exit(1);
    }
    auto& kv = **svc;
    auto client =
        margo::Instance::create(cluster.fabric(),
                                elastic ? "sim://app-elastic" : "sim://app-static",
                                json::Value::parse(R"({"argobots": {
                                    "pools": [{"name": "p", "type": "fifo_wait"}],
                                    "xstreams": [
                                      {"name": "x0", "scheduler": {"pools": ["p"]}},
                                      {"name": "x1", "scheduler": {"pools": ["p"]}}]}})")
                                    .value())
            .value();

    std::vector<PhaseResult> results;
    results.push_back({"steady (2 nodes)", run_phase(kv, client, 4, 100, 4096)});
    // Burst arrives: heavy ingestion, bandwidth bound.
    if (elastic) {
        (void)kv.scale_up("sim://n2");
        (void)kv.scale_up("sim://n3");
    }
    results.push_back({elastic ? "burst (scaled to 4)" : "burst (still 2)",
                       run_phase(kv, client, 16, 30, 64 * 1024)});
    // Burst over.
    if (elastic) {
        (void)kv.scale_down("sim://n3");
        (void)kv.scale_down("sim://n2");
    }
    results.push_back({"post-burst (2 nodes)", run_phase(kv, client, 4, 100, 4096)});
    client->shutdown();
    return results;
}

// ---------------------------------------------------------------------------
// E12: layout-scale harness (--json mode)
// ---------------------------------------------------------------------------

std::string bench_key(std::size_t i) { return "k" + std::to_string(i); }

int run_layout_scale(const char* json_path) {
    constexpr std::size_t k_keys = 1u << 20; // >= 1M resident keys
    constexpr std::size_t k_batch = 8192;
    constexpr std::size_t k_shards = 32;

    Cluster cluster; // clean links: this harness measures ops, not bandwidth
    ElasticKvConfig cfg;
    cfg.num_shards = k_shards;
    cfg.enable_swim = false;
    auto svc = ElasticKvService::create(
        cluster, {"sim://n0", "sim://n1", "sim://n2", "sim://n3"}, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        return 1;
    }
    auto& kv = **svc;
    auto app = margo::Instance::create(cluster.fabric(), "sim://bench-app").value();
    ElasticKvClient client{app, kv.controller_address()};

    // Phase 1: ingest. Batches are shard-grouped client-side; each batch
    // leaves as (at most) one RPC per shard.
    std::printf("# E12: ingesting %zu keys over %zu shards...\n", k_keys, k_shards);
    auto t0 = Clock::now();
    for (std::size_t base = 0; base < k_keys; base += k_batch) {
        std::vector<std::pair<std::string, std::string>> pairs;
        pairs.reserve(k_batch);
        for (std::size_t i = base; i < base + k_batch && i < k_keys; ++i)
            pairs.emplace_back(bench_key(i), "v");
        if (auto st = client.put_multi(pairs); !st.ok()) {
            std::fprintf(stderr, "ingest put_multi: %s\n", st.error().message.c_str());
            return 1;
        }
    }
    double ingest_s = std::chrono::duration<double>(Clock::now() - t0).count();
    double ingest_ops_s = static_cast<double>(k_keys) / ingest_s;

    // Phase 2: steady state. The cached layout routes everything locally;
    // the refresh counter must not move at all.
    std::size_t refreshes_before = client.refreshes();
    std::size_t steady_ops = 0;
    t0 = Clock::now();
    for (int round = 0; round < 24; ++round) {
        std::vector<std::string> keys;
        keys.reserve(k_batch);
        std::size_t base = (static_cast<std::size_t>(round) * 37 * k_batch) % k_keys;
        for (std::size_t i = 0; i < k_batch; ++i)
            keys.push_back(bench_key((base + i) % k_keys));
        auto got = client.get_multi(keys);
        if (!got.has_value()) {
            std::fprintf(stderr, "steady get_multi: %s\n", got.error().message.c_str());
            return 1;
        }
        steady_ops += keys.size();
    }
    double steady_s = std::chrono::duration<double>(Clock::now() - t0).count();
    double steady_ops_s = static_cast<double>(steady_ops) / steady_s;
    double steady_layout_rpcs_per_op =
        static_cast<double>(client.refreshes() - refreshes_before) /
        static_cast<double>(steady_ops);

    // Phase 3: split the shard owning k0 and measure movement. Routing is
    // deterministic, so the moved-key count falls straight out of the two
    // layouts (test_yokan proves data movement matches routing).
    Layout before = kv.layout();
    std::uint32_t hot = before.shard_for_key(bench_key(0)).id;
    auto plan = kv.split_shard(hot);
    if (!plan) {
        std::fprintf(stderr, "split_shard: %s\n", plan.error().message.c_str());
        return 1;
    }
    Layout after = kv.layout();
    std::size_t moved = 0;
    for (std::size_t i = 0; i < k_keys; ++i)
        if (after.shard_for_key(bench_key(i)).id != before.shard_for_key(bench_key(i)).id)
            ++moved;
    double moved_fraction_x_shards = static_cast<double>(moved) /
                                     static_cast<double>(k_keys) *
                                     static_cast<double>(k_shards);

    // Phase 4: full sweep through the (now stale) client. The first batch
    // hits the epoch guard and repairs from the piggybacked hint — zero
    // explicit layout RPCs — after which every key must read back.
    std::size_t post_refreshes_before = client.refreshes();
    std::size_t missing = 0;
    for (std::size_t base = 0; base < k_keys; base += k_batch) {
        std::vector<std::string> keys;
        keys.reserve(k_batch);
        for (std::size_t i = base; i < base + k_batch && i < k_keys; ++i)
            keys.push_back(bench_key(i));
        auto got = client.get_multi(keys);
        if (!got.has_value()) {
            std::fprintf(stderr, "post-split get_multi: %s\n",
                         got.error().message.c_str());
            return 1;
        }
        for (const auto& v : *got)
            if (!v.has_value()) ++missing;
    }
    double post_split_refreshes =
        static_cast<double>(client.refreshes() - post_refreshes_before);

    std::FILE* out = std::fopen(json_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"metrics\": {\n"
                 "    \"shards\": %zu,\n"
                 "    \"keys\": %zu,\n"
                 "    \"ingest_ops_s\": %.1f,\n"
                 "    \"steady_ops_s\": %.1f,\n"
                 "    \"steady_layout_rpcs_per_op\": %.6f,\n"
                 "    \"split_moved_fraction_x_shards\": %.4f,\n"
                 "    \"post_split_missing_keys\": %zu,\n"
                 "    \"post_split_refreshes\": %.0f,\n"
                 "    \"stale_epoch_retries\": %zu\n"
                 "  }\n}\n",
                 k_shards, k_keys, ingest_ops_s, steady_ops_s,
                 steady_layout_rpcs_per_op, moved_fraction_x_shards, missing,
                 post_split_refreshes, client.stale_retries());
    std::fclose(out);
    std::printf("# E12: steady %.0f ops/s, %.6f layout RPCs/op, split moved "
                "%.4f x shards (bound 2.0), %zu missing, %.0f post-split "
                "refreshes, %zu piggyback repairs\n",
                steady_ops_s, steady_layout_rpcs_per_op, moved_fraction_x_shards,
                missing, post_split_refreshes, client.stale_retries());
    app->shutdown();
    bool ok = steady_layout_rpcs_per_op == 0.0 && moved_fraction_x_shards <= 2.0 &&
              missing == 0 && post_split_refreshes == 0.0;
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0) return run_layout_scale(argv[i + 1]);
    std::printf("# E8: phased workload, static vs elastic deployment\n");
    std::printf("# link model: 5 us + 50 MB/s per directional link; 16 shards\n");
    auto static_results = run_scenario(/*elastic=*/false);
    auto elastic_results = run_scenario(/*elastic=*/true);
    std::printf("%-24s %16s %16s %10s\n", "phase", "static_MiB_s", "elastic_MiB_s",
                "speedup");
    double burst_speedup = 0;
    for (std::size_t i = 0; i < static_results.size(); ++i) {
        double speedup = elastic_results[i].ops_per_s / static_results[i].ops_per_s;
        if (i == 1) burst_speedup = speedup;
        std::printf("%-24s %16.0f %16.0f %9.2fx\n", elastic_results[i].name.c_str(),
                    static_results[i].ops_per_s, elastic_results[i].ops_per_s, speedup);
    }
    std::printf("# expected shape: elastic wins during the burst (speedup > 1), phases 1 "
                "and 3 comparable\n");
    return burst_speedup > 1.0 ? 0 : 1;
}
