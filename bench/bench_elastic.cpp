// E8 — the end-to-end HEPnOS-style scenario (§1 + §6): a phased workload
// against (a) a static 2-node service and (b) an elastic service that scales
// to 4 nodes when the burst arrives and back down afterwards. The shape to
// reproduce: during the burst the elastic service's throughput recovers
// after the scale-out, while the static deployment stays saturated; after
// scale-down both converge again.
//
// The fabric models per-node ingress bandwidth, so a node serving more
// shards really is a bottleneck.
#include "composed/elastic_kv.hpp"

#include <cstdio>
#include <numeric>

using namespace mochi;
using namespace mochi::composed;
using Clock = std::chrono::steady_clock;

namespace {

struct PhaseResult {
    std::string name;
    double ops_per_s = 0; ///< MiB/s for this harness
};

/// Run puts with `n_ults` concurrent client ULTs and `value_size`-byte
/// values; returns MiB/s of ingested data (the burst phase is bandwidth
/// bound, so aggregate node ingress is what elasticity buys).
double run_phase(ElasticKvService& kv, const margo::InstancePtr& client, int n_ults,
                 int ops_per_ult, std::size_t value_size) {
    std::atomic<std::uint64_t> done{0};
    auto rt = client->runtime();
    auto t0 = Clock::now();
    std::vector<abt::ThreadHandle> handles;
    for (int u = 0; u < n_ults; ++u) {
        handles.push_back(rt->post_thread(rt->primary_pool(), [&, u] {
            for (int i = 0; i < ops_per_ult; ++i) {
                std::string key = "k/" + std::to_string(u) + "/" + std::to_string(i % 256);
                if (kv.put(key, std::string(value_size, 'd')).ok()) ++done;
            }
        }));
    }
    for (auto& h : handles) h.join();
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(done.load()) * static_cast<double>(value_size) /
           (1 << 20) / secs;
}

mercury::LinkModel hpc_link() {
    mercury::LinkModel link;
    link.latency_us = 5.0;
    link.bandwidth_bytes_per_us = 50.0; // 50 MB/s per directional link (slow enough that the
                                        // modeled network, not the host CPU, is the bottleneck)
    return link;
}

std::vector<PhaseResult> run_scenario(bool elastic) {
    Cluster cluster{hpc_link()};
    ElasticKvConfig cfg;
    cfg.num_shards = 16;
    cfg.enable_swim = false; // membership churn not under test here
    auto svc = ElasticKvService::create(cluster, {"sim://n0", "sim://n1"}, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        std::exit(1);
    }
    auto& kv = **svc;
    auto client =
        margo::Instance::create(cluster.fabric(),
                                elastic ? "sim://app-elastic" : "sim://app-static",
                                json::Value::parse(R"({"argobots": {
                                    "pools": [{"name": "p", "type": "fifo_wait"}],
                                    "xstreams": [
                                      {"name": "x0", "scheduler": {"pools": ["p"]}},
                                      {"name": "x1", "scheduler": {"pools": ["p"]}}]}})")
                                    .value())
            .value();

    std::vector<PhaseResult> results;
    results.push_back({"steady (2 nodes)", run_phase(kv, client, 4, 100, 4096)});
    // Burst arrives: heavy ingestion, bandwidth bound.
    if (elastic) {
        (void)kv.scale_up("sim://n2");
        (void)kv.scale_up("sim://n3");
    }
    results.push_back({elastic ? "burst (scaled to 4)" : "burst (still 2)",
                       run_phase(kv, client, 16, 30, 64 * 1024)});
    // Burst over.
    if (elastic) {
        (void)kv.scale_down("sim://n3");
        (void)kv.scale_down("sim://n2");
    }
    results.push_back({"post-burst (2 nodes)", run_phase(kv, client, 4, 100, 4096)});
    client->shutdown();
    return results;
}

} // namespace

int main() {
    std::printf("# E8: phased workload, static vs elastic deployment\n");
    std::printf("# link model: 5 us + 50 MB/s per directional link; 16 shards\n");
    auto static_results = run_scenario(/*elastic=*/false);
    auto elastic_results = run_scenario(/*elastic=*/true);
    std::printf("%-24s %16s %16s %10s\n", "phase", "static_MiB_s", "elastic_MiB_s",
                "speedup");
    double burst_speedup = 0;
    for (std::size_t i = 0; i < static_results.size(); ++i) {
        double speedup = elastic_results[i].ops_per_s / static_results[i].ops_per_s;
        if (i == 1) burst_speedup = speedup;
        std::printf("%-24s %16.0f %16.0f %9.2fx\n", elastic_results[i].name.c_str(),
                    static_results[i].ops_per_s, elastic_results[i].ops_per_s, speedup);
    }
    std::printf("# expected shape: elastic wins during the burst (speedup > 1), phases 1 "
                "and 3 comparable\n");
    return burst_speedup > 1.0 ? 0 : 1;
}
