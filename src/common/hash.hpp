// Shared stable hashes. The 64-bit key hash defines the elastic service's
// ring coordinate (composed/layout.hpp) and is also what a Yokan provider
// uses to carve its catalogue into hash ranges during a shard split
// (yokan extract_range / erase_range) — both sides MUST agree bit-for-bit,
// which is why the function lives here rather than in either component.
#pragma once

#include <cstdint>
#include <string_view>

namespace mochi::common {

/// FNV-1a over the full 64-bit space. Deterministic across processes (no
/// seeding, no pointer mixing): any client computes the same ring
/// coordinate for a key as every server.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace mochi::common
