// Tiny leveled, thread-safe logger. Components log through this so that test
// runs stay quiet by default (level = Warn) while examples can turn on Info
// to narrate what the service is doing.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace mochi::log {

enum class Level { Trace = 0, Debug, Info, Warn, Error, Off };

namespace detail {
Level& global_level() noexcept;
std::mutex& sink_mutex() noexcept;
void vlog(Level lvl, const char* component, const char* fmt, va_list args);
} // namespace detail

inline void set_level(Level lvl) noexcept { detail::global_level() = lvl; }
inline Level level() noexcept { return detail::global_level(); }

__attribute__((format(printf, 2, 3)))
void trace(const char* component, const char* fmt, ...);
__attribute__((format(printf, 2, 3)))
void debug(const char* component, const char* fmt, ...);
__attribute__((format(printf, 2, 3)))
void info(const char* component, const char* fmt, ...);
__attribute__((format(printf, 2, 3)))
void warn(const char* component, const char* fmt, ...);
__attribute__((format(printf, 2, 3)))
void error(const char* component, const char* fmt, ...);

} // namespace mochi::log
