// Free-list block pooling for the RPC hot path. A warm RPC must not touch
// the global heap (the allocation-count regression test enforces this), so
// the per-call objects — pending-call records, dispatch contexts, ULT
// descriptors, timer entries, registry map nodes — draw fixed-size blocks
// from these free lists and return them on destruction.
//
// A FreeList recycles blocks of ONE size, learned from the first
// allocation. This matches every intended use: `std::allocate_shared`
// rebinds the allocator to its single in-place control-block type, and the
// node-based containers (map/multimap) rebind to their single node type.
// Requests of any other size (or batched requests, n != 1) fall through to
// the global heap, so the allocator is always safe to hand to a container
// even if it allocates something unexpected.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace mochi {

class FreeList {
  public:
    /// `max_cached` bounds how many free blocks are retained; excess blocks
    /// go back to the heap (a burst does not pin its high-water mark).
    explicit FreeList(std::size_t max_cached = 1024) : m_max_cached(max_cached) {}

    ~FreeList() {
        for (void* p : m_blocks) ::operator delete(p);
    }

    FreeList(const FreeList&) = delete;
    FreeList& operator=(const FreeList&) = delete;

    void* allocate(std::size_t bytes) {
        {
            std::lock_guard lk{m_mutex};
            if (m_block_size == 0) m_block_size = bytes;
            if (bytes == m_block_size && !m_blocks.empty()) {
                void* p = m_blocks.back();
                m_blocks.pop_back();
                m_recycled.fetch_add(1, std::memory_order_relaxed);
                return p;
            }
        }
        return ::operator new(bytes);
    }

    void deallocate(void* p, std::size_t bytes) noexcept {
        {
            std::lock_guard lk{m_mutex};
            if (bytes == m_block_size && m_blocks.size() < m_max_cached) {
                // push_back cannot throw here in steady state (capacity was
                // established by earlier pushes); a growth failure during
                // warm-up would terminate, like any OOM on this path.
                m_blocks.push_back(p);
                return;
            }
        }
        ::operator delete(p);
    }

    /// Total block reuses (feeds the margo_pool_recycled_total metric).
    [[nodiscard]] std::uint64_t recycled() const noexcept {
        return m_recycled.load(std::memory_order_relaxed);
    }

  private:
    std::mutex m_mutex;
    std::vector<void*> m_blocks;
    std::size_t m_block_size = 0;
    std::size_t m_max_cached;
    std::atomic<std::uint64_t> m_recycled{0};
};

/// Minimal allocator over a shared FreeList. The FreeList is held by
/// shared_ptr because allocator copies end up stored inside shared_ptr
/// control blocks (allocate_shared) and container internals, which can
/// outlive the object that created the pool.
template <typename T>
class PoolAllocator {
  public:
    using value_type = T;

    explicit PoolAllocator(std::shared_ptr<FreeList> list) : m_list(std::move(list)) {}
    template <typename U>
    PoolAllocator(const PoolAllocator<U>& other) : m_list(other.list()) {}

    T* allocate(std::size_t n) {
        if (n == 1) return static_cast<T*>(m_list->allocate(sizeof(T)));
        return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
        if (n == 1) {
            m_list->deallocate(p, sizeof(T));
            return;
        }
        ::operator delete(p);
    }

    [[nodiscard]] const std::shared_ptr<FreeList>& list() const noexcept { return m_list; }

    template <typename U>
    bool operator==(const PoolAllocator<U>& o) const noexcept {
        return m_list == o.list();
    }
    template <typename U>
    bool operator!=(const PoolAllocator<U>& o) const noexcept {
        return !(*this == o);
    }

  private:
    std::shared_ptr<FreeList> m_list;
};

} // namespace mochi
