#include "common/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace mochi::json {

namespace {

const Value g_null_value{};

// Maximum nesting accepted by the parser; protects against stack exhaustion
// from adversarial inputs (configs are user-supplied).
constexpr int k_max_depth = 256;

} // namespace

Value& Value::operator[](std::string_view key) {
    if (m_type == Type::Null) m_type = Type::Object;
    assert(m_type == Type::Object);
    return m_object[std::string(key)];
}

const Value& Value::operator[](std::string_view key) const {
    if (m_type != Type::Object) return g_null_value;
    auto it = m_object.find(std::string(key));
    return it == m_object.end() ? g_null_value : it->second;
}

void Value::push_back(Value v) {
    if (m_type == Type::Null) m_type = Type::Array;
    assert(m_type == Type::Array);
    m_array.push_back(std::move(v));
}

bool Value::erase(std::string_view key) {
    if (m_type != Type::Object) return false;
    return m_object.erase(std::string(key)) > 0;
}

std::string Value::get_string(std::string_view key, std::string def) const {
    const Value& v = (*this)[key];
    return v.is_string() ? v.as_string() : def;
}

std::int64_t Value::get_integer(std::string_view key, std::int64_t def) const {
    const Value& v = (*this)[key];
    return v.is_number() ? v.as_integer() : def;
}

double Value::get_real(std::string_view key, double def) const {
    const Value& v = (*this)[key];
    return v.is_number() ? v.as_real() : def;
}

bool Value::get_bool(std::string_view key, bool def) const {
    const Value& v = (*this)[key];
    return v.is_bool() ? v.as_bool() : def;
}

bool Value::operator==(const Value& other) const {
    if (m_type != other.m_type) {
        // Integer 3 and real 3.0 compare equal, like most JSON libraries.
        if (is_number() && other.is_number()) return as_real() == other.as_real();
        return false;
    }
    switch (m_type) {
    case Type::Null: return true;
    case Type::Boolean: return m_bool == other.m_bool;
    case Type::Integer: return m_int == other.m_int;
    case Type::Real: return m_real == other.m_real;
    case Type::String: return m_string == other.m_string;
    case Type::Array: return m_array == other.m_array;
    case Type::Object: return m_object == other.m_object;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void escape_string(const std::string& s, std::string& out) {
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void dump_impl(const Value& v, std::string& out, int indent, int level) {
    const bool pretty = indent >= 0;
    auto newline = [&](int lvl) {
        if (!pretty) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(lvl), ' ');
    };
    switch (v.type()) {
    case Type::Null: out += "null"; break;
    case Type::Boolean: out += v.as_bool() ? "true" : "false"; break;
    case Type::Integer: out += std::to_string(v.as_integer()); break;
    case Type::Real: {
        double d = v.as_real();
        if (std::isfinite(d)) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", d);
            out += buf;
            // Keep reals round-trippable as reals.
            if (!std::strpbrk(buf, ".eE")) out += ".0";
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
    }
    case Type::String: escape_string(v.as_string(), out); break;
    case Type::Array: {
        const auto& arr = v.as_array();
        if (arr.empty()) { out += "[]"; break; }
        out += '[';
        bool first = true;
        for (const auto& e : arr) {
            if (!first) out += ',';
            first = false;
            newline(level + 1);
            dump_impl(e, out, indent, level + 1);
        }
        newline(level);
        out += ']';
        break;
    }
    case Type::Object: {
        const auto& obj = v.as_object();
        if (obj.empty()) { out += "{}"; break; }
        out += '{';
        bool first = true;
        for (const auto& [k, e] : obj) {
            if (!first) out += ',';
            first = false;
            newline(level + 1);
            escape_string(k, out);
            out += pretty ? ": " : ":";
            dump_impl(e, out, indent, level + 1);
        }
        newline(level);
        out += '}';
        break;
    }
    }
}

} // namespace

std::string Value::dump(int indent) const {
    std::string out;
    dump_impl(*this, out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : m_text(text) {}

    Expected<Value> run() {
        skip_ws();
        Value v;
        if (auto st = parse_value(v, 0); !st.ok()) return st.error();
        skip_ws();
        if (m_pos != m_text.size())
            return fail("trailing characters after JSON document");
        return v;
    }

  private:
    std::string_view m_text;
    std::size_t m_pos = 0;

    Error fail(const std::string& what) const {
        return Error{Error::Code::InvalidArgument,
                     "JSON parse error at offset " + std::to_string(m_pos) + ": " + what};
    }

    [[nodiscard]] bool eof() const { return m_pos >= m_text.size(); }
    [[nodiscard]] char peek() const { return m_text[m_pos]; }
    char get() { return m_text[m_pos++]; }

    void skip_ws() {
        while (!eof()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') { ++m_pos; continue; }
            break;
        }
    }

    bool consume(std::string_view lit) {
        if (m_text.substr(m_pos, lit.size()) != lit) return false;
        m_pos += lit.size();
        return true;
    }

    Status parse_value(Value& out, int depth) {
        if (depth > k_max_depth) return fail("nesting too deep");
        if (eof()) return fail("unexpected end of input");
        switch (peek()) {
        case '{': return parse_object(out, depth);
        case '[': return parse_array(out, depth);
        case '"': {
            std::string s;
            if (auto st = parse_string(s); !st.ok()) return st;
            out = Value{std::move(s)};
            return {};
        }
        case 't':
            if (!consume("true")) return fail("invalid literal");
            out = Value{true};
            return {};
        case 'f':
            if (!consume("false")) return fail("invalid literal");
            out = Value{false};
            return {};
        case 'n':
            if (!consume("null")) return fail("invalid literal");
            out = Value{};
            return {};
        default: return parse_number(out);
        }
    }

    Status parse_object(Value& out, int depth) {
        get(); // '{'
        Object obj;
        skip_ws();
        if (!eof() && peek() == '}') { get(); out = Value{std::move(obj)}; return {}; }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected object key");
            std::string key;
            if (auto st = parse_string(key); !st.ok()) return st;
            skip_ws();
            if (eof() || get() != ':') return fail("expected ':' after key");
            skip_ws();
            Value v;
            if (auto st = parse_value(v, depth + 1); !st.ok()) return st;
            obj[std::move(key)] = std::move(v);
            skip_ws();
            if (eof()) return fail("unterminated object");
            char c = get();
            if (c == '}') break;
            if (c != ',') return fail("expected ',' or '}' in object");
        }
        out = Value{std::move(obj)};
        return {};
    }

    Status parse_array(Value& out, int depth) {
        get(); // '['
        Array arr;
        skip_ws();
        if (!eof() && peek() == ']') { get(); out = Value{std::move(arr)}; return {}; }
        while (true) {
            skip_ws();
            Value v;
            if (auto st = parse_value(v, depth + 1); !st.ok()) return st;
            arr.push_back(std::move(v));
            skip_ws();
            if (eof()) return fail("unterminated array");
            char c = get();
            if (c == ']') break;
            if (c != ',') return fail("expected ',' or ']' in array");
        }
        out = Value{std::move(arr)};
        return {};
    }

    Status parse_string(std::string& out) {
        get(); // '"'
        out.clear();
        while (true) {
            if (eof()) return fail("unterminated string");
            char c = get();
            if (c == '"') return {};
            if (static_cast<unsigned char>(c) < 0x20) return fail("control character in string");
            if (c != '\\') { out += c; continue; }
            if (eof()) return fail("unterminated escape");
            char esc = get();
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = 0;
                if (auto st = parse_hex4(cp); !st.ok()) return st;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair.
                    if (!consume("\\u")) return fail("unpaired surrogate");
                    unsigned lo = 0;
                    if (auto st = parse_hex4(lo); !st.ok()) return st;
                    if (lo < 0xDC00 || lo > 0xDFFF) return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                append_utf8(cp, out);
                break;
            }
            default: return fail("invalid escape character");
            }
        }
    }

    Status parse_hex4(unsigned& out) {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (eof()) return fail("truncated \\u escape");
            char c = get();
            out <<= 4;
            if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
            else return fail("invalid hex digit in \\u escape");
        }
        return {};
    }

    static void append_utf8(unsigned cp, std::string& out) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Status parse_number(Value& out) {
        std::size_t start = m_pos;
        if (!eof() && peek() == '-') get();
        bool is_real = false;
        while (!eof()) {
            char c = peek();
            if (c >= '0' && c <= '9') { get(); continue; }
            if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                if (c == '.' || c == 'e' || c == 'E') is_real = true;
                // '+'/'-' only valid inside exponents; from_chars validates.
                if ((c == '+' || c == '-') && !is_real) break;
                get();
                continue;
            }
            break;
        }
        std::string_view tok = m_text.substr(start, m_pos - start);
        if (tok.empty() || tok == "-") return fail("invalid number");
        if (!is_real) {
            std::int64_t i = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
            if (ec == std::errc{} && p == tok.data() + tok.size()) {
                out = Value{i};
                return {};
            }
            // Fall through: integer overflow — represent as real.
        }
        double d = 0;
        auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc{} || p != tok.data() + tok.size()) return fail("invalid number");
        out = Value{d};
        return {};
    }
};

} // namespace

Expected<Value> Value::parse(std::string_view text) {
    return Parser{text}.run();
}

std::uint64_t hash(const Value& v) {
    std::string s = v.dump();
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace mochi::json
