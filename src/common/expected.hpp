// Lightweight Expected<T> / Status error-handling vocabulary used across all
// Mochi modules. We target C++20 (no std::expected), so this provides the
// small subset the codebase needs: value-or-error, monadic map, and a
// formatted-error constructor.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mochi {

/// Error carried by Expected/Status. A simple message plus an optional
/// machine-readable code so callers can branch without string matching.
struct Error {
    enum class Code {
        Generic,
        InvalidArgument,
        NotFound,
        AlreadyExists,
        InvalidState,
        Timeout,
        Unreachable,
        Canceled,
        PermissionDenied,
        Corruption,
        NotLeader,
        Conflict,
        // Appended (wire format encodes code+1; never reorder existing values):
        NoSuchRpc,    ///< target instance is up but lacks the RPC/provider id
        Backpressure, ///< tenant over quota: retryable, back off and resend
    };

    Code code = Code::Generic;
    std::string message;

    Error() = default;
    explicit Error(std::string msg) : message(std::move(msg)) {}
    Error(Code c, std::string msg) : code(c), message(std::move(msg)) {}

    [[nodiscard]] const char* code_name() const noexcept {
        switch (code) {
        case Code::Generic: return "generic";
        case Code::InvalidArgument: return "invalid-argument";
        case Code::NotFound: return "not-found";
        case Code::AlreadyExists: return "already-exists";
        case Code::InvalidState: return "invalid-state";
        case Code::Timeout: return "timeout";
        case Code::Unreachable: return "unreachable";
        case Code::Canceled: return "canceled";
        case Code::PermissionDenied: return "permission-denied";
        case Code::Corruption: return "corruption";
        case Code::NotLeader: return "not-leader";
        case Code::Conflict: return "conflict";
        case Code::NoSuchRpc: return "no-such-rpc";
        case Code::Backpressure: return "backpressure";
        }
        return "unknown";
    }
};

/// Expected<T>: either a T or an Error. Deliberately minimal; throwing is
/// reserved for programmer errors (dereferencing an error-state Expected
/// asserts in debug builds).
template <typename T>
class [[nodiscard]] Expected {
  public:
    Expected(T value) : m_data(std::in_place_index<0>, std::move(value)) {}
    Expected(Error err) : m_data(std::in_place_index<1>, std::move(err)) {}

    [[nodiscard]] bool has_value() const noexcept { return m_data.index() == 0; }
    explicit operator bool() const noexcept { return has_value(); }

    [[nodiscard]] T& value() & {
        assert(has_value());
        return std::get<0>(m_data);
    }
    [[nodiscard]] const T& value() const& {
        assert(has_value());
        return std::get<0>(m_data);
    }
    [[nodiscard]] T&& value() && {
        assert(has_value());
        return std::get<0>(std::move(m_data));
    }

    [[nodiscard]] T value_or(T fallback) const& {
        return has_value() ? std::get<0>(m_data) : std::move(fallback);
    }

    [[nodiscard]] const Error& error() const& {
        assert(!has_value());
        return std::get<1>(m_data);
    }
    [[nodiscard]] Error&& error() && {
        assert(!has_value());
        return std::get<1>(std::move(m_data));
    }

    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }
    T& operator*() & { return value(); }
    const T& operator*() const& { return value(); }
    T&& operator*() && { return std::move(*this).value(); }

    /// Apply f to the contained value, propagating errors unchanged.
    template <typename F>
    auto map(F&& f) && -> Expected<decltype(f(std::declval<T&&>()))> {
        if (!has_value()) return std::move(*this).error();
        return f(std::move(*this).value());
    }

  private:
    std::variant<T, Error> m_data;
};

/// Status: Expected<void>. Default-constructed Status is success.
class [[nodiscard]] Status {
  public:
    Status() = default;
    Status(Error err) : m_error(std::move(err)) {}

    [[nodiscard]] bool ok() const noexcept { return !m_error.has_value(); }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] const Error& error() const {
        assert(!ok());
        return *m_error;
    }

    static Status success() { return {}; }

  private:
    std::optional<Error> m_error;
};

} // namespace mochi
