// Grow-only circular FIFO for hot-path queues (ready-ULT pools, the margo
// progress queue). Unlike std::deque — whose libstdc++ implementation
// allocates and frees a 512-byte chunk roughly every 64 push/pop cycles
// even when the queue hovers near empty — this ring reaches a steady state
// where push/pop never touch the heap: capacity only grows, and slots are
// recycled in place. Moved-from slots keep their capacity (e.g. a Message
// whose strings were moved out), which is exactly what a reusable queue
// wants.
//
// Not thread-safe; callers hold their own lock (Pool::m_mutex,
// Instance::m_queue_mutex).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mochi {

template <typename T>
class RingQueue {
  public:
    [[nodiscard]] bool empty() const noexcept { return m_count == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return m_count; }

    void push_back(T v) {
        if (m_count == m_slots.size()) grow();
        m_slots[index(m_count)] = std::move(v);
        ++m_count;
    }

    /// Precondition: !empty(). The popped slot stays constructed (moved
    /// from), retaining any buffers for reuse on a later push.
    T pop_front() {
        T out = std::move(m_slots[m_head]);
        m_head = index(1);
        --m_count;
        return out;
    }

    [[nodiscard]] T& front() { return m_slots[m_head]; }

    void clear() {
        while (m_count != 0) (void)pop_front();
    }

  private:
    [[nodiscard]] std::size_t index(std::size_t offset) const noexcept {
        std::size_t i = m_head + offset;
        if (i >= m_slots.size()) i -= m_slots.size();
        return i;
    }

    void grow() {
        std::size_t cap = m_slots.empty() ? 16 : m_slots.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < m_count; ++i) next[i] = std::move(m_slots[index(i)]);
        m_slots.swap(next);
        m_head = 0;
    }

    std::vector<T> m_slots;
    std::size_t m_head = 0;
    std::size_t m_count = 0;
};

} // namespace mochi
