// Minimal but complete JSON library. JSON is Mochi's configuration substrate
// (Margo runtime config, Bedrock service descriptions, monitoring dumps), so
// the whole stack depends on this module. Objects keep keys sorted
// (std::map) which makes every dump deterministic and testable.
#pragma once

#include "common/expected.hpp"

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mochi::json {

class Value;

using Array  = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { Null, Boolean, Integer, Real, String, Array, Object };

/// A JSON document node. Value semantics throughout; copies are deep.
class Value {
  public:
    Value() = default;                      // null
    Value(std::nullptr_t) {}                // null
    Value(bool b) : m_type(Type::Boolean) { m_bool = b; }
    Value(int i) : m_type(Type::Integer) { m_int = i; }
    Value(unsigned i) : m_type(Type::Integer) { m_int = i; }
    Value(std::int64_t i) : m_type(Type::Integer) { m_int = i; }
    Value(std::uint64_t i) : m_type(Type::Integer) { m_int = static_cast<std::int64_t>(i); }
    Value(double d) : m_type(Type::Real) { m_real = d; }
    Value(const char* s) : m_type(Type::String), m_string(s) {}
    Value(std::string s) : m_type(Type::String), m_string(std::move(s)) {}
    Value(std::string_view s) : m_type(Type::String), m_string(s) {}
    Value(Array a) : m_type(Type::Array), m_array(std::move(a)) {}
    Value(Object o) : m_type(Type::Object), m_object(std::move(o)) {}

    static Value array() { return Value{Array{}}; }
    static Value object() { return Value{Object{}}; }

    [[nodiscard]] Type type() const noexcept { return m_type; }
    [[nodiscard]] bool is_null() const noexcept { return m_type == Type::Null; }
    [[nodiscard]] bool is_bool() const noexcept { return m_type == Type::Boolean; }
    [[nodiscard]] bool is_integer() const noexcept { return m_type == Type::Integer; }
    [[nodiscard]] bool is_real() const noexcept { return m_type == Type::Real; }
    [[nodiscard]] bool is_number() const noexcept { return is_integer() || is_real(); }
    [[nodiscard]] bool is_string() const noexcept { return m_type == Type::String; }
    [[nodiscard]] bool is_array() const noexcept { return m_type == Type::Array; }
    [[nodiscard]] bool is_object() const noexcept { return m_type == Type::Object; }

    [[nodiscard]] bool as_bool() const { return m_bool; }
    [[nodiscard]] std::int64_t as_integer() const {
        return m_type == Type::Real ? static_cast<std::int64_t>(m_real) : m_int;
    }
    [[nodiscard]] double as_real() const {
        return m_type == Type::Integer ? static_cast<double>(m_int) : m_real;
    }
    [[nodiscard]] const std::string& as_string() const { return m_string; }
    [[nodiscard]] const Array& as_array() const { return m_array; }
    [[nodiscard]] Array& as_array() { return m_array; }
    [[nodiscard]] const Object& as_object() const { return m_object; }
    [[nodiscard]] Object& as_object() { return m_object; }

    // -- object access ------------------------------------------------------

    /// True if this is an object containing `key`.
    [[nodiscard]] bool contains(std::string_view key) const {
        return m_type == Type::Object && m_object.find(std::string(key)) != m_object.end();
    }

    /// Object access, inserting a null member if absent (converts a null
    /// value into an object, mirroring nlohmann/jansson ergonomics).
    Value& operator[](std::string_view key);

    /// Const object access; returns a shared null sentinel when absent.
    const Value& operator[](std::string_view key) const;

    /// Array element access (no bounds extension).
    Value& operator[](std::size_t idx) { return m_array[idx]; }
    const Value& operator[](std::size_t idx) const { return m_array[idx]; }

    /// Size of an array or object; 0 for scalars.
    [[nodiscard]] std::size_t size() const noexcept {
        if (m_type == Type::Array) return m_array.size();
        if (m_type == Type::Object) return m_object.size();
        return 0;
    }

    /// Append to an array (converts null to array first).
    void push_back(Value v);

    /// Remove an object member; returns true if it existed.
    bool erase(std::string_view key);

    /// Typed getters with defaults, the idiomatic way components read their
    /// configuration fragments.
    [[nodiscard]] std::string get_string(std::string_view key, std::string def = "") const;
    [[nodiscard]] std::int64_t get_integer(std::string_view key, std::int64_t def = 0) const;
    [[nodiscard]] double get_real(std::string_view key, double def = 0.0) const;
    [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;

    // -- comparison / io -----------------------------------------------------

    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const { return !(*this == other); }

    /// Serialize. indent < 0 → compact single line; otherwise pretty-printed
    /// with `indent` spaces per level.
    [[nodiscard]] std::string dump(int indent = -1) const;

    /// Parse a JSON document. Errors carry a byte offset and description.
    static Expected<Value> parse(std::string_view text);

  private:
    Type m_type = Type::Null;
    union {
        bool m_bool;
        std::int64_t m_int = 0;
        double m_real;
    };
    std::string m_string;
    Array m_array;
    Object m_object;
};

/// FNV-1a hash of the compact serialization; used e.g. by SSG view hashing.
[[nodiscard]] std::uint64_t hash(const Value& v);

} // namespace mochi::json
