#include "common/logging.hpp"

#include <cstdarg>
#include <ctime>

namespace mochi::log {

namespace detail {

Level& global_level() noexcept {
    static Level lvl = Level::Warn;
    return lvl;
}

std::mutex& sink_mutex() noexcept {
    static std::mutex m;
    return m;
}

void vlog(Level lvl, const char* component, const char* fmt, va_list args) {
    if (lvl < global_level()) return;
    static const char* names[] = {"TRACE", "DEBUG", "INFO ", "WARN ", "ERROR"};
    char message[1024];
    std::vsnprintf(message, sizeof message, fmt, args);
    std::lock_guard lock{sink_mutex()};
    std::fprintf(stderr, "[%s] [%s] %s\n", names[static_cast<int>(lvl)], component, message);
}

} // namespace detail

#define MOCHI_LOG_IMPL(name, lvl)                                     \
    void name(const char* component, const char* fmt, ...) {          \
        if (Level::lvl < detail::global_level()) return;              \
        va_list args;                                                 \
        va_start(args, fmt);                                          \
        detail::vlog(Level::lvl, component, fmt, args);               \
        va_end(args);                                                 \
    }

MOCHI_LOG_IMPL(trace, Trace)
MOCHI_LOG_IMPL(debug, Debug)
MOCHI_LOG_IMPL(info, Info)
MOCHI_LOG_IMPL(warn, Warn)
MOCHI_LOG_IMPL(error, Error)

#undef MOCHI_LOG_IMPL

} // namespace mochi::log
