// Warabi: Mochi's blob-storage component. A provider manages a "target"
// holding byte regions addressed by 64-bit ids; clients create regions,
// write/read byte ranges (small payloads inline, large ones via RDMA bulk),
// and erase them. Used by the paper's composition example (§3.2: component
// M stores dataset metadata in Yokan and data in Warabi).
#pragma once

#include "margo/provider.hpp"
#include "remi/sim_file_store.hpp"

#include <map>

namespace mochi::warabi {

/// Client-side handle to a remote target.
class TargetHandle : public margo::ResourceHandle {
  public:
    TargetHandle(margo::InstancePtr instance, std::string address, std::uint16_t provider_id)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "warabi") {}

    /// write_multi batches at or above this many payload bytes ride a
    /// single bulk (RDMA) pull instead of inline RPC bytes.
    static constexpr std::size_t k_bulk_threshold = 16 * 1024;

    /// Allocate a region of `size` bytes; returns its id.
    [[nodiscard]] Expected<std::uint64_t> create(std::uint64_t size) const;
    Status write(std::uint64_t region, std::uint64_t offset, const std::string& data) const;
    /// Apply N (offset, bytes) writes to one region in a single RPC. Small
    /// batches travel inline; at k_bulk_threshold total payload bytes the
    /// data rides one bulk pull (offsets inline, bytes as a segment buffer).
    /// The batch is validated whole before any byte lands, so a failed op
    /// never leaves the region half-written.
    Status write_multi(std::uint64_t region,
                       const std::vector<std::pair<std::uint64_t, std::string>>& writes) const;
    [[nodiscard]] Expected<std::string> read(std::uint64_t region, std::uint64_t offset,
                                             std::uint64_t size) const;
    Status erase(std::uint64_t region) const;
    [[nodiscard]] Expected<std::uint64_t> region_size(std::uint64_t region) const;

    /// RDMA paths for large payloads: the caller exposes a local buffer and
    /// the provider pulls/pushes it.
    Status write_bulk(std::uint64_t region, std::uint64_t offset, const char* data,
                      std::size_t size) const;
    Status read_bulk(std::uint64_t region, std::uint64_t offset, char* data,
                     std::size_t size) const;
};

struct TargetConfig {
    std::string target_name = "target";
    /// Inline-payload threshold: writes/reads above it should use the bulk
    /// API (enforced only by convention, as in Mochi).
    std::uint64_t inline_threshold = 4096;
};

class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id, TargetConfig config = {},
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before m_regions/m_mutex are destroyed.
    ~Provider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

    [[nodiscard]] std::string root() const { return "/warabi/" + m_config.target_name + "/"; }
    Status dump_to_store(remi::SimFileStore& store) const;
    Status load_from_store(remi::SimFileStore& store);

  private:
    /// Shared tail of write_multi / write_multi_bulk: validate the whole
    /// batch, apply it, emit one notify_batch_op per op, reply once.
    void handle_write_multi(const margo::Request& req, std::uint64_t region,
                            const std::vector<std::uint64_t>& offsets,
                            const std::vector<std::string_view>& datas);

    TargetConfig m_config;
    mutable std::mutex m_mutex;
    std::map<std::uint64_t, std::string> m_regions;
    std::uint64_t m_next_region = 1;
};

/// Register Warabi's Bedrock module under "libwarabi.so" (idempotent).
void register_module();

} // namespace mochi::warabi
