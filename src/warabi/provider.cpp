#include "warabi/provider.hpp"
#include "bedrock/component.hpp"

namespace mochi::warabi {

// ---------------------------------------------------------------------------
// TargetHandle
// ---------------------------------------------------------------------------

Expected<std::uint64_t> TargetHandle::create(std::uint64_t size) const {
    auto r = call<std::uint64_t>("create", size);
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

Status TargetHandle::write(std::uint64_t region, std::uint64_t offset,
                           const std::string& data) const {
    auto r = call<bool>("write", region, offset, data);
    if (!r) return r.error();
    return {};
}

Expected<std::string> TargetHandle::read(std::uint64_t region, std::uint64_t offset,
                                         std::uint64_t size) const {
    auto r = call<std::string>("read", region, offset, size);
    if (!r) return std::move(r).error();
    return std::get<0>(std::move(*r));
}

Status TargetHandle::erase(std::uint64_t region) const {
    auto r = call<bool>("erase", region);
    if (!r) return r.error();
    return {};
}

Expected<std::uint64_t> TargetHandle::region_size(std::uint64_t region) const {
    auto r = call<std::uint64_t>("region_size", region);
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

Status TargetHandle::write_multi(
    std::uint64_t region,
    const std::vector<std::pair<std::uint64_t, std::string>>& writes) const {
    if (writes.empty()) return {};
    std::size_t bytes = 0;
    for (const auto& [off, data] : writes) {
        (void)off;
        bytes += data.size();
    }
    if (writes.size() > 1 && bytes >= k_bulk_threshold) {
        // Offsets stay inline with the RPC; the concatenated segment data
        // travels in one bulk pull.
        std::vector<std::uint64_t> offsets;
        offsets.reserve(writes.size());
        mercury::SegmentBuilder builder;
        for (const auto& [off, data] : writes) {
            offsets.push_back(off);
            builder.add(data);
        }
        auto buffer = builder.take();
        auto handle = instance()->expose(buffer.data(), buffer.size(), /*writable=*/false);
        auto r = call<bool>("write_multi_bulk", region, offsets, handle);
        instance()->unexpose(handle.id);
        if (!r) return r.error();
        return {};
    }
    auto r = call<bool>("write_multi", region, writes);
    if (!r) return r.error();
    return {};
}

Status TargetHandle::write_bulk(std::uint64_t region, std::uint64_t offset, const char* data,
                                std::size_t size) const {
    auto handle = instance()->expose(const_cast<char*>(data), size, /*writable=*/false);
    auto r = call<bool>("write_bulk", region, offset, handle);
    instance()->unexpose(handle.id);
    if (!r) return r.error();
    return {};
}

Status TargetHandle::read_bulk(std::uint64_t region, std::uint64_t offset, char* data,
                               std::size_t size) const {
    auto handle = instance()->expose(data, size, /*writable=*/true);
    auto r = call<bool>("read_bulk", region, offset, handle);
    instance()->unexpose(handle.id);
    if (!r) return r.error();
    return {};
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::InstancePtr instance, std::uint16_t provider_id,
                   TargetConfig config, std::shared_ptr<abt::Pool> pool)
: margo::Provider(std::move(instance), provider_id, "warabi", std::move(pool)),
  m_config(std::move(config)) {
    auto store = remi::SimFileStore::for_node(this->instance()->address());
    if (!store->list(root()).empty()) (void)load_from_store(*store);

    define("create", [this](const margo::Request& req) {
        std::uint64_t size = 0;
        if (!req.unpack(size)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        this->instance()->metrics()->counter("warabi_regions_created_total").inc();
        std::uint64_t id;
        {
            std::lock_guard lk{m_mutex};
            id = m_next_region++;
            m_regions[id] = std::string(size, '\0');
        }
        req.respond_values(id);
    });
    define("write", [this](const margo::Request& req) {
        std::uint64_t region = 0, offset = 0;
        // Zero-copy: the data bytes are read straight out of the request
        // payload into the region, never staged in an owned string.
        std::string_view data;
        if (!req.unpack(region, offset, data)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!admit(req)) return;
        this->instance()->metrics()->counter("warabi_bytes_written_total").inc(data.size());
        std::lock_guard lk{m_mutex};
        auto it = m_regions.find(region);
        if (it == m_regions.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no such region"});
            return;
        }
        if (offset + data.size() > it->second.size()) {
            req.respond_error(Error{Error::Code::InvalidArgument, "write out of bounds"});
            return;
        }
        it->second.replace(offset, data.size(), data);
        req.respond_values(true);
    });
    define("read", [this](const margo::Request& req) {
        std::uint64_t region = 0, offset = 0, size = 0;
        if (!req.unpack(region, offset, size)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        // Reads bill their byte quota on what leaves the node, not the
        // few bytes of request header.
        if (!admit(req, size)) return;
        std::lock_guard lk{m_mutex};
        auto it = m_regions.find(region);
        if (it == m_regions.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no such region"});
            return;
        }
        if (offset + size > it->second.size()) {
            req.respond_error(Error{Error::Code::InvalidArgument, "read out of bounds"});
            return;
        }
        this->instance()->metrics()->counter("warabi_bytes_read_total").inc(size);
        req.respond_values(it->second.substr(offset, size));
    });
    define("erase", [this](const margo::Request& req) {
        std::uint64_t region = 0;
        if (!req.unpack(region)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (m_regions.erase(region) == 0) {
            req.respond_error(Error{Error::Code::NotFound, "no such region"});
            return;
        }
        req.respond_values(true);
    });
    define("region_size", [this](const margo::Request& req) {
        std::uint64_t region = 0;
        if (!req.unpack(region)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        auto it = m_regions.find(region);
        if (it == m_regions.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no such region"});
            return;
        }
        req.respond_values(static_cast<std::uint64_t>(it->second.size()));
    });
    define("write_multi", [this](const margo::Request& req) {
        std::uint64_t region = 0;
        // Data segments decode as views into the request payload, so the
        // batch is never re-copied between the wire and the region.
        std::vector<std::pair<std::uint64_t, std::string_view>> writes;
        if (!req.unpack(region, writes)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!admit(req)) return;
        std::vector<std::uint64_t> offsets;
        std::vector<std::string_view> datas;
        offsets.reserve(writes.size());
        datas.reserve(writes.size());
        for (const auto& [off, data] : writes) {
            offsets.push_back(off);
            datas.push_back(data);
        }
        handle_write_multi(req, region, offsets, datas);
    });
    define("write_multi_bulk", [this](const margo::Request& req) {
        std::uint64_t region = 0;
        std::vector<std::uint64_t> offsets;
        mercury::BulkHandle handle;
        if (!req.unpack(region, offsets, handle)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!admit(req, handle.size)) return;
        std::string buffer(handle.size, '\0');
        if (auto st = this->instance()->bulk_pull(handle, 0, buffer.data(), buffer.size());
            !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        std::vector<std::string_view> datas;
        if (!mercury::unpack_segments(buffer, datas) || datas.size() != offsets.size()) {
            req.respond_error(
                Error{Error::Code::Corruption, "bad write_multi segment buffer"});
            return;
        }
        handle_write_multi(req, region, offsets, datas);
    });
    define("write_bulk", [this](const margo::Request& req) {
        std::uint64_t region = 0, offset = 0;
        mercury::BulkHandle handle;
        if (!req.unpack(region, offset, handle)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!admit(req, handle.size)) return;
        std::string buffer(handle.size, '\0');
        if (auto st = this->instance()->bulk_pull(handle, 0, buffer.data(), buffer.size());
            !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        std::lock_guard lk{m_mutex};
        auto it = m_regions.find(region);
        if (it == m_regions.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no such region"});
            return;
        }
        if (offset + buffer.size() > it->second.size()) {
            req.respond_error(Error{Error::Code::InvalidArgument, "write out of bounds"});
            return;
        }
        it->second.replace(offset, buffer.size(), buffer);
        req.respond_values(true);
    });
    define("read_bulk", [this](const margo::Request& req) {
        std::uint64_t region = 0, offset = 0;
        mercury::BulkHandle handle;
        if (!req.unpack(region, offset, handle)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!admit(req, handle.size)) return;
        std::string data;
        {
            std::lock_guard lk{m_mutex};
            auto it = m_regions.find(region);
            if (it == m_regions.end()) {
                req.respond_error(Error{Error::Code::NotFound, "no such region"});
                return;
            }
            if (offset + handle.size > it->second.size()) {
                req.respond_error(Error{Error::Code::InvalidArgument, "read out of bounds"});
                return;
            }
            data = it->second.substr(offset, handle.size);
        }
        if (auto st = this->instance()->bulk_push(handle, 0, data.data(), data.size());
            !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        req.respond_values(true);
    });
}

void Provider::handle_write_multi(const margo::Request& req, std::uint64_t region,
                                  const std::vector<std::uint64_t>& offsets,
                                  const std::vector<std::string_view>& datas) {
    auto& bytes_written = instance()->metrics()->counter("warabi_bytes_written_total");
    std::lock_guard lk{m_mutex};
    auto it = m_regions.find(region);
    if (it == m_regions.end()) {
        req.respond_error(Error{Error::Code::NotFound, "no such region"});
        return;
    }
    // Validate the whole batch before applying any of it, so a bad op never
    // leaves the region half-written.
    for (std::size_t i = 0; i < datas.size(); ++i) {
        if (offsets[i] + datas[i].size() > it->second.size()) {
            req.respond_error(Error{Error::Code::InvalidArgument, "write out of bounds"});
            return;
        }
    }
    // Applied in order under the region lock (ops in a batch may overlap),
    // but every op still reports its own span and metric count even though
    // the fabric saw a single RPC.
    for (std::size_t i = 0; i < datas.size(); ++i) {
        double t0 = margo::trace_now_us();
        it->second.replace(offsets[i], datas[i].size(), datas[i].data(), datas[i].size());
        bytes_written.inc(datas[i].size());
        instance()->notify_batch_op("warabi/write", datas[i].size(),
                                    margo::trace_now_us() - t0, true);
    }
    req.respond_values(true);
}

json::Value Provider::get_config() const {
    std::lock_guard lk{m_mutex};
    auto c = json::Value::object();
    c["name"] = m_config.target_name;
    c["inline_threshold"] = m_config.inline_threshold;
    c["regions"] = m_regions.size();
    return c;
}

Status Provider::dump_to_store(remi::SimFileStore& store) const {
    std::lock_guard lk{m_mutex};
    store.remove_prefix(root());
    for (const auto& [id, data] : m_regions) {
        char name[32];
        std::snprintf(name, sizeof name, "region-%016llx",
                      static_cast<unsigned long long>(id));
        if (auto st = store.write(root() + name, data); !st.ok()) return st;
    }
    return {};
}

Status Provider::load_from_store(remi::SimFileStore& store) {
    std::lock_guard lk{m_mutex};
    m_regions.clear();
    for (const auto& path : store.list(root())) {
        auto data = store.read(path);
        if (!data) return data.error();
        auto name = path.substr(root().size());
        if (name.rfind("region-", 0) != 0)
            return Error{Error::Code::Corruption, "unexpected file " + path};
        std::uint64_t id = std::stoull(name.substr(7), nullptr, 16);
        m_next_region = std::max(m_next_region, id + 1);
        m_regions[id] = std::move(*data);
    }
    return {};
}

// ---------------------------------------------------------------------------
// Bedrock module
// ---------------------------------------------------------------------------

namespace {

class WarabiComponent : public bedrock::ComponentInstance {
  public:
    explicit WarabiComponent(const bedrock::ComponentArgs& args) {
        TargetConfig cfg;
        cfg.target_name = args.config.get_string("name", "target");
        if (auto t = args.config.get_integer("inline_threshold", 0); t > 0)
            cfg.inline_threshold = static_cast<std::uint64_t>(t);
        m_provider =
            std::make_unique<Provider>(args.instance, args.provider_id, cfg, args.pool);
    }
    json::Value get_config() const override { return m_provider->get_config(); }

  private:
    std::unique_ptr<Provider> m_provider;
};

} // namespace

void register_module() {
    bedrock::ModuleDefinition module;
    module.type = "warabi";
    module.factory = [](const bedrock::ComponentArgs& args)
        -> Expected<std::unique_ptr<bedrock::ComponentInstance>> {
        return std::unique_ptr<bedrock::ComponentInstance>(new WarabiComponent(args));
    };
    bedrock::ModuleRegistry::provide("libwarabi.so", std::move(module));
}

} // namespace mochi::warabi
