#include "bedrock/process.hpp"
#include "bedrock/jx9.hpp"
#include "common/logging.hpp"

#include <thread>

namespace mochi::bedrock {

namespace {

/// Locking discipline: m_mutex (abt::Mutex, suspension-safe) serializes
/// configuration mutations and may be held across RPCs; m_providers is read
/// through short std::recursive_mutex sections so that remote lookup RPCs
/// (has_provider, register_dependent) never wait on a mutation in progress —
/// this breaks the distributed deadlock that mutual cross-process
/// dependency checks would otherwise create.
abt::Mutex& config_mutex(void* tag, std::map<void*, std::unique_ptr<abt::Mutex>>& registry,
                         std::mutex& guard) {
    std::lock_guard lk{guard};
    auto& slot = registry[tag];
    if (!slot) slot = std::make_unique<abt::Mutex>();
    return *slot;
}

} // namespace

// The configuration mutation lock is stored out-of-line so that the header
// does not need abt/sync.hpp.
static std::mutex g_cfg_registry_guard;
static std::map<void*, std::unique_ptr<abt::Mutex>> g_cfg_registry;

static abt::Mutex& cfg_lock(const Process* p) {
    return config_mutex(const_cast<Process*>(p), g_cfg_registry, g_cfg_registry_guard);
}

Expected<std::shared_ptr<Process>> Process::spawn(std::shared_ptr<mercury::Fabric> fabric,
                                                  std::string address,
                                                  const json::Value& config) {
    auto inst = margo::Instance::create(fabric, std::move(address), config["margo"]);
    if (!inst) return inst.error();
    auto proc = std::shared_ptr<Process>(new Process());
    proc->m_margo = std::move(inst).value();
    proc->m_fabric = std::move(fabric);
    proc->register_rpcs();

    // Load libraries (Listing 3 "libraries" section).
    if (config.contains("libraries")) {
        if (!config["libraries"].is_object()) {
            proc->shutdown();
            return Error{Error::Code::InvalidArgument, "'libraries' must be an object"};
        }
        for (const auto& [type, lib] : config["libraries"].as_object()) {
            if (!lib.is_string()) {
                proc->shutdown();
                return Error{Error::Code::InvalidArgument, "library path must be a string"};
            }
            if (auto st = proc->load_module(type, lib.as_string()); !st.ok()) {
                proc->shutdown();
                return st.error();
            }
        }
    }
    // Start providers in declaration order.
    if (config.contains("providers")) {
        if (!config["providers"].is_array()) {
            proc->shutdown();
            return Error{Error::Code::InvalidArgument, "'providers' must be an array"};
        }
        for (const auto& desc : config["providers"].as_array()) {
            if (auto st = proc->start_provider(desc); !st.ok()) {
                proc->shutdown();
                return st.error();
            }
        }
    }
    return proc;
}

Expected<std::shared_ptr<Process>> Process::spawn_jx9(
    std::shared_ptr<mercury::Fabric> fabric, std::string address,
    std::string_view jx9_script, const json::Value& params) {
    auto config = jx9::evaluate(
        jx9_script, {{"params", params.is_null() ? json::Value::object() : params},
                     {"address", json::Value{address}}});
    if (!config) return config.error();
    if (!config->is_object())
        return Error{Error::Code::InvalidArgument,
                     "jx9 configuration script must return an object"};
    return spawn(std::move(fabric), std::move(address), *config);
}

Process::~Process() {
    shutdown();
    std::lock_guard lk{g_cfg_registry_guard};
    g_cfg_registry.erase(const_cast<Process*>(this));
}

void Process::shutdown() {
    {
        std::lock_guard lk{m_mutex};
        if (m_shutdown) return;
        m_shutdown = true;
        // Destroy providers in reverse start order approximation: clear map.
        m_providers.clear();
        m_modules.clear();
    }
    m_margo->shutdown();
}

// ---------------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------------

Status Process::load_module(const std::string& type, const std::string& library) {
    auto module = ModuleRegistry::lookup(library);
    if (!module) return module.error();
    if (module->type != type)
        return Error{Error::Code::InvalidArgument,
                     "library '" + library + "' provides type '" + module->type +
                         "', not '" + type + "'"};
    std::lock_guard lk{m_mutex};
    m_libraries[type] = library;
    m_modules[type] = std::move(*module);
    return {};
}

bool Process::has_module(const std::string& type) const {
    std::lock_guard lk{m_mutex};
    return m_modules.count(type) > 0;
}

// ---------------------------------------------------------------------------
// Providers
// ---------------------------------------------------------------------------

Status Process::start_provider(const json::Value& descriptor) {
    abt::Mutex& mtx = cfg_lock(this);
    mtx.lock();
    auto st = start_provider_locked(descriptor);
    mtx.unlock();
    return st;
}

Status Process::start_provider_locked(const json::Value& descriptor) {
    if (!descriptor.is_object())
        return Error{Error::Code::InvalidArgument, "provider descriptor must be an object"};
    std::string name = descriptor.get_string("name");
    std::string type = descriptor.get_string("type");
    auto provider_id = static_cast<std::uint16_t>(descriptor.get_integer("provider_id", 0));
    if (name.empty() || type.empty())
        return Error{Error::Code::InvalidArgument,
                     "provider descriptor requires 'name' and 'type'"};

    ModuleDefinition module;
    {
        std::lock_guard lk{m_mutex};
        if (m_shutdown) return Error{Error::Code::InvalidState, "process is shut down"};
        auto mit = m_modules.find(type);
        if (mit == m_modules.end())
            return Error{Error::Code::NotFound,
                         "no module loaded for provider type '" + type + "'"};
        module = mit->second;
        if (m_providers.count(name))
            return Error{Error::Code::AlreadyExists, "provider '" + name + "' already exists"};
        for (const auto& [n, e] : m_providers) {
            if (e.type == type && e.provider_id == provider_id)
                return Error{Error::Code::AlreadyExists,
                             "a '" + type + "' provider with id " +
                                 std::to_string(provider_id) + " already exists"};
        }
    }

    // Resolve the pool.
    std::shared_ptr<abt::Pool> pool;
    std::string pool_name = descriptor.get_string("pool");
    if (pool_name.empty()) {
        pool = m_margo->runtime()->primary_pool();
    } else {
        auto p = m_margo->find_pool_by_name(pool_name);
        if (!p)
            return Error{Error::Code::NotFound,
                         "provider '" + name + "' references unknown pool '" + pool_name + "'"};
        pool = std::move(p).value();
    }

    // Resolve dependencies against the module's specification.
    ComponentArgs args;
    args.instance = m_margo;
    args.name = name;
    args.provider_id = provider_id;
    args.pool = pool;
    args.config = descriptor["config"];
    std::vector<ResolvedDependency> flattened;
    const json::Value& deps = descriptor["dependencies"];
    for (const auto& spec : module.dependency_specs) {
        if (!deps.contains(spec.name)) {
            if (spec.required)
                return Error{Error::Code::InvalidArgument,
                             "provider '" + name + "' misses required dependency '" +
                                 spec.name + "'"};
            continue;
        }
        const json::Value& entry = deps[spec.name];
        std::vector<std::string> raw;
        if (entry.is_string()) {
            raw.push_back(entry.as_string());
        } else if (entry.is_array()) {
            if (!spec.is_array)
                return Error{Error::Code::InvalidArgument,
                             "dependency '" + spec.name + "' of '" + name +
                                 "' does not accept a list"};
            for (const auto& e : entry.as_array()) {
                if (!e.is_string())
                    return Error{Error::Code::InvalidArgument,
                                 "dependency entries must be strings"};
                raw.push_back(e.as_string());
            }
        } else {
            return Error{Error::Code::InvalidArgument,
                         "dependency '" + spec.name + "' must be a string or list"};
        }
        for (const auto& s : raw) {
            auto dep = parse_dependency(s);
            if (!dep) return dep.error();
            if (dep->is_local()) {
                std::lock_guard lk{m_mutex};
                auto pit = m_providers.find(dep->local_name);
                if (pit == m_providers.end())
                    return Error{Error::Code::NotFound,
                                 "dependency '" + s + "' of provider '" + name +
                                     "' not found in this process"};
                if (!spec.type.empty() && pit->second.type != spec.type)
                    return Error{Error::Code::InvalidArgument,
                                 "dependency '" + s + "' has type '" + pit->second.type +
                                     "', expected '" + spec.type + "'"};
                dep->type = pit->second.type;
                dep->provider_id = pit->second.provider_id;
                pit->second.dependents.insert(name);
            } else {
                if (dep->address == address()) {
                    return Error{Error::Code::InvalidArgument,
                                 "dependency '" + s + "' addresses this process; use the "
                                 "local provider name instead"};
                }
                // Remote dependency: verify it exists and register ourselves
                // as a dependent (cross-process dependency tracking, §5).
                auto ok = m_margo->call<bool>(
                    dep->address, "bedrock/has_provider_typed", {}, dep->type,
                    static_cast<std::uint32_t>(dep->provider_id));
                if (!ok) return ok.error();
                if (!std::get<0>(*ok))
                    return Error{Error::Code::NotFound,
                                 "remote dependency '" + s + "' of provider '" + name +
                                     "' does not exist"};
                auto reg = m_margo->call<bool>(
                    dep->address, "bedrock/register_dependent", {}, dep->type,
                    static_cast<std::uint32_t>(dep->provider_id), name + "@" + address());
                if (!reg) return reg.error();
            }
            args.dependencies[spec.name].push_back(*dep);
            flattened.push_back(*dep);
        }
    }

    auto component = module.factory(args);
    if (!component) return component.error();

    std::lock_guard lk{m_mutex};
    ProviderEntry entry;
    entry.descriptor = descriptor;
    entry.descriptor["pool"] = pool->name();
    entry.type = type;
    entry.provider_id = provider_id;
    entry.component = std::move(*component);
    entry.dependencies = std::move(flattened);
    m_providers.emplace(name, std::move(entry));
    log::info("bedrock", "%s: started provider %s (type %s, id %u)", address().c_str(),
              name.c_str(), type.c_str(), provider_id);
    return {};
}

Status Process::stop_provider(const std::string& name) {
    abt::Mutex& mtx = cfg_lock(this);
    mtx.lock();
    auto st = stop_provider_locked(name);
    mtx.unlock();
    return st;
}

Status Process::stop_provider_locked(const std::string& name) {
    std::vector<ResolvedDependency> deps;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_providers.find(name);
        if (it == m_providers.end())
            return Error{Error::Code::NotFound, "no provider named '" + name + "'"};
        if (!it->second.dependents.empty())
            return Error{Error::Code::InvalidState,
                         "provider '" + name + "' still has dependents (e.g. '" +
                             *it->second.dependents.begin() + "')"};
        for (const auto& [n, e] : m_providers) {
            for (const auto& d : e.dependencies) {
                if (d.is_local() && d.local_name == name)
                    return Error{Error::Code::InvalidState,
                                 "provider '" + name + "' is a dependency of '" + n + "'"};
            }
        }
        deps = it->second.dependencies;
        m_providers.erase(it); // destroys the component (deregisters RPCs)
    }
    // Release our registrations at remote dependency holders (best effort).
    for (const auto& d : deps) {
        if (d.is_local()) {
            std::lock_guard lk{m_mutex};
            auto pit = m_providers.find(d.local_name);
            if (pit != m_providers.end()) pit->second.dependents.erase(name);
        } else {
            (void)m_margo->call<bool>(d.address, "bedrock/unregister_dependent", {}, d.type,
                                      static_cast<std::uint32_t>(d.provider_id),
                                      name + "@" + address());
        }
    }
    log::info("bedrock", "%s: stopped provider %s", address().c_str(), name.c_str());
    return {};
}

bool Process::has_provider(std::string_view name) const {
    std::lock_guard lk{m_mutex};
    return m_providers.find(name) != m_providers.end();
}

bool Process::has_provider(std::string_view type, std::uint16_t provider_id) const {
    std::lock_guard lk{m_mutex};
    for (const auto& [n, e] : m_providers)
        if (e.type == type && e.provider_id == provider_id) return true;
    return false;
}

std::vector<std::string> Process::provider_names() const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> names;
    names.reserve(m_providers.size());
    for (const auto& [n, e] : m_providers) names.push_back(n);
    return names;
}

Expected<ComponentInstance*> Process::find_component(const std::string& name) const {
    std::lock_guard lk{m_mutex};
    auto it = m_providers.find(name);
    if (it == m_providers.end())
        return Error{Error::Code::NotFound, "no provider named '" + name + "'"};
    return it->second.component.get();
}

Status Process::register_dependent(const std::string& provider,
                                   const std::string& dependent_spec) {
    std::lock_guard lk{m_mutex};
    auto it = m_providers.find(provider);
    if (it == m_providers.end())
        return Error{Error::Code::NotFound, "no provider named '" + provider + "'"};
    it->second.dependents.insert(dependent_spec);
    return {};
}

Status Process::unregister_dependent(const std::string& provider,
                                     const std::string& dependent_spec) {
    std::lock_guard lk{m_mutex};
    auto it = m_providers.find(provider);
    if (it == m_providers.end())
        return Error{Error::Code::NotFound, "no provider named '" + provider + "'"};
    it->second.dependents.erase(dependent_spec);
    return {};
}

// ---------------------------------------------------------------------------
// Pools / xstreams
// ---------------------------------------------------------------------------

Expected<std::shared_ptr<abt::Pool>> Process::add_pool(const json::Value& config) {
    return m_margo->add_pool_from_json(config);
}

Status Process::remove_pool(const std::string& name) {
    // Bedrock knows which providers use which pools (§5 Obs. 3) and refuses
    // to orphan one.
    {
        std::lock_guard lk{m_mutex};
        for (const auto& [n, e] : m_providers) {
            if (e.descriptor.get_string("pool") == name)
                return Error{Error::Code::InvalidState,
                             "pool '" + name + "' is used by provider '" + n + "'"};
        }
    }
    return m_margo->remove_pool(name);
}

Status Process::add_xstream(const json::Value& config) {
    return m_margo->add_xstream_from_json(config);
}

Status Process::remove_xstream(const std::string& name) {
    return m_margo->remove_xstream(name);
}

// ---------------------------------------------------------------------------
// Migration / checkpoint / restore (§6, §7)
// ---------------------------------------------------------------------------

Status Process::migrate_provider(const std::string& name, const std::string& dest_address,
                                 const json::Value& options) {
    abt::Mutex& mtx = cfg_lock(this);
    mtx.lock();
    auto unlock = [&mtx](Status st) {
        mtx.unlock();
        return st;
    };
    json::Value descriptor;
    ComponentInstance* component = nullptr;
    std::uint16_t provider_id = 0;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_providers.find(name);
        if (it == m_providers.end())
            return unlock(Error{Error::Code::NotFound, "no provider named '" + name + "'"});
        // §6 Obs. 5: "Bedrock can assert that migrating a provider will not
        // break dependencies."
        if (!it->second.dependents.empty() && !options.get_bool("force"))
            return unlock(Error{Error::Code::InvalidState,
                                "provider '" + name + "' has dependents; migration would "
                                "break them (pass force to override)"});
        descriptor = it->second.descriptor;
        component = it->second.component.get();
        provider_id = it->second.provider_id;
    }
    // 1. Migrate the resource's data (component hook, usually REMI-backed).
    if (auto st = component->migrate(dest_address, provider_id, options); !st.ok())
        return unlock(st);
    // Capture the provider's *current* configuration so the replacement
    // re-attaches to the migrated state.
    descriptor["config"] = component->get_config();
    // 2. Instantiate the replacement provider on the destination.
    auto started = m_margo->call<bool>(dest_address, "bedrock/start_provider", {},
                                       descriptor.dump());
    if (!started) return unlock(started.error());
    // 3. Remove the local provider.
    if (!options.get_bool("keep_source")) {
        if (auto st = stop_provider_locked(name); !st.ok()) return unlock(st);
    }
    log::info("bedrock", "%s: migrated provider %s to %s", address().c_str(), name.c_str(),
              dest_address.c_str());
    return unlock({});
}

Status Process::checkpoint_provider(const std::string& name, const std::string& path) {
    auto component = find_component(name);
    if (!component) return component.error();
    return (*component)->checkpoint(path);
}

Status Process::restore_provider(const std::string& name, const std::string& path) {
    auto component = find_component(name);
    if (!component) return component.error();
    return (*component)->restore(path);
}

// ---------------------------------------------------------------------------
// Configuration & queries
// ---------------------------------------------------------------------------

json::Value Process::config() const {
    std::lock_guard lk{m_mutex};
    return config_locked();
}

json::Value Process::config_locked() const {
    auto cfg = json::Value::object();
    cfg["margo"] = m_margo->config();
    cfg["libraries"] = json::Value::object();
    for (const auto& [type, lib] : m_libraries) cfg["libraries"][type] = lib;
    cfg["providers"] = json::Value::array();
    for (const auto& [name, e] : m_providers) {
        auto p = e.descriptor;
        p["config"] = e.component->get_config();
        auto deps = json::Value::array();
        for (const auto& d : e.dependencies) deps.push_back(d.spec);
        p["resolved_dependencies"] = std::move(deps);
        cfg["providers"].push_back(std::move(p));
    }
    return cfg;
}

Expected<json::Value> Process::query(std::string_view jx9_script) const {
    // $__metrics__ makes the same snapshot that bedrock/get_metrics returns
    // available to Jx9 scripts, so an operator (or a rebalancing agent) can
    // compute over configuration and load in one query.
    return jx9::evaluate(jx9_script, {{"__config__", config()},
                                      {"__metrics__", m_margo->metrics_json()}});
}

// ---------------------------------------------------------------------------
// Two-phase commit (§5 cross-process consistency)
// ---------------------------------------------------------------------------

Status Process::validate_op(const json::Value& op) const {
    if (!op.is_object() || !op["op"].is_string())
        return Error{Error::Code::InvalidArgument, "transaction op must have an 'op' field"};
    std::string kind = op.get_string("op");
    std::lock_guard lk{m_mutex};
    if (kind == "start_provider") {
        const auto& d = op["descriptor"];
        std::string name = d.get_string("name");
        std::string type = d.get_string("type");
        if (name.empty() || type.empty())
            return Error{Error::Code::InvalidArgument, "descriptor requires name and type"};
        if (m_providers.count(name))
            return Error{Error::Code::AlreadyExists, "provider '" + name + "' already exists"};
        if (!m_modules.count(type))
            return Error{Error::Code::NotFound, "no module for type '" + type + "'"};
        return {};
    }
    if (kind == "stop_provider") {
        std::string name = op.get_string("name");
        auto it = m_providers.find(name);
        if (it == m_providers.end())
            return Error{Error::Code::NotFound, "no provider named '" + name + "'"};
        if (!it->second.dependents.empty())
            return Error{Error::Code::InvalidState, "provider '" + name + "' has dependents"};
        return {};
    }
    if (kind == "add_pool" || kind == "add_xstream" || kind == "remove_pool" ||
        kind == "remove_xstream" || kind == "load_module")
        return {}; // validated on apply
    return Error{Error::Code::InvalidArgument, "unknown transaction op '" + kind + "'"};
}

Status Process::apply_op(const json::Value& op) {
    std::string kind = op.get_string("op");
    if (kind == "start_provider") return start_provider_locked(op["descriptor"]);
    if (kind == "stop_provider") return stop_provider_locked(op.get_string("name"));
    if (kind == "add_pool") {
        auto r = add_pool(op["config"]);
        return r ? Status{} : Status{r.error()};
    }
    if (kind == "remove_pool") return remove_pool(op.get_string("name"));
    if (kind == "add_xstream") return add_xstream(op["config"]);
    if (kind == "remove_xstream") return remove_xstream(op.get_string("name"));
    if (kind == "load_module")
        return load_module(op.get_string("type"), op.get_string("library"));
    return Error{Error::Code::InvalidArgument, "unknown transaction op '" + kind + "'"};
}

Status Process::prepare(const std::string& txn_id, const json::Value& ops) {
    abt::Mutex& mtx = cfg_lock(this);
    if (!mtx.try_lock())
        return Error{Error::Code::Conflict, "another reconfiguration is in progress"};
    // Config lock acquired; validate. On failure release immediately.
    if (!ops.is_array()) {
        mtx.unlock();
        return Error{Error::Code::InvalidArgument, "transaction ops must be an array"};
    }
    for (const auto& op : ops.as_array()) {
        if (auto st = validate_op(op); !st.ok()) {
            mtx.unlock();
            return st;
        }
    }
    {
        std::lock_guard lk{m_mutex};
        m_txn_id = txn_id;
        m_txn_ops = ops;
    }
    return {}; // lock stays held until commit/abort
}

Status Process::commit(const std::string& txn_id) {
    json::Value ops;
    {
        std::lock_guard lk{m_mutex};
        if (m_txn_id != txn_id)
            return Error{Error::Code::InvalidState, "no prepared transaction '" + txn_id + "'"};
        ops = std::move(m_txn_ops);
        m_txn_id.clear();
        m_txn_ops = json::Value{};
    }
    Status result;
    for (const auto& op : ops.as_array()) {
        if (auto st = apply_op(op); !st.ok()) {
            // Validation passed at prepare time; a failure here means the
            // world changed through a non-transactional path. Report it.
            result = st;
            break;
        }
    }
    cfg_lock(this).unlock();
    return result;
}

Status Process::abort(const std::string& txn_id) {
    {
        std::lock_guard lk{m_mutex};
        if (m_txn_id != txn_id)
            return Error{Error::Code::InvalidState, "no prepared transaction '" + txn_id + "'"};
        m_txn_id.clear();
        m_txn_ops = json::Value{};
    }
    cfg_lock(this).unlock();
    return {};
}

// ---------------------------------------------------------------------------
// RPC surface
// ---------------------------------------------------------------------------

namespace {

/// Respond with status-only result: payload carries `true` on success.
void respond_status(const margo::Request& req, const Status& st) {
    if (st.ok())
        req.respond_values(true);
    else
        req.respond_error(st.error());
}

} // namespace

void Process::register_rpcs() {
    auto self = weak_from_this();
    auto with_self = [self](auto fn) {
        return [self, fn](const margo::Request& req) {
            auto proc = self.lock();
            if (!proc) {
                req.respond_error(Error{Error::Code::InvalidState, "process is gone"});
                return;
            }
            fn(*proc, req);
        };
    };

    auto reg = [&](const char* name, margo::Handler h) {
        auto r = m_margo->register_rpc(name, k_bedrock_provider_id, std::move(h));
        assert(r.has_value());
        (void)r;
    };

    reg("bedrock/get_config", with_self([](Process& p, const margo::Request& req) {
            req.respond_values(p.config().dump());
        }));
    reg("bedrock/get_metrics", with_self([](Process& p, const margo::Request& req) {
            req.respond_values(p.m_margo->metrics_json().dump());
        }));
    reg("bedrock/query", with_self([](Process& p, const margo::Request& req) {
            std::string script;
            if (!req.unpack(script)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto result = p.query(script);
            if (!result)
                req.respond_error(result.error());
            else
                req.respond_values(result->dump());
        }));
    reg("bedrock/load_module", with_self([](Process& p, const margo::Request& req) {
            std::string type, library;
            if (!req.unpack(type, library)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.load_module(type, library));
        }));
    reg("bedrock/start_provider", with_self([](Process& p, const margo::Request& req) {
            std::string desc_str;
            if (!req.unpack(desc_str)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto desc = json::Value::parse(desc_str);
            if (!desc) {
                req.respond_error(desc.error());
                return;
            }
            respond_status(req, p.start_provider(*desc));
        }));
    reg("bedrock/stop_provider", with_self([](Process& p, const margo::Request& req) {
            std::string name;
            if (!req.unpack(name)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.stop_provider(name));
        }));
    reg("bedrock/has_provider", with_self([](Process& p, const margo::Request& req) {
            std::string_view name; // zero-copy: aliases the request payload
            if (!req.unpack(name)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            req.respond_values(p.has_provider(name));
        }));
    reg("bedrock/has_provider_typed", with_self([](Process& p, const margo::Request& req) {
            std::string_view type;
            std::uint32_t id = 0;
            if (!req.unpack(type, id)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            req.respond_values(p.has_provider(type, static_cast<std::uint16_t>(id)));
        }));
    reg("bedrock/register_dependent", with_self([](Process& p, const margo::Request& req) {
            std::string_view type; // compared only; spec is retained, so owned
            std::string spec;
            std::uint32_t id = 0;
            if (!req.unpack(type, id, spec)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            // Resolve (type,id) -> name.
            std::lock_guard lk{p.m_mutex};
            for (auto& [name, e] : p.m_providers) {
                if (e.type == type && e.provider_id == id) {
                    e.dependents.insert(spec);
                    req.respond_values(true);
                    return;
                }
            }
            req.respond_error(Error{Error::Code::NotFound, "no such provider"});
        }));
    reg("bedrock/unregister_dependent", with_self([](Process& p, const margo::Request& req) {
            std::string_view type;
            std::string spec;
            std::uint32_t id = 0;
            if (!req.unpack(type, id, spec)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            std::lock_guard lk{p.m_mutex};
            for (auto& [name, e] : p.m_providers) {
                if (e.type == type && e.provider_id == id) e.dependents.erase(spec);
            }
            req.respond_values(true);
        }));
    reg("bedrock/add_pool", with_self([](Process& p, const margo::Request& req) {
            std::string cfg_str;
            if (!req.unpack(cfg_str)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto cfg = json::Value::parse(cfg_str);
            if (!cfg) {
                req.respond_error(cfg.error());
                return;
            }
            auto r = p.add_pool(*cfg);
            respond_status(req, r ? Status{} : Status{r.error()});
        }));
    reg("bedrock/remove_pool", with_self([](Process& p, const margo::Request& req) {
            std::string name;
            if (!req.unpack(name)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.remove_pool(name));
        }));
    reg("bedrock/add_xstream", with_self([](Process& p, const margo::Request& req) {
            std::string cfg_str;
            if (!req.unpack(cfg_str)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto cfg = json::Value::parse(cfg_str);
            if (!cfg) {
                req.respond_error(cfg.error());
                return;
            }
            respond_status(req, p.add_xstream(*cfg));
        }));
    reg("bedrock/remove_xstream", with_self([](Process& p, const margo::Request& req) {
            std::string name;
            if (!req.unpack(name)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.remove_xstream(name));
        }));
    reg("bedrock/migrate_provider", with_self([](Process& p, const margo::Request& req) {
            std::string name, dest, options_str;
            if (!req.unpack(name, dest, options_str)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto options = json::Value::parse(options_str);
            if (!options) {
                req.respond_error(options.error());
                return;
            }
            respond_status(req, p.migrate_provider(name, dest, *options));
        }));
    reg("bedrock/checkpoint_provider", with_self([](Process& p, const margo::Request& req) {
            std::string name, path;
            if (!req.unpack(name, path)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.checkpoint_provider(name, path));
        }));
    reg("bedrock/restore_provider", with_self([](Process& p, const margo::Request& req) {
            std::string name, path;
            if (!req.unpack(name, path)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.restore_provider(name, path));
        }));
    reg("bedrock/prepare", with_self([](Process& p, const margo::Request& req) {
            std::string txn, ops_str;
            if (!req.unpack(txn, ops_str)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            auto ops = json::Value::parse(ops_str);
            if (!ops) {
                req.respond_error(ops.error());
                return;
            }
            respond_status(req, p.prepare(txn, *ops));
        }));
    reg("bedrock/commit", with_self([](Process& p, const margo::Request& req) {
            std::string txn;
            if (!req.unpack(txn)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.commit(txn));
        }));
    reg("bedrock/abort", with_self([](Process& p, const margo::Request& req) {
            std::string txn;
            if (!req.unpack(txn)) {
                req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                return;
            }
            respond_status(req, p.abort(txn));
        }));
    reg("bedrock/shutdown", with_self([](Process& p, const margo::Request& req) {
            req.respond_values(true);
            // Finalizing the runtime joins execution streams, which cannot
            // be done from a handler ULT running on one of them; hand off.
            auto proc = p.shared_from_this();
            std::thread([proc] { proc->shutdown(); }).detach();
        }));
}

} // namespace mochi::bedrock
