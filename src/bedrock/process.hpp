// Bedrock: the "provider of providers" (§5). A Process manages the full
// composition of one simulated service process: the Margo runtime
// underneath, loaded component modules, and the providers instantiated from
// a JSON configuration (Listing 3). It validates every change, resolves
// dependencies within and across processes, and exposes the whole thing
// remotely (start/stop/migrate/checkpoint providers, add/remove pools and
// xstreams, Jx9 queries — Listings 4 and 5).
//
// Cross-process consistency (§5's c1/c2 example) is provided by a two-phase
// commit over per-process configuration locks: see prepare/commit/abort and
// Client::execute_transaction.
#pragma once

#include "bedrock/component.hpp"
#include "common/expected.hpp"
#include "common/json.hpp"
#include "margo/instance.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace mochi::bedrock {

/// Bedrock's own RPCs are process-wide, registered under the default
/// provider id (there is exactly one Bedrock per process).
inline constexpr std::uint16_t k_bedrock_provider_id = margo::k_default_provider_id;

class Process : public std::enable_shared_from_this<Process> {
  public:
    /// Bootstrap a process from a Listing-3-style configuration:
    ///   { "margo": {...},
    ///     "libraries": {"yokan": "libyokan.so", ...},
    ///     "providers": [ {"name": "...", "type": "...", "provider_id": N,
    ///                      "pool": "...", "config": {...},
    ///                      "dependencies": {"dep": "spec" | ["spec", ...]}} ] }
    /// Creates the Margo instance, loads modules, and starts providers in
    /// declaration order.
    static Expected<std::shared_ptr<Process>> spawn(std::shared_ptr<mercury::Fabric> fabric,
                                                    std::string address,
                                                    const json::Value& config);

    /// §5: "Jx9 can also be used as input in place of JSON, allowing
    /// parameterized configurations." The script receives `$params` (and
    /// `$address`) and must return the configuration object spawn() expects.
    static Expected<std::shared_ptr<Process>> spawn_jx9(
        std::shared_ptr<mercury::Fabric> fabric, std::string address,
        std::string_view jx9_script, const json::Value& params = {});

    ~Process();

    [[nodiscard]] const margo::InstancePtr& margo_instance() const noexcept { return m_margo; }
    [[nodiscard]] const std::string& address() const noexcept { return m_margo->address(); }

    // -- local API (also reachable via RPC through ServiceHandle) -------------

    /// The process's full current configuration ($__config__ of Listing 4).
    [[nodiscard]] json::Value config() const;

    /// Run a Jx9 query against the live configuration (Listing 4).
    Expected<json::Value> query(std::string_view jx9_script) const;

    Status load_module(const std::string& type, const std::string& library);
    [[nodiscard]] bool has_module(const std::string& type) const;

    Status start_provider(const json::Value& descriptor);
    Status stop_provider(const std::string& name);
    [[nodiscard]] bool has_provider(std::string_view name) const;
    [[nodiscard]] bool has_provider(std::string_view type, std::uint16_t provider_id) const;
    [[nodiscard]] std::vector<std::string> provider_names() const;

    /// Look up the live component instance of a provider (for composition
    /// within a process, e.g. a service wiring its own pieces).
    [[nodiscard]] Expected<ComponentInstance*> find_component(const std::string& name) const;

    Expected<std::shared_ptr<abt::Pool>> add_pool(const json::Value& config);
    Status remove_pool(const std::string& name);
    Status add_xstream(const json::Value& config);
    Status remove_xstream(const std::string& name);

    /// Managed migration (§6, Obs. 5): checks dependencies, invokes the
    /// component's migrate hook to move its data, starts a replacement
    /// provider on the destination process via remote Bedrock, then removes
    /// the local provider (unless options{"keep_source":true}).
    Status migrate_provider(const std::string& name, const std::string& dest_address,
                            const json::Value& options = {});

    /// Checkpoint/restore via the component hooks (§7 Obs. 9).
    Status checkpoint_provider(const std::string& name, const std::string& path);
    Status restore_provider(const std::string& name, const std::string& path);

    /// Record that `dependent_spec` (e.g. "p1@sim://n1") depends on local
    /// provider `provider`; stop_provider refuses while dependents exist.
    Status register_dependent(const std::string& provider, const std::string& dependent_spec);
    Status unregister_dependent(const std::string& provider, const std::string& dependent_spec);

    // -- two-phase commit for cross-process reconfigurations (§5) -------------

    /// Validate `ops` (array of {"op": ..., args}) and lock the process
    /// configuration under transaction `txn_id`. Fails with Conflict if
    /// another transaction holds the lock.
    Status prepare(const std::string& txn_id, const json::Value& ops);
    /// Apply the prepared ops and release the lock.
    Status commit(const std::string& txn_id);
    /// Release the lock without applying.
    Status abort(const std::string& txn_id);

    /// Shut the whole process down (also invoked remotely).
    void shutdown();

  private:
    Process() = default;
    void register_rpcs();
    Status start_provider_locked(const json::Value& descriptor);
    Status stop_provider_locked(const std::string& name);
    Status validate_op(const json::Value& op) const;
    Status apply_op(const json::Value& op);
    json::Value config_locked() const;

    struct ProviderEntry {
        json::Value descriptor;
        std::string type;
        std::uint16_t provider_id = 0;
        std::unique_ptr<ComponentInstance> component;
        std::vector<ResolvedDependency> dependencies; ///< flattened
        std::set<std::string> dependents;             ///< specs of dependents
    };

    margo::InstancePtr m_margo;
    std::shared_ptr<mercury::Fabric> m_fabric;

    mutable std::recursive_mutex m_mutex;
    std::map<std::string, std::string> m_libraries; ///< type -> library
    std::map<std::string, ModuleDefinition> m_modules; ///< type -> module
    // Transparent comparator: RPC handlers look names up as zero-copy
    // string_view slices of the request payload.
    std::map<std::string, ProviderEntry, std::less<>> m_providers; ///< by name
    // Active 2PC transaction (at most one at a time per process).
    std::string m_txn_id;
    json::Value m_txn_ops;
    bool m_shutdown = false;
};

} // namespace mochi::bedrock
