// The Bedrock module contract (§5, Listing 3).
//
// In real Mochi, Bedrock dlopen()s "libcomponent_a.so" and finds a structure
// of function pointers used to instantiate providers/clients and to obtain
// their configuration; dynamic components additionally expose migrate /
// checkpoint / restore entry points (§6 Obs. 5, §7 Obs. 9). Here the same
// contract is a ModuleDefinition registered in a global ModuleRegistry under
// the library's name (see DESIGN.md substitutions: static registry instead
// of dlopen).
#pragma once

#include "common/expected.hpp"
#include "common/json.hpp"
#include "margo/instance.hpp"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mochi::bedrock {

/// A dependency as written in a provider's configuration:
///   "name"                 -> provider `name` in the same process
///   "type:id@address"      -> provider with that type and id at `address`
struct ResolvedDependency {
    std::string spec;       ///< the original string
    std::string type;
    std::string address;    ///< empty for local dependencies
    std::uint16_t provider_id = margo::k_default_provider_id;
    std::string local_name; ///< set for local dependencies

    [[nodiscard]] bool is_local() const noexcept { return address.empty(); }
};

/// What a module requires to be injected at provider-creation time.
struct DependencySpec {
    std::string name;     ///< key in the "dependencies" object of the config
    std::string type;     ///< required component type
    bool required = true;
    bool is_array = false; ///< accepts a list of dependencies
};

/// Everything a component factory receives (mirrors the arguments Bedrock
/// passes through its function-pointer table).
struct ComponentArgs {
    margo::InstancePtr instance;
    std::string name;
    std::uint16_t provider_id = 0;
    std::shared_ptr<abt::Pool> pool;
    json::Value config;
    std::map<std::string, std::vector<ResolvedDependency>> dependencies;
};

/// A provider instantiated and owned by Bedrock. Components implement the
/// dynamic-service hooks they support; defaults report "unsupported" so
/// static components compose unchanged (§2.3: enable dynamic properties
/// incrementally).
class ComponentInstance {
  public:
    virtual ~ComponentInstance() = default;

    /// Current JSON configuration of the provider (for $__config__).
    [[nodiscard]] virtual json::Value get_config() const { return json::Value::object(); }

    /// Migrate this provider's resource (its files/state) to the provider
    /// designated by `dest_address`/`dest_provider_id` (§6). Called by
    /// Bedrock as part of a managed provider migration.
    virtual Status migrate(const std::string& dest_address, std::uint16_t dest_provider_id,
                           const json::Value& options) {
        (void)dest_address;
        (void)dest_provider_id;
        (void)options;
        return Error{Error::Code::InvalidState, "component does not support migration"};
    }

    /// Persist the provider's state under `path` in the (simulated) parallel
    /// file system (§7 Obs. 9).
    virtual Status checkpoint(const std::string& path) {
        (void)path;
        return Error{Error::Code::InvalidState, "component does not support checkpointing"};
    }

    /// Restore state previously saved by checkpoint().
    virtual Status restore(const std::string& path) {
        (void)path;
        return Error{Error::Code::InvalidState, "component does not support restore"};
    }
};

/// The per-component function-pointer table (Listing 3's loaded library).
struct ModuleDefinition {
    std::string type; ///< e.g. "yokan"
    std::vector<DependencySpec> dependency_specs;
    std::function<Expected<std::unique_ptr<ComponentInstance>>(const ComponentArgs&)> factory;
};

/// Global registry of "shared libraries". Components register their module
/// under a library name ("libyokan.so"); Bedrock processes then load them by
/// that name (Listing 3's "libraries" section).
class ModuleRegistry {
  public:
    /// Register `module` under `library`. Re-registering the same library
    /// replaces it (useful for test fakes).
    static void provide(const std::string& library, ModuleDefinition module);

    [[nodiscard]] static bool has_library(const std::string& library);
    [[nodiscard]] static Expected<ModuleDefinition> lookup(const std::string& library);

  private:
    static std::mutex& mutex();
    static std::map<std::string, ModuleDefinition>& libraries();
};

/// Parse a dependency specification string (see ResolvedDependency).
[[nodiscard]] Expected<ResolvedDependency> parse_dependency(const std::string& spec);

} // namespace mochi::bedrock
