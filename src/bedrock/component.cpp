#include "bedrock/component.hpp"

#include <charconv>
#include <mutex>

namespace mochi::bedrock {

std::mutex& ModuleRegistry::mutex() {
    static std::mutex m;
    return m;
}

std::map<std::string, ModuleDefinition>& ModuleRegistry::libraries() {
    static std::map<std::string, ModuleDefinition> libs;
    return libs;
}

void ModuleRegistry::provide(const std::string& library, ModuleDefinition module) {
    std::lock_guard lk{mutex()};
    libraries()[library] = std::move(module);
}

bool ModuleRegistry::has_library(const std::string& library) {
    std::lock_guard lk{mutex()};
    return libraries().count(library) > 0;
}

Expected<ModuleDefinition> ModuleRegistry::lookup(const std::string& library) {
    std::lock_guard lk{mutex()};
    auto it = libraries().find(library);
    if (it == libraries().end())
        return Error{Error::Code::NotFound, "library not found: " + library};
    return it->second;
}

Expected<ResolvedDependency> parse_dependency(const std::string& spec) {
    ResolvedDependency dep;
    dep.spec = spec;
    if (spec.empty())
        return Error{Error::Code::InvalidArgument, "empty dependency specification"};
    auto at = spec.find('@');
    if (at == std::string::npos) {
        // Local provider by name.
        dep.local_name = spec;
        return dep;
    }
    // "type:id@address"
    dep.address = spec.substr(at + 1);
    std::string head = spec.substr(0, at);
    auto colon = head.find(':');
    if (colon == std::string::npos || dep.address.empty())
        return Error{Error::Code::InvalidArgument,
                     "invalid dependency '" + spec + "' (expected type:id@address)"};
    dep.type = head.substr(0, colon);
    std::string id_str = head.substr(colon + 1);
    std::uint32_t id = 0;
    auto [p, ec] = std::from_chars(id_str.data(), id_str.data() + id_str.size(), id);
    if (ec != std::errc{} || p != id_str.data() + id_str.size() || id > 0xFFFF)
        return Error{Error::Code::InvalidArgument,
                     "invalid provider id in dependency '" + spec + "'"};
    dep.provider_id = static_cast<std::uint16_t>(id);
    return dep;
}

} // namespace mochi::bedrock
