#include "bedrock/jx9.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <memory>
#include <vector>

namespace mochi::bedrock::jx9 {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
    End, Ident, Variable, Number, String,
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon, Dot, Arrow, // Arrow = "=>"
    Assign, Eq, Ne, Lt, Le, Gt, Ge,
    Plus, Minus, Star, Slash, Percent,
    AndAnd, OrOr, Not,
    KwIf, KwElse, KwForeach, KwAs, KwWhile, KwReturn, KwBreak, KwContinue,
    KwTrue, KwFalse, KwNull,
};

struct Token {
    Tok kind = Tok::End;
    std::string text;
    double number = 0;
    bool is_integer = false;
    std::size_t offset = 0;
};

class Lexer {
  public:
    explicit Lexer(std::string_view src) : m_src(src) {}

    Expected<std::vector<Token>> run() {
        std::vector<Token> out;
        for (;;) {
            skip_ws_and_comments();
            if (m_pos >= m_src.size()) {
                out.push_back({Tok::End, "", 0, false, m_pos});
                return out;
            }
            auto tok = next();
            if (!tok) return tok.error();
            out.push_back(std::move(*tok));
        }
    }

  private:
    std::string_view m_src;
    std::size_t m_pos = 0;

    Error fail(const std::string& what) const {
        return Error{Error::Code::InvalidArgument,
                     "jx9: lex error at offset " + std::to_string(m_pos) + ": " + what};
    }

    void skip_ws_and_comments() {
        while (m_pos < m_src.size()) {
            char c = m_src[m_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++m_pos;
            } else if (c == '/' && m_pos + 1 < m_src.size() && m_src[m_pos + 1] == '/') {
                while (m_pos < m_src.size() && m_src[m_pos] != '\n') ++m_pos;
            } else if (c == '/' && m_pos + 1 < m_src.size() && m_src[m_pos + 1] == '*') {
                m_pos += 2;
                while (m_pos + 1 < m_src.size() &&
                       !(m_src[m_pos] == '*' && m_src[m_pos + 1] == '/'))
                    ++m_pos;
                m_pos = std::min(m_pos + 2, m_src.size());
            } else {
                break;
            }
        }
    }

    static bool ident_start(char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    }
    static bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

    Expected<Token> next() {
        std::size_t start = m_pos;
        char c = m_src[m_pos];
        auto simple = [&](Tok t, std::size_t len = 1) {
            m_pos += len;
            return Token{t, std::string(m_src.substr(start, len)), 0, false, start};
        };
        switch (c) {
        case '(': return simple(Tok::LParen);
        case ')': return simple(Tok::RParen);
        case '{': return simple(Tok::LBrace);
        case '}': return simple(Tok::RBrace);
        case '[': return simple(Tok::LBracket);
        case ']': return simple(Tok::RBracket);
        case ',': return simple(Tok::Comma);
        case ';': return simple(Tok::Semicolon);
        case '.': return simple(Tok::Dot);
        case '+': return simple(Tok::Plus);
        case '-': return simple(Tok::Minus);
        case '*': return simple(Tok::Star);
        case '/': return simple(Tok::Slash);
        case '%': return simple(Tok::Percent);
        case '=':
            if (m_src.substr(m_pos, 2) == "==") return simple(Tok::Eq, 2);
            if (m_src.substr(m_pos, 2) == "=>") return simple(Tok::Arrow, 2);
            return simple(Tok::Assign);
        case '!':
            if (m_src.substr(m_pos, 2) == "!=") return simple(Tok::Ne, 2);
            return simple(Tok::Not);
        case '<':
            if (m_src.substr(m_pos, 2) == "<=") return simple(Tok::Le, 2);
            return simple(Tok::Lt);
        case '>':
            if (m_src.substr(m_pos, 2) == ">=") return simple(Tok::Ge, 2);
            return simple(Tok::Gt);
        case '&':
            if (m_src.substr(m_pos, 2) == "&&") return simple(Tok::AndAnd, 2);
            return fail("expected '&&'");
        case '|':
            if (m_src.substr(m_pos, 2) == "||") return simple(Tok::OrOr, 2);
            return fail("expected '||'");
        case '$': {
            ++m_pos;
            std::size_t s = m_pos;
            while (m_pos < m_src.size() && ident_char(m_src[m_pos])) ++m_pos;
            if (m_pos == s) return fail("expected variable name after '$'");
            return Token{Tok::Variable, std::string(m_src.substr(s, m_pos - s)), 0, false, start};
        }
        case '"': case '\'': {
            char quote = c;
            ++m_pos;
            std::string text;
            while (m_pos < m_src.size() && m_src[m_pos] != quote) {
                char ch = m_src[m_pos];
                if (ch == '\\' && m_pos + 1 < m_src.size()) {
                    ++m_pos;
                    char esc = m_src[m_pos];
                    switch (esc) {
                    case 'n': text += '\n'; break;
                    case 't': text += '\t'; break;
                    case '\\': text += '\\'; break;
                    case '"': text += '"'; break;
                    case '\'': text += '\''; break;
                    default: text += esc;
                    }
                } else {
                    text += ch;
                }
                ++m_pos;
            }
            if (m_pos >= m_src.size()) return fail("unterminated string");
            ++m_pos;
            return Token{Tok::String, std::move(text), 0, false, start};
        }
        default:
            if (c >= '0' && c <= '9') {
                std::size_t s = m_pos;
                bool is_int = true;
                while (m_pos < m_src.size() &&
                       ((m_src[m_pos] >= '0' && m_src[m_pos] <= '9') || m_src[m_pos] == '.' ||
                        m_src[m_pos] == 'e' || m_src[m_pos] == 'E')) {
                    if (m_src[m_pos] == '.' || m_src[m_pos] == 'e' || m_src[m_pos] == 'E')
                        is_int = false;
                    ++m_pos;
                }
                double value = 0;
                auto sv = m_src.substr(s, m_pos - s);
                auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), value);
                if (ec != std::errc{} || p != sv.data() + sv.size())
                    return fail("invalid number");
                Token t{Tok::Number, std::string(sv), value, is_int, start};
                return t;
            }
            if (ident_start(c)) {
                std::size_t s = m_pos;
                while (m_pos < m_src.size() && ident_char(m_src[m_pos])) ++m_pos;
                std::string id(m_src.substr(s, m_pos - s));
                static const std::map<std::string, Tok> keywords = {
                    {"if", Tok::KwIf},         {"else", Tok::KwElse},
                    {"foreach", Tok::KwForeach}, {"as", Tok::KwAs},
                    {"while", Tok::KwWhile},   {"return", Tok::KwReturn},
                    {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
                    {"true", Tok::KwTrue},     {"false", Tok::KwFalse},
                    {"null", Tok::KwNull},
                };
                auto it = keywords.find(id);
                if (it != keywords.end()) return Token{it->second, id, 0, false, s};
                return Token{Tok::Ident, std::move(id), 0, false, s};
            }
            return fail(std::string("unexpected character '") + c + "'");
        }
    }
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind {
        Literal, Variable, Array, Object, Field, Index, Unary, Binary, Call,
    };
    Kind kind;
    json::Value literal;                     // Literal
    std::string name;                        // Variable, Field (field name), Call (fn)
    std::vector<ExprPtr> children;           // operands / args / elements
    std::vector<std::string> object_keys;    // Object literal keys
    Tok op = Tok::End;                       // Unary/Binary operator
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    enum class Kind { Expr, Assign, If, Foreach, While, Return, Break, Continue, Block };
    Kind kind;
    ExprPtr expr;              // Expr / Return value / If-While condition / Foreach iterable
    ExprPtr target;            // Assign lvalue
    std::string var_key, var_value; // Foreach loop variables
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> else_body;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : m_tokens(std::move(tokens)) {}

    Expected<std::vector<StmtPtr>> run() {
        std::vector<StmtPtr> stmts;
        while (peek().kind != Tok::End) {
            auto s = statement();
            if (!s) return s.error();
            stmts.push_back(std::move(*s));
        }
        return stmts;
    }

  private:
    std::vector<Token> m_tokens;
    std::size_t m_pos = 0;

    const Token& peek(std::size_t ahead = 0) const {
        std::size_t i = std::min(m_pos + ahead, m_tokens.size() - 1);
        return m_tokens[i];
    }
    Token advance() { return m_tokens[std::min(m_pos++, m_tokens.size() - 1)]; }
    bool match(Tok t) {
        if (peek().kind != t) return false;
        ++m_pos;
        return true;
    }
    Error fail(const std::string& what) const {
        return Error{Error::Code::InvalidArgument,
                     "jx9: parse error at offset " + std::to_string(peek().offset) + ": " + what};
    }
    Status expect(Tok t, const char* what) {
        if (!match(t)) return fail(std::string("expected ") + what);
        return {};
    }

    Expected<std::vector<StmtPtr>> block_or_single() {
        std::vector<StmtPtr> body;
        if (match(Tok::LBrace)) {
            while (peek().kind != Tok::RBrace && peek().kind != Tok::End) {
                auto s = statement();
                if (!s) return s.error();
                body.push_back(std::move(*s));
            }
            if (auto st = expect(Tok::RBrace, "'}'"); !st.ok()) return st.error();
        } else {
            auto s = statement();
            if (!s) return s.error();
            body.push_back(std::move(*s));
        }
        return body;
    }

    Expected<StmtPtr> statement() {
        if (match(Tok::KwReturn)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Return;
            if (peek().kind != Tok::Semicolon) {
                auto e = expression();
                if (!e) return e.error();
                s->expr = std::move(*e);
            }
            if (auto st = expect(Tok::Semicolon, "';'"); !st.ok()) return st.error();
            return s;
        }
        if (match(Tok::KwBreak)) {
            if (auto st = expect(Tok::Semicolon, "';'"); !st.ok()) return st.error();
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Break;
            return s;
        }
        if (match(Tok::KwContinue)) {
            if (auto st = expect(Tok::Semicolon, "';'"); !st.ok()) return st.error();
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Continue;
            return s;
        }
        if (match(Tok::KwIf)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::If;
            if (auto st = expect(Tok::LParen, "'('"); !st.ok()) return st.error();
            auto cond = expression();
            if (!cond) return cond.error();
            s->expr = std::move(*cond);
            if (auto st = expect(Tok::RParen, "')'"); !st.ok()) return st.error();
            auto body = block_or_single();
            if (!body) return body.error();
            s->body = std::move(*body);
            if (match(Tok::KwElse)) {
                auto eb = block_or_single();
                if (!eb) return eb.error();
                s->else_body = std::move(*eb);
            }
            return s;
        }
        if (match(Tok::KwWhile)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::While;
            if (auto st = expect(Tok::LParen, "'('"); !st.ok()) return st.error();
            auto cond = expression();
            if (!cond) return cond.error();
            s->expr = std::move(*cond);
            if (auto st = expect(Tok::RParen, "')'"); !st.ok()) return st.error();
            auto body = block_or_single();
            if (!body) return body.error();
            s->body = std::move(*body);
            return s;
        }
        if (match(Tok::KwForeach)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Foreach;
            if (auto st = expect(Tok::LParen, "'('"); !st.ok()) return st.error();
            auto iter = expression();
            if (!iter) return iter.error();
            s->expr = std::move(*iter);
            if (auto st = expect(Tok::KwAs, "'as'"); !st.ok()) return st.error();
            if (peek().kind != Tok::Variable) return fail("expected loop variable");
            std::string first = advance().text;
            if (match(Tok::Arrow)) {
                if (peek().kind != Tok::Variable) return fail("expected value variable");
                s->var_key = first;
                s->var_value = advance().text;
            } else {
                s->var_value = first;
            }
            if (auto st = expect(Tok::RParen, "')'"); !st.ok()) return st.error();
            auto body = block_or_single();
            if (!body) return body.error();
            s->body = std::move(*body);
            return s;
        }
        if (match(Tok::LBrace)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Block;
            while (peek().kind != Tok::RBrace && peek().kind != Tok::End) {
                auto inner = statement();
                if (!inner) return inner.error();
                s->body.push_back(std::move(*inner));
            }
            if (auto st = expect(Tok::RBrace, "'}'"); !st.ok()) return st.error();
            return s;
        }
        // Expression or assignment.
        auto e = expression();
        if (!e) return e.error();
        auto s = std::make_unique<Stmt>();
        if (match(Tok::Assign)) {
            auto rhs = expression();
            if (!rhs) return rhs.error();
            s->kind = Stmt::Kind::Assign;
            s->target = std::move(*e);
            s->expr = std::move(*rhs);
        } else {
            s->kind = Stmt::Kind::Expr;
            s->expr = std::move(*e);
        }
        if (auto st = expect(Tok::Semicolon, "';'"); !st.ok()) return st.error();
        return s;
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative
    // < unary < postfix < primary.
    Expected<ExprPtr> expression() { return parse_or(); }

    Expected<ExprPtr> binary_chain(Expected<ExprPtr> (Parser::*next)(),
                                   std::initializer_list<Tok> ops) {
        auto lhs = (this->*next)();
        if (!lhs) return lhs;
        for (;;) {
            Tok op = peek().kind;
            bool found = false;
            for (Tok t : ops)
                if (t == op) found = true;
            if (!found) return lhs;
            advance();
            auto rhs = (this->*next)();
            if (!rhs) return rhs;
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = op;
            e->children.push_back(std::move(*lhs));
            e->children.push_back(std::move(*rhs));
            lhs = std::move(e);
        }
    }

    Expected<ExprPtr> parse_or() { return binary_chain(&Parser::parse_and, {Tok::OrOr}); }
    Expected<ExprPtr> parse_and() { return binary_chain(&Parser::parse_cmp, {Tok::AndAnd}); }
    Expected<ExprPtr> parse_cmp() {
        return binary_chain(&Parser::parse_add,
                            {Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge});
    }
    Expected<ExprPtr> parse_add() {
        return binary_chain(&Parser::parse_mul, {Tok::Plus, Tok::Minus});
    }
    Expected<ExprPtr> parse_mul() {
        return binary_chain(&Parser::parse_unary, {Tok::Star, Tok::Slash, Tok::Percent});
    }

    Expected<ExprPtr> parse_unary() {
        if (peek().kind == Tok::Not || peek().kind == Tok::Minus) {
            Tok op = advance().kind;
            auto operand = parse_unary();
            if (!operand) return operand;
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Unary;
            e->op = op;
            e->children.push_back(std::move(*operand));
            return e;
        }
        return parse_postfix();
    }

    Expected<ExprPtr> parse_postfix() {
        auto base = parse_primary();
        if (!base) return base;
        for (;;) {
            if (match(Tok::Dot)) {
                if (peek().kind != Tok::Ident) return fail("expected field name after '.'");
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::Field;
                e->name = advance().text;
                e->children.push_back(std::move(*base));
                base = std::move(e);
            } else if (match(Tok::LBracket)) {
                auto idx = expression();
                if (!idx) return idx;
                if (auto st = expect(Tok::RBracket, "']'"); !st.ok()) return st.error();
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::Index;
                e->children.push_back(std::move(*base));
                e->children.push_back(std::move(*idx));
                base = std::move(e);
            } else {
                return base;
            }
        }
    }

    Expected<ExprPtr> parse_primary() {
        const Token& t = peek();
        switch (t.kind) {
        case Tok::Number: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Literal;
            if (t.is_integer)
                e->literal = json::Value{static_cast<std::int64_t>(t.number)};
            else
                e->literal = json::Value{t.number};
            return e;
        }
        case Tok::String: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Literal;
            e->literal = json::Value{t.text};
            return e;
        }
        case Tok::KwTrue:
        case Tok::KwFalse: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Literal;
            e->literal = json::Value{t.kind == Tok::KwTrue};
            return e;
        }
        case Tok::KwNull: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Literal;
            return e;
        }
        case Tok::Variable: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Variable;
            e->name = t.text;
            return e;
        }
        case Tok::Ident: {
            // Function call.
            std::string fn = advance().text;
            if (auto st = expect(Tok::LParen, "'(' after function name"); !st.ok())
                return st.error();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Call;
            e->name = std::move(fn);
            if (!match(Tok::RParen)) {
                for (;;) {
                    auto arg = expression();
                    if (!arg) return arg;
                    e->children.push_back(std::move(*arg));
                    if (match(Tok::RParen)) break;
                    if (auto st = expect(Tok::Comma, "',' or ')'"); !st.ok()) return st.error();
                }
            }
            return e;
        }
        case Tok::LBracket: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Array;
            if (!match(Tok::RBracket)) {
                for (;;) {
                    auto el = expression();
                    if (!el) return el;
                    e->children.push_back(std::move(*el));
                    if (match(Tok::RBracket)) break;
                    if (auto st = expect(Tok::Comma, "',' or ']'"); !st.ok()) return st.error();
                }
            }
            return e;
        }
        case Tok::LBrace: {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Object;
            if (!match(Tok::RBrace)) {
                for (;;) {
                    if (peek().kind != Tok::String && peek().kind != Tok::Ident)
                        return fail("expected object key");
                    e->object_keys.push_back(advance().text);
                    // jx9/PHP-style key: value (we accept ':' via Ident? use ':'
                    // unsupported by lexer; use '=>' like PHP arrays)
                    if (auto st = expect(Tok::Arrow, "'=>' after object key"); !st.ok())
                        return st.error();
                    auto val = expression();
                    if (!val) return val;
                    e->children.push_back(std::move(*val));
                    if (match(Tok::RBrace)) break;
                    if (auto st = expect(Tok::Comma, "',' or '}'"); !st.ok()) return st.error();
                }
            }
            return e;
        }
        case Tok::LParen: {
            advance();
            auto inner = expression();
            if (!inner) return inner;
            if (auto st = expect(Tok::RParen, "')'"); !st.ok()) return st.error();
            return inner;
        }
        default: return fail("unexpected token '" + t.text + "'");
        }
    }
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

constexpr std::size_t k_max_loop_iterations = 1'000'000;
constexpr int k_max_depth = 64;

enum class Flow { Normal, Break, Continue, Return };

class Evaluator {
  public:
    explicit Evaluator(const std::map<std::string, json::Value>& inputs) {
        for (const auto& [k, v] : inputs) m_vars[k] = v;
    }

    Expected<json::Value> run(const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) {
            auto flow = exec(*s, 0);
            if (!flow) return flow.error();
            if (*flow == Flow::Return) return m_return;
            if (*flow != Flow::Normal)
                return Error{Error::Code::InvalidArgument, "jx9: break/continue outside loop"};
        }
        return m_return; // null if no return executed
    }

    /// Final variable bindings (for persistent-environment evaluation).
    [[nodiscard]] const std::map<std::string, json::Value>& variables() const {
        return m_vars;
    }

  private:
    std::map<std::string, json::Value> m_vars;
    json::Value m_return;

    static Error fail(const std::string& what) {
        return Error{Error::Code::InvalidArgument, "jx9: " + what};
    }

    static bool truthy(const json::Value& v) {
        switch (v.type()) {
        case json::Type::Null: return false;
        case json::Type::Boolean: return v.as_bool();
        case json::Type::Integer: return v.as_integer() != 0;
        case json::Type::Real: return v.as_real() != 0.0;
        case json::Type::String: return !v.as_string().empty();
        default: return v.size() > 0;
        }
    }

    Expected<Flow> exec(const Stmt& s, int depth) {
        if (depth > k_max_depth) return fail("recursion too deep");
        switch (s.kind) {
        case Stmt::Kind::Expr: {
            auto v = eval(*s.expr, depth);
            if (!v) return v.error();
            return Flow::Normal;
        }
        case Stmt::Kind::Assign: {
            auto v = eval(*s.expr, depth);
            if (!v) return v.error();
            json::Value* slot = lvalue(*s.target, depth);
            if (slot == nullptr) return fail("invalid assignment target");
            *slot = std::move(*v);
            return Flow::Normal;
        }
        case Stmt::Kind::If: {
            auto cond = eval(*s.expr, depth);
            if (!cond) return cond.error();
            const auto& body = truthy(*cond) ? s.body : s.else_body;
            for (const auto& inner : body) {
                auto flow = exec(*inner, depth + 1);
                if (!flow || *flow != Flow::Normal) return flow;
            }
            return Flow::Normal;
        }
        case Stmt::Kind::Block: {
            for (const auto& inner : s.body) {
                auto flow = exec(*inner, depth + 1);
                if (!flow || *flow != Flow::Normal) return flow;
            }
            return Flow::Normal;
        }
        case Stmt::Kind::While: {
            std::size_t iters = 0;
            for (;;) {
                if (++iters > k_max_loop_iterations) return fail("loop iteration limit");
                auto cond = eval(*s.expr, depth);
                if (!cond) return cond.error();
                if (!truthy(*cond)) break;
                bool brk = false;
                for (const auto& inner : s.body) {
                    auto flow = exec(*inner, depth + 1);
                    if (!flow) return flow;
                    if (*flow == Flow::Return) return flow;
                    if (*flow == Flow::Break) { brk = true; break; }
                    if (*flow == Flow::Continue) break;
                }
                if (brk) break;
            }
            return Flow::Normal;
        }
        case Stmt::Kind::Foreach: {
            auto iterable = eval(*s.expr, depth);
            if (!iterable) return iterable.error();
            auto iterate = [&](const json::Value& key,
                               const json::Value& value) -> Expected<Flow> {
                if (!s.var_key.empty()) m_vars[s.var_key] = key;
                m_vars[s.var_value] = value;
                for (const auto& inner : s.body) {
                    auto flow = exec(*inner, depth + 1);
                    if (!flow) return flow;
                    if (*flow != Flow::Normal) return flow;
                }
                return Flow::Normal;
            };
            if (iterable->is_array()) {
                std::int64_t i = 0;
                for (const auto& el : iterable->as_array()) {
                    auto flow = iterate(json::Value{i++}, el);
                    if (!flow) return flow;
                    if (*flow == Flow::Return) return flow;
                    if (*flow == Flow::Break) break;
                }
            } else if (iterable->is_object()) {
                for (const auto& [k, v] : iterable->as_object()) {
                    auto flow = iterate(json::Value{k}, v);
                    if (!flow) return flow;
                    if (*flow == Flow::Return) return flow;
                    if (*flow == Flow::Break) break;
                }
            } else if (!iterable->is_null()) {
                return fail("foreach over non-iterable value");
            }
            return Flow::Normal;
        }
        case Stmt::Kind::Return: {
            if (s.expr) {
                auto v = eval(*s.expr, depth);
                if (!v) return v.error();
                m_return = std::move(*v);
            }
            return Flow::Return;
        }
        case Stmt::Kind::Break: return Flow::Break;
        case Stmt::Kind::Continue: return Flow::Continue;
        }
        return Flow::Normal;
    }

    /// Resolve an assignable location ($x, $x.f, $x[i], nested).
    json::Value* lvalue(const Expr& e, int depth) {
        switch (e.kind) {
        case Expr::Kind::Variable: return &m_vars[e.name];
        case Expr::Kind::Field: {
            json::Value* base = lvalue(*e.children[0], depth);
            if (base == nullptr) return nullptr;
            return &(*base)[e.name];
        }
        case Expr::Kind::Index: {
            json::Value* base = lvalue(*e.children[0], depth);
            if (base == nullptr) return nullptr;
            auto idx = eval(*e.children[1], depth);
            if (!idx) return nullptr;
            if (idx->is_string()) return &(*base)[idx->as_string()];
            if (idx->is_number() && base->is_array()) {
                auto i = static_cast<std::size_t>(idx->as_integer());
                if (i >= base->as_array().size()) return nullptr;
                return &(*base)[i];
            }
            return nullptr;
        }
        default: return nullptr;
        }
    }

    Expected<json::Value> eval(const Expr& e, int depth) {
        if (depth > k_max_depth) return fail("expression too deep");
        switch (e.kind) {
        case Expr::Kind::Literal: return e.literal;
        case Expr::Kind::Variable: {
            auto it = m_vars.find(e.name);
            if (it == m_vars.end()) return json::Value{}; // undefined -> null
            return it->second;
        }
        case Expr::Kind::Array: {
            json::Array arr;
            for (const auto& c : e.children) {
                auto v = eval(*c, depth + 1);
                if (!v) return v;
                arr.push_back(std::move(*v));
            }
            return json::Value{std::move(arr)};
        }
        case Expr::Kind::Object: {
            json::Object obj;
            for (std::size_t i = 0; i < e.children.size(); ++i) {
                auto v = eval(*e.children[i], depth + 1);
                if (!v) return v;
                obj[e.object_keys[i]] = std::move(*v);
            }
            return json::Value{std::move(obj)};
        }
        case Expr::Kind::Field: {
            auto base = eval(*e.children[0], depth + 1);
            if (!base) return base;
            return (*base)[e.name];
        }
        case Expr::Kind::Index: {
            auto base = eval(*e.children[0], depth + 1);
            if (!base) return base;
            auto idx = eval(*e.children[1], depth + 1);
            if (!idx) return idx;
            if (idx->is_string()) return (*base)[idx->as_string()];
            if (idx->is_number() && base->is_array()) {
                auto i = static_cast<std::size_t>(idx->as_integer());
                if (i >= base->as_array().size()) return json::Value{};
                return (*base)[i];
            }
            if (idx->is_number() && base->is_string()) {
                // String indexing yields a 1-character string (PHP-style).
                auto i = static_cast<std::size_t>(idx->as_integer());
                const auto& s = base->as_string();
                if (i >= s.size()) return json::Value{};
                return json::Value{std::string(1, s[i])};
            }
            return json::Value{};
        }
        case Expr::Kind::Unary: {
            auto v = eval(*e.children[0], depth + 1);
            if (!v) return v;
            if (e.op == Tok::Not) return json::Value{!truthy(*v)};
            if (v->is_integer()) return json::Value{-v->as_integer()};
            if (v->is_real()) return json::Value{-v->as_real()};
            return fail("unary '-' on non-number");
        }
        case Expr::Kind::Binary: return eval_binary(e, depth);
        case Expr::Kind::Call: return eval_call(e, depth);
        }
        return fail("unreachable expression kind");
    }

    Expected<json::Value> eval_binary(const Expr& e, int depth) {
        // Short-circuit logical operators.
        if (e.op == Tok::AndAnd || e.op == Tok::OrOr) {
            auto lhs = eval(*e.children[0], depth + 1);
            if (!lhs) return lhs;
            bool l = truthy(*lhs);
            if (e.op == Tok::AndAnd && !l) return json::Value{false};
            if (e.op == Tok::OrOr && l) return json::Value{true};
            auto rhs = eval(*e.children[1], depth + 1);
            if (!rhs) return rhs;
            return json::Value{truthy(*rhs)};
        }
        auto lhs = eval(*e.children[0], depth + 1);
        if (!lhs) return lhs;
        auto rhs = eval(*e.children[1], depth + 1);
        if (!rhs) return rhs;
        switch (e.op) {
        case Tok::Eq: return json::Value{*lhs == *rhs};
        case Tok::Ne: return json::Value{*lhs != *rhs};
        case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge: {
            if (lhs->is_string() && rhs->is_string()) {
                int c = lhs->as_string().compare(rhs->as_string());
                return json::Value{e.op == Tok::Lt   ? c < 0
                                   : e.op == Tok::Le ? c <= 0
                                   : e.op == Tok::Gt ? c > 0
                                                     : c >= 0};
            }
            if (!lhs->is_number() || !rhs->is_number())
                return fail("comparison of non-comparable values");
            double a = lhs->as_real(), b = rhs->as_real();
            return json::Value{e.op == Tok::Lt   ? a < b
                               : e.op == Tok::Le ? a <= b
                               : e.op == Tok::Gt ? a > b
                                                 : a >= b};
        }
        case Tok::Plus: {
            if (lhs->is_string() || rhs->is_string())
                return json::Value{to_string(*lhs) + to_string(*rhs)};
            if (lhs->is_integer() && rhs->is_integer())
                return json::Value{lhs->as_integer() + rhs->as_integer()};
            if (lhs->is_number() && rhs->is_number())
                return json::Value{lhs->as_real() + rhs->as_real()};
            return fail("'+' on incompatible types");
        }
        case Tok::Minus: case Tok::Star: case Tok::Slash: case Tok::Percent: {
            if (!lhs->is_number() || !rhs->is_number())
                return fail("arithmetic on non-numbers");
            if (e.op == Tok::Percent) {
                std::int64_t b = rhs->as_integer();
                if (b == 0) return fail("modulo by zero");
                return json::Value{lhs->as_integer() % b};
            }
            if (lhs->is_integer() && rhs->is_integer() && e.op != Tok::Slash) {
                std::int64_t a = lhs->as_integer(), b = rhs->as_integer();
                return json::Value{e.op == Tok::Minus ? a - b : a * b};
            }
            double a = lhs->as_real(), b = rhs->as_real();
            if (e.op == Tok::Slash) {
                if (b == 0) return fail("division by zero");
                return json::Value{a / b};
            }
            return json::Value{e.op == Tok::Minus ? a - b : a * b};
        }
        default: return fail("unknown binary operator");
        }
    }

    static std::string to_string(const json::Value& v) {
        if (v.is_string()) return v.as_string();
        return v.dump();
    }

    Expected<json::Value> eval_call(const Expr& e, int depth) {
        // array_push mutates its first argument, which must be an lvalue.
        if (e.name == "array_push") {
            if (e.children.size() < 2) return fail("array_push needs 2+ arguments");
            json::Value* target = lvalue(*e.children[0], depth);
            if (target == nullptr) return fail("array_push target must be assignable");
            if (target->is_null()) *target = json::Value::array();
            if (!target->is_array()) return fail("array_push target is not an array");
            for (std::size_t i = 1; i < e.children.size(); ++i) {
                auto v = eval(*e.children[i], depth + 1);
                if (!v) return v;
                target->push_back(std::move(*v));
            }
            return json::Value{static_cast<std::int64_t>(target->size())};
        }
        std::vector<json::Value> args;
        for (const auto& c : e.children) {
            auto v = eval(*c, depth + 1);
            if (!v) return v;
            args.push_back(std::move(*v));
        }
        auto need = [&](std::size_t n) -> Status {
            if (args.size() != n)
                return fail(e.name + " expects " + std::to_string(n) + " argument(s)");
            return {};
        };
        if (e.name == "count" || e.name == "length") {
            if (auto st = need(1); !st.ok()) return st.error();
            if (args[0].is_string())
                return json::Value{static_cast<std::int64_t>(args[0].as_string().size())};
            return json::Value{static_cast<std::int64_t>(args[0].size())};
        }
        if (e.name == "keys") {
            if (auto st = need(1); !st.ok()) return st.error();
            json::Array out;
            if (args[0].is_object())
                for (const auto& [k, v] : args[0].as_object()) out.push_back(json::Value{k});
            return json::Value{std::move(out)};
        }
        if (e.name == "contains") {
            if (auto st = need(2); !st.ok()) return st.error();
            if (args[0].is_object() && args[1].is_string())
                return json::Value{args[0].contains(args[1].as_string())};
            if (args[0].is_array()) {
                for (const auto& el : args[0].as_array())
                    if (el == args[1]) return json::Value{true};
                return json::Value{false};
            }
            if (args[0].is_string() && args[1].is_string())
                return json::Value{args[0].as_string().find(args[1].as_string()) !=
                                   std::string::npos};
            return json::Value{false};
        }
        if (e.name == "str") {
            if (auto st = need(1); !st.ok()) return st.error();
            return json::Value{to_string(args[0])};
        }
        if (e.name == "int") {
            if (auto st = need(1); !st.ok()) return st.error();
            if (args[0].is_number()) return json::Value{args[0].as_integer()};
            if (args[0].is_string()) {
                std::int64_t v = 0;
                const auto& s = args[0].as_string();
                auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
                if (ec != std::errc{}) return fail("int() of non-numeric string");
                return json::Value{v};
            }
            return fail("int() of non-convertible value");
        }
        if (e.name == "abs") {
            if (auto st = need(1); !st.ok()) return st.error();
            if (args[0].is_integer()) return json::Value{std::abs(args[0].as_integer())};
            if (args[0].is_real()) return json::Value{std::fabs(args[0].as_real())};
            return fail("abs() of non-number");
        }
        if (e.name == "min" || e.name == "max") {
            if (args.empty()) return fail(e.name + " needs arguments");
            json::Value best = args[0];
            for (const auto& a : args) {
                if (!a.is_number()) return fail(e.name + "() of non-number");
                bool better = e.name == "min" ? a.as_real() < best.as_real()
                                              : a.as_real() > best.as_real();
                if (better) best = a;
            }
            return best;
        }
        return fail("unknown function '" + e.name + "'");
    }
};

} // namespace

Expected<json::Value> evaluate(std::string_view script,
                               const std::map<std::string, json::Value>& inputs) {
    auto tokens = Lexer{script}.run();
    if (!tokens) return tokens.error();
    auto stmts = Parser{std::move(*tokens)}.run();
    if (!stmts) return stmts.error();
    return Evaluator{inputs}.run(*stmts);
}

Expected<json::Value> evaluate_env(std::string_view script,
                                   std::map<std::string, json::Value>& env) {
    auto tokens = Lexer{script}.run();
    if (!tokens) return tokens.error();
    auto stmts = Parser{std::move(*tokens)}.run();
    if (!stmts) return stmts.error();
    Evaluator evaluator{env};
    auto result = evaluator.run(*stmts);
    if (result) env = evaluator.variables();
    return result;
}

} // namespace mochi::bedrock::jx9
