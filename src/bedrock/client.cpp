#include "bedrock/client.hpp"

#include <atomic>

namespace mochi::bedrock {

ServiceHandle Client::makeServiceHandle(std::string address) const {
    return ServiceHandle{m_instance, std::move(address)};
}

Status Client::execute_transaction(
    const std::vector<std::pair<std::string, json::Value>>& ops) const {
    // Group ops per process, preserving order.
    std::vector<std::pair<std::string, json::Value>> groups;
    for (const auto& [addr, op] : ops) {
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto& g) { return g.first == addr; });
        if (it == groups.end()) {
            groups.emplace_back(addr, json::Value::array());
            it = groups.end() - 1;
        }
        it->second.push_back(op);
    }
    static std::atomic<std::uint64_t> txn_counter{1};
    std::string txn =
        m_instance->address() + "#" + std::to_string(txn_counter.fetch_add(1));

    // Phase 1: prepare everywhere.
    std::size_t prepared = 0;
    Status failure;
    for (const auto& [addr, group] : groups) {
        auto r = m_instance->call<bool>(addr, "bedrock/prepare", {}, txn, group.dump());
        if (!r) {
            failure = std::move(r).error();
            break;
        }
        ++prepared;
    }
    if (prepared != groups.size()) {
        // Roll back the prepared subset.
        for (std::size_t i = 0; i < prepared; ++i)
            (void)m_instance->call<bool>(groups[i].first, "bedrock/abort", {}, txn);
        return failure;
    }
    // Phase 2: commit everywhere.
    Status result;
    for (const auto& [addr, group] : groups) {
        auto r = m_instance->call<bool>(addr, "bedrock/commit", {}, txn);
        if (!r && result.ok()) result = std::move(r).error();
    }
    return result;
}

Status ServiceHandle::status_call(std::string_view rpc, std::string payload) const {
    auto r = m_instance->forward(m_address, rpc, std::move(payload));
    if (!r) return r.error();
    return {};
}

Expected<json::Value> ServiceHandle::getConfig() const {
    auto r = m_instance->call<std::string>(m_address, "bedrock/get_config", {});
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

Expected<json::Value> ServiceHandle::getMetrics() const {
    auto r = m_instance->call<std::string>(m_address, "bedrock/get_metrics", {});
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

Expected<json::Value> ServiceHandle::queryConfig(std::string_view jx9_script) const {
    auto r = m_instance->call<std::string>(m_address, "bedrock/query", {},
                                           std::string(jx9_script));
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

Status ServiceHandle::addPool(const json::Value& pool_config) const {
    return status_call("bedrock/add_pool", mercury::pack(pool_config.dump()));
}

Status ServiceHandle::removePool(const std::string& name) const {
    return status_call("bedrock/remove_pool", mercury::pack(name));
}

Status ServiceHandle::addXstream(const json::Value& xstream_config) const {
    return status_call("bedrock/add_xstream", mercury::pack(xstream_config.dump()));
}

Status ServiceHandle::removeXstream(const std::string& name) const {
    return status_call("bedrock/remove_xstream", mercury::pack(name));
}

Status ServiceHandle::loadModule(const std::string& type, const std::string& library) const {
    return status_call("bedrock/load_module", mercury::pack(type, library));
}

Status ServiceHandle::startProvider(const json::Value& descriptor) const {
    return status_call("bedrock/start_provider", mercury::pack(descriptor.dump()));
}

Status ServiceHandle::startProvider(const std::string& name, const std::string& type,
                                    std::uint16_t provider_id, const json::Value& config,
                                    const json::Value& dependencies,
                                    const std::string& pool) const {
    auto desc = json::Value::object();
    desc["name"] = name;
    desc["type"] = type;
    desc["provider_id"] = static_cast<std::int64_t>(provider_id);
    if (!config.is_null()) desc["config"] = config;
    if (!dependencies.is_null()) desc["dependencies"] = dependencies;
    if (!pool.empty()) desc["pool"] = pool;
    return startProvider(desc);
}

Status ServiceHandle::stopProvider(const std::string& name) const {
    return status_call("bedrock/stop_provider", mercury::pack(name));
}

Expected<bool> ServiceHandle::hasProvider(const std::string& name) const {
    auto r = m_instance->call<bool>(m_address, "bedrock/has_provider", {}, name);
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

Status ServiceHandle::migrateProvider(const std::string& name, const std::string& dest_address,
                                      const json::Value& options) const {
    json::Value opts = options.is_null() ? json::Value::object() : options;
    return status_call("bedrock/migrate_provider",
                       mercury::pack(name, dest_address, opts.dump()));
}

Status ServiceHandle::checkpointProvider(const std::string& name,
                                         const std::string& path) const {
    return status_call("bedrock/checkpoint_provider", mercury::pack(name, path));
}

Status ServiceHandle::restoreProvider(const std::string& name, const std::string& path) const {
    return status_call("bedrock/restore_provider", mercury::pack(name, path));
}

Status ServiceHandle::shutdownProcess() const {
    return status_call("bedrock/shutdown", "");
}

} // namespace mochi::bedrock
