// A Jx9-subset interpreter (§5, Listing 4). Jx9 is the lightweight
// PHP-flavoured scripting language Bedrock embeds to query (and
// parameterize) JSON configuration documents. This implementation covers
// the dialect used by Bedrock queries:
//
//   $result = [];
//   foreach ($__config__.providers as $p) { array_push($result, $p.name); }
//   return $result;
//
// Supported:
//   - variables ($x), assignment, compound field assignment ($x.y = ...)
//   - literals: numbers, strings, true/false/null, [..] arrays, {..} objects
//   - field access (a.b), indexing (a[expr])
//   - operators: == != < <= > >= + - * / % && || ! unary-
//   - statements: expression;  if/else  foreach ($e as $v) / ($e as $k => $v)
//     while  return  break  continue
//   - builtins: array_push, count/length, keys, contains, str, int, abs,
//     min, max
//
// The interpreter is sandboxed: bounded loop iterations and recursion depth.
#pragma once

#include "common/expected.hpp"
#include "common/json.hpp"

#include <map>
#include <string>

namespace mochi::bedrock::jx9 {

/// Evaluate `script` with the given named inputs (e.g. {"__config__": doc}).
/// Returns the value of the `return` statement (null if none executed).
Expected<json::Value> evaluate(std::string_view script,
                               const std::map<std::string, json::Value>& inputs);

/// Evaluate `script` against a persistent variable environment: variables
/// are read from `env` before the run and written back after it, so
/// successive scripts share state. Used by the Poesie interpreter component
/// (§3.2) to run stateful remote scripting sessions.
Expected<json::Value> evaluate_env(std::string_view script,
                                   std::map<std::string, json::Value>& env);

} // namespace mochi::bedrock::jx9
