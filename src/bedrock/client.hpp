// Bedrock's client library (Listing 5):
//
//   bedrock::Client client{...};
//   bedrock::ServiceHandle p = client.makeServiceHandle(address);
//   p.addPool(jsonPoolConfig);
//   p.removePool("MyPoolX");
//   p.loadModule("B", "libcomponent_b.so");
//   p.startProvider("myProviderB", "B", ...);
//
// plus Jx9 configuration queries (Listing 4) and the transactional
// cross-process reconfiguration of §5 (Client::execute_transaction).
#pragma once

#include "common/expected.hpp"
#include "common/json.hpp"
#include "margo/instance.hpp"

#include <string>
#include <vector>

namespace mochi::bedrock {

class ServiceHandle;

class Client {
  public:
    explicit Client(margo::InstancePtr instance) : m_instance(std::move(instance)) {}

    [[nodiscard]] ServiceHandle makeServiceHandle(std::string address) const;

    /// Atomically apply reconfiguration ops across several processes using
    /// two-phase commit: either every process applies its ops, or none does
    /// (§5's consistency example). Each element is {address, op-object}.
    Status execute_transaction(
        const std::vector<std::pair<std::string, json::Value>>& ops) const;

    [[nodiscard]] const margo::InstancePtr& instance() const noexcept { return m_instance; }

  private:
    margo::InstancePtr m_instance;
};

/// Remote control surface of one Bedrock-managed process.
class ServiceHandle {
  public:
    ServiceHandle(margo::InstancePtr instance, std::string address)
    : m_instance(std::move(instance)), m_address(std::move(address)) {}

    [[nodiscard]] const std::string& address() const noexcept { return m_address; }

    Expected<json::Value> getConfig() const;
    Expected<json::Value> queryConfig(std::string_view jx9_script) const;
    /// Scrape the remote process's metrics registry (docs/OBSERVABILITY.md).
    Expected<json::Value> getMetrics() const;

    Status addPool(const json::Value& pool_config) const;
    Status removePool(const std::string& name) const;
    Status addXstream(const json::Value& xstream_config) const;
    Status removeXstream(const std::string& name) const;

    Status loadModule(const std::string& type, const std::string& library) const;
    Status startProvider(const json::Value& descriptor) const;
    /// Convenience matching Listing 5's signature.
    Status startProvider(const std::string& name, const std::string& type,
                         std::uint16_t provider_id, const json::Value& config = {},
                         const json::Value& dependencies = {},
                         const std::string& pool = "") const;
    Status stopProvider(const std::string& name) const;
    Expected<bool> hasProvider(const std::string& name) const;

    Status migrateProvider(const std::string& name, const std::string& dest_address,
                           const json::Value& options = {}) const;
    Status checkpointProvider(const std::string& name, const std::string& path) const;
    Status restoreProvider(const std::string& name, const std::string& path) const;

    Status shutdownProcess() const;

  private:
    friend class Client;
    Status status_call(std::string_view rpc, std::string payload) const;

    margo::InstancePtr m_instance;
    std::string m_address;
};

} // namespace mochi::bedrock
