// Mochi-RAFT (§7, Observation 11): a RAFT [Ongaro & Ousterhout 2014]
// implementation over Margo, modeled after C-RAFT's role in the paper.
// Provides state-machine replication across components of the same type:
// leader election with randomized timeouts, log replication, commitment,
// snapshotting/compaction, persistence to the node-local store (so a
// restarted process recovers its term/vote/log), and a client helper that
// tracks the leader.
//
// Composability: the replicated component only implements StateMachine
// (apply/snapshot/restore); it is unaware of the consensus protocol, and
// Mochi-RAFT is unaware of what the commands mean (§2.3's Yokan example).
#pragma once

#include "margo/provider.hpp"
#include "remi/sim_file_store.hpp"

#include <deque>
#include <random>
#include <string_view>

namespace mochi::raft {

/// The replicated application (e.g. a Yokan database). apply() must be
/// deterministic across replicas.
class StateMachine {
  public:
    virtual ~StateMachine() = default;
    /// Apply a committed command; the returned string is the command result
    /// delivered to the submitting client (by the leader).
    virtual std::string apply(const std::string& command) = 0;
    /// Serialize the full state (for log compaction / lagging followers).
    [[nodiscard]] virtual std::string snapshot() const = 0;
    /// Replace the state with a snapshot.
    virtual Status restore(const std::string& snapshot) = 0;
};

enum class Role { Follower, Candidate, Leader };

[[nodiscard]] const char* to_string(Role r) noexcept;

struct RaftConfig {
    std::chrono::milliseconds election_timeout_min{150};
    std::chrono::milliseconds election_timeout_max{300};
    std::chrono::milliseconds heartbeat_period{40};
    std::chrono::milliseconds rpc_timeout{100};
    /// Compact the log into a snapshot after this many applied entries.
    std::size_t snapshot_threshold = 4096;
    /// Persist term/vote/log to the node-local store.
    bool persist = true;
};

struct LogEntry {
    std::uint64_t term = 0;
    std::string command;

    template <typename A>
    void serialize(A& ar) {
        ar& term& command;
    }
};

class Provider : public margo::Provider, public std::enable_shared_from_this<Provider> {
  public:
    /// `peers` lists the addresses of every replica (including this one);
    /// each runs a raft::Provider with the same `provider_id`.
    static std::shared_ptr<Provider> create(margo::InstancePtr instance,
                                            std::uint16_t provider_id,
                                            std::vector<std::string> peers,
                                            std::shared_ptr<StateMachine> state_machine,
                                            RaftConfig config = {});

    ~Provider() override;

    /// Submit a command for replication. Succeeds only on the leader (with
    /// the applied result); otherwise fails with NotLeader and the current
    /// leader hint in the message (clients use RaftClient instead).
    Expected<std::string> submit(const std::string& command);

    /// Submit a batch: every command is appended under one lock acquisition
    /// with a single persist(), and one replication round ships the whole
    /// batch (append_entries already carries entry vectors). Results come
    /// back in submission order; a timeout or lost leadership fails the
    /// whole call.
    Expected<std::vector<std::string>> submit_multi(const std::vector<std::string>& commands);

    [[nodiscard]] Role role() const;
    [[nodiscard]] std::uint64_t term() const;
    [[nodiscard]] std::string leader_hint() const;
    [[nodiscard]] std::uint64_t commit_index() const;
    [[nodiscard]] std::uint64_t last_log_index() const;
    [[nodiscard]] std::size_t log_size_entries() const; ///< after compaction

    [[nodiscard]] json::Value get_config() const override;

    /// Stop timers and refuse further RPCs (simulated process death keeps
    /// the persisted state for a later restart).
    void stop();

  private:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id,
             std::vector<std::string> peers, std::shared_ptr<StateMachine> state_machine,
             RaftConfig config);
    void define_rpcs();
    void schedule_tick();
    void tick();
    void become_follower(std::uint64_t term, std::string_view leader);
    void start_election();
    void become_leader();
    void replicate_to(const std::string& peer);
    void broadcast();
    void advance_commit();
    void apply_committed(); ///< call with m_mutex held
    void maybe_snapshot();  ///< call with m_mutex held
    void persist() const;   ///< call with m_mutex held
    void load_persisted();
    void reset_election_deadline();
    [[nodiscard]] std::uint64_t entry_term(std::uint64_t index) const; ///< locked
    [[nodiscard]] std::string storage_path() const;

    std::vector<std::string> m_peers;
    std::shared_ptr<StateMachine> m_sm;
    RaftConfig m_config;

    mutable std::mutex m_mutex;
    Role m_role = Role::Follower;
    std::uint64_t m_term = 0;
    std::string m_voted_for;
    std::string m_leader;
    // Log: entries m_log[i] has index m_snapshot_index + 1 + i.
    std::vector<LogEntry> m_log;
    std::uint64_t m_snapshot_index = 0;
    std::uint64_t m_snapshot_term = 0;
    std::string m_snapshot_data;
    std::uint64_t m_commit_index = 0;
    std::uint64_t m_last_applied = 0;
    std::map<std::string, std::uint64_t> m_next_index;
    std::map<std::string, std::uint64_t> m_match_index;
    std::map<std::string, bool> m_replicating; ///< per-peer in-flight flag
    // Waiters for entry commitment: index -> eventual with apply result.
    std::map<std::uint64_t, std::shared_ptr<abt::Eventual<Expected<std::string>>>> m_waiters;
    std::chrono::steady_clock::time_point m_election_deadline;
    std::chrono::steady_clock::time_point m_last_heartbeat_sent;
    std::mt19937_64 m_rng;
    std::atomic<bool> m_stopped{false};
};

/// Client helper: submits commands, discovering and tracking the leader
/// (retries on NotLeader using the hint, and on timeouts tries other peers).
class Client {
  public:
    Client(margo::InstancePtr instance, std::vector<std::string> peers,
           std::uint16_t provider_id, std::chrono::milliseconds op_timeout =
                                          std::chrono::milliseconds(5000));

    Expected<std::string> submit(const std::string& command);
    /// Batched submit: one raft/submit_multi RPC carries all commands to the
    /// leader, which commits them as one log append + replication round.
    Expected<std::vector<std::string>> submit_multi(const std::vector<std::string>& commands);
    [[nodiscard]] const std::string& known_leader() const noexcept { return m_leader; }

  private:
    /// Update the tracked leader from a failed submit (NotLeader hints
    /// carry the leader address); back off briefly when no hint is known.
    void absorb_submit_error(const Error& e);

    margo::InstancePtr m_instance;
    std::vector<std::string> m_peers;
    std::uint16_t m_provider_id;
    std::chrono::milliseconds m_op_timeout;
    std::string m_leader;
};

} // namespace mochi::raft
