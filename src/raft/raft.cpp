#include "raft/raft.hpp"
#include "common/logging.hpp"
#include "margo/tracing.hpp"

namespace mochi::raft {

namespace {

// Argument structs are templated on their string representation: senders use
// the owned std::string aliases (the struct outlives the pack call), while
// RPC handlers decode the `View` aliases whose string_view fields alias the
// request payload (kept alive by margo::Request for the handler's duration).
// Decoding therefore copies nothing; bytes are copied only at the sites that
// actually retain them (voted_for, m_leader, snapshot data). LogEntry stays
// owned in both directions because entries are moved into the durable log.
template <typename S>
struct BasicRequestVoteArgs {
    std::uint64_t term = 0;
    S candidate{};
    std::uint64_t last_log_index = 0;
    std::uint64_t last_log_term = 0;

    template <typename A>
    void serialize(A& ar) {
        ar& term& candidate& last_log_index& last_log_term;
    }
};
using RequestVoteArgs = BasicRequestVoteArgs<std::string>;
using RequestVoteView = BasicRequestVoteArgs<std::string_view>;

template <typename S>
struct BasicAppendEntriesArgs {
    std::uint64_t term = 0;
    S leader{};
    std::uint64_t prev_log_index = 0;
    std::uint64_t prev_log_term = 0;
    std::vector<LogEntry> entries;
    std::uint64_t leader_commit = 0;

    template <typename A>
    void serialize(A& ar) {
        ar& term& leader& prev_log_index& prev_log_term& entries& leader_commit;
    }
};
using AppendEntriesArgs = BasicAppendEntriesArgs<std::string>;
using AppendEntriesView = BasicAppendEntriesArgs<std::string_view>;

template <typename S>
struct BasicInstallSnapshotArgs {
    std::uint64_t term = 0;
    S leader{};
    std::uint64_t last_included_index = 0;
    std::uint64_t last_included_term = 0;
    S data{};

    template <typename A>
    void serialize(A& ar) {
        ar& term& leader& last_included_index& last_included_term& data;
    }
};
using InstallSnapshotArgs = BasicInstallSnapshotArgs<std::string>;
using InstallSnapshotView = BasicInstallSnapshotArgs<std::string_view>;

} // namespace

const char* to_string(Role r) noexcept {
    switch (r) {
    case Role::Follower: return "follower";
    case Role::Candidate: return "candidate";
    case Role::Leader: return "leader";
    }
    return "?";
}

Provider::Provider(margo::InstancePtr instance, std::uint16_t provider_id,
                   std::vector<std::string> peers,
                   std::shared_ptr<StateMachine> state_machine, RaftConfig config)
: margo::Provider(std::move(instance), provider_id, "raft"),
  m_peers(std::move(peers)), m_sm(std::move(state_machine)), m_config(config),
  m_rng(std::hash<std::string>{}(this->instance()->address()) ^ provider_id) {}

std::shared_ptr<Provider> Provider::create(margo::InstancePtr instance,
                                           std::uint16_t provider_id,
                                           std::vector<std::string> peers,
                                           std::shared_ptr<StateMachine> state_machine,
                                           RaftConfig config) {
    auto p = std::shared_ptr<Provider>(new Provider(
        std::move(instance), provider_id, std::move(peers), std::move(state_machine), config));
    p->load_persisted();
    p->define_rpcs();
    p->reset_election_deadline();
    p->schedule_tick();
    return p;
}

Provider::~Provider() {
    stop();
    // Quiesce in-flight RPC handlers before members (log, timers, state
    // machine pointer) are destroyed.
    deregister_all();
}

void Provider::stop() { m_stopped.store(true); }

std::string Provider::storage_path() const {
    return "/raft/" + std::to_string(provider_id()) + "/state";
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

void Provider::persist() const {
    if (!m_config.persist) return;
    auto store = remi::SimFileStore::for_node(instance()->address());
    std::string blob = mercury::pack(m_term, m_voted_for, m_log, m_snapshot_index,
                                     m_snapshot_term, m_snapshot_data);
    (void)store->write(storage_path(), std::move(blob));
}

void Provider::load_persisted() {
    if (!m_config.persist) return;
    auto store = remi::SimFileStore::for_node(instance()->address());
    auto blob = store->read(storage_path());
    if (!blob) return;
    std::lock_guard lk{m_mutex};
    if (!mercury::unpack(*blob, m_term, m_voted_for, m_log, m_snapshot_index,
                         m_snapshot_term, m_snapshot_data)) {
        log::warn("raft", "%s: corrupt persisted state ignored", instance()->address().c_str());
        return;
    }
    if (!m_snapshot_data.empty()) {
        (void)m_sm->restore(m_snapshot_data);
        m_commit_index = m_snapshot_index;
        m_last_applied = m_snapshot_index;
    }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Role Provider::role() const {
    std::lock_guard lk{m_mutex};
    return m_role;
}

std::uint64_t Provider::term() const {
    std::lock_guard lk{m_mutex};
    return m_term;
}

std::string Provider::leader_hint() const {
    std::lock_guard lk{m_mutex};
    return m_leader;
}

std::uint64_t Provider::commit_index() const {
    std::lock_guard lk{m_mutex};
    return m_commit_index;
}

std::uint64_t Provider::last_log_index() const {
    std::lock_guard lk{m_mutex};
    return m_snapshot_index + m_log.size();
}

std::size_t Provider::log_size_entries() const {
    std::lock_guard lk{m_mutex};
    return m_log.size();
}

json::Value Provider::get_config() const {
    std::lock_guard lk{m_mutex};
    auto c = json::Value::object();
    c["role"] = to_string(m_role);
    c["term"] = m_term;
    c["leader"] = m_leader;
    c["commit_index"] = m_commit_index;
    c["last_applied"] = m_last_applied;
    c["log_entries"] = m_log.size();
    c["snapshot_index"] = m_snapshot_index;
    auto peers = json::Value::array();
    for (const auto& p : m_peers) peers.push_back(p);
    c["peers"] = std::move(peers);
    return c;
}

std::uint64_t Provider::entry_term(std::uint64_t index) const {
    if (index == m_snapshot_index) return m_snapshot_term;
    if (index < m_snapshot_index || index > m_snapshot_index + m_log.size()) return 0;
    return m_log[index - m_snapshot_index - 1].term;
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void Provider::reset_election_deadline() {
    std::uniform_int_distribution<std::int64_t> dist(
        m_config.election_timeout_min.count(), m_config.election_timeout_max.count());
    m_election_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(dist(m_rng));
}

void Provider::schedule_tick() {
    if (m_stopped.load() || instance()->is_shutdown()) return;
    auto weak = weak_from_this();
    auto period = std::chrono::duration_cast<std::chrono::microseconds>(
        m_config.election_timeout_min / 4);
    instance()->runtime()->timer().schedule(period, [weak] {
        auto self = weak.lock();
        if (!self || self->m_stopped.load() || self->instance()->is_shutdown()) return;
        auto rt = self->instance()->runtime();
        rt->post(rt->primary_pool(), [weak] {
            auto p = weak.lock();
            if (!p || p->m_stopped.load()) return;
            p->tick();
            p->schedule_tick();
        });
    });
}

void Provider::tick() {
    bool start = false;
    bool heartbeat = false;
    {
        std::lock_guard lk{m_mutex};
        auto now = std::chrono::steady_clock::now();
        if (m_role == Role::Leader) {
            if (now - m_last_heartbeat_sent >= m_config.heartbeat_period) {
                m_last_heartbeat_sent = now;
                heartbeat = true;
            }
        } else if (now >= m_election_deadline) {
            start = true;
        }
    }
    if (start) start_election();
    if (heartbeat) broadcast();
}

// ---------------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------------

void Provider::become_follower(std::uint64_t term, std::string_view leader) {
    // m_mutex held by caller
    bool was_leader = m_role == Role::Leader;
    if (term > m_term) {
        m_term = term;
        m_voted_for.clear();
        persist();
    }
    m_role = Role::Follower;
    if (!leader.empty()) m_leader = leader;
    reset_election_deadline();
    if (was_leader) {
        // Fail waiting submissions: leadership lost before commitment.
        auto waiters = std::move(m_waiters);
        m_waiters.clear();
        for (auto& [idx, ev] : waiters)
            ev->set_value(Error{Error::Code::NotLeader, "leadership lost; leader=" + m_leader});
    }
}

void Provider::start_election() {
    RequestVoteArgs args;
    std::vector<std::string> peers;
    std::uint64_t election_term;
    {
        std::lock_guard lk{m_mutex};
        m_role = Role::Candidate;
        ++m_term;
        m_voted_for = instance()->address();
        m_leader.clear();
        persist();
        reset_election_deadline();
        election_term = m_term;
        args.term = m_term;
        args.candidate = instance()->address();
        args.last_log_index = m_snapshot_index + m_log.size();
        args.last_log_term = entry_term(args.last_log_index);
        for (const auto& p : m_peers)
            if (p != instance()->address()) peers.push_back(p);
    }
    log::debug("raft", "%s: starting election for term %llu", instance()->address().c_str(),
               static_cast<unsigned long long>(election_term));
    auto votes = std::make_shared<std::atomic<std::size_t>>(1); // self-vote
    auto majority = m_peers.size() / 2 + 1;
    if (*votes >= majority) {
        become_leader(); // single-node group: win immediately
        return;
    }
    instance()->metrics()->counter("raft_elections_total").inc();
    auto weak = weak_from_this();
    auto rt = instance()->runtime();
    // Vote requests fan out on fresh ULTs; keep them on the ambient trace
    // (e.g. the membership-change RPC that triggered this election).
    margo::RpcContext rpc_ctx = margo::current_rpc_context();
    for (const auto& peer : peers) {
        rt->post(rt->primary_pool(), [weak, peer, args, votes, majority, election_term,
                                      rpc_ctx] {
            margo::ContextScope scope{rpc_ctx};
            auto self = weak.lock();
            if (!self || self->m_stopped.load()) return;
            margo::ForwardOptions opts;
            opts.provider_id = self->provider_id();
            opts.timeout = self->m_config.rpc_timeout;
            auto r = self->instance()->call<std::uint64_t, bool>(
                peer, "raft/request_vote", opts, args);
            if (!r) return;
            auto [peer_term, granted] = *r;
            bool won = false;
            {
                std::lock_guard lk{self->m_mutex};
                if (peer_term > self->m_term) {
                    self->become_follower(peer_term, "");
                    return;
                }
                if (self->m_role != Role::Candidate || self->m_term != election_term) return;
                if (granted && votes->fetch_add(1) + 1 >= majority) won = true;
            }
            if (won) self->become_leader();
        });
    }
}

void Provider::become_leader() {
    {
        std::lock_guard lk{m_mutex};
        if (m_role != Role::Candidate) return;
        m_role = Role::Leader;
        m_leader = instance()->address();
        std::uint64_t next = m_snapshot_index + m_log.size() + 1;
        for (const auto& p : m_peers) {
            m_next_index[p] = next;
            m_match_index[p] = 0;
            m_replicating[p] = false;
        }
        m_last_heartbeat_sent = std::chrono::steady_clock::now();
    }
    log::info("raft", "%s: became leader (term %llu)", instance()->address().c_str(),
              static_cast<unsigned long long>(term()));
    broadcast();
}

// ---------------------------------------------------------------------------
// Replication (leader side)
// ---------------------------------------------------------------------------

void Provider::broadcast() {
    for (const auto& peer : m_peers)
        if (peer != instance()->address()) replicate_to(peer);
}

void Provider::replicate_to(const std::string& peer) {
    {
        std::lock_guard lk{m_mutex};
        if (m_role != Role::Leader) return;
        // One in-flight replication per peer; the completion reschedules if
        // more entries arrived meanwhile.
        if (m_replicating[peer]) return;
        m_replicating[peer] = true;
    }
    auto weak = weak_from_this();
    auto rt = instance()->runtime();
    // The replication ULT inherits the submitter's context so append_entries
    // forwards show up as children of the client operation being committed.
    margo::RpcContext rpc_ctx = margo::current_rpc_context();
    rt->post(rt->primary_pool(), [weak, peer, rpc_ctx] {
        margo::ContextScope scope{rpc_ctx};
        auto self = weak.lock();
        if (!self || self->m_stopped.load()) return;
        bool again = false;
        do {
            again = false;
            AppendEntriesArgs args;
            InstallSnapshotArgs snap;
            bool need_snapshot = false;
            {
                std::lock_guard lk{self->m_mutex};
                if (self->m_role != Role::Leader) {
                    self->m_replicating[peer] = false;
                    return;
                }
                std::uint64_t next = self->m_next_index[peer];
                if (next <= self->m_snapshot_index) {
                    need_snapshot = true;
                    snap.term = self->m_term;
                    snap.leader = self->instance()->address();
                    snap.last_included_index = self->m_snapshot_index;
                    snap.last_included_term = self->m_snapshot_term;
                    snap.data = self->m_snapshot_data;
                } else {
                    args.term = self->m_term;
                    args.leader = self->instance()->address();
                    args.prev_log_index = next - 1;
                    args.prev_log_term = self->entry_term(next - 1);
                    args.leader_commit = self->m_commit_index;
                    std::size_t first = next - self->m_snapshot_index - 1;
                    constexpr std::size_t k_max_batch = 256;
                    for (std::size_t i = first;
                         i < self->m_log.size() && args.entries.size() < k_max_batch; ++i)
                        args.entries.push_back(self->m_log[i]);
                }
            }
            margo::ForwardOptions opts;
            opts.provider_id = self->provider_id();
            opts.timeout = self->m_config.rpc_timeout;
            if (need_snapshot) {
                auto r = self->instance()->call<std::uint64_t>(peer, "raft/install_snapshot",
                                                               opts, snap);
                std::lock_guard lk{self->m_mutex};
                if (r) {
                    if (std::get<0>(*r) > self->m_term) {
                        self->become_follower(std::get<0>(*r), "");
                    } else {
                        self->m_next_index[peer] = snap.last_included_index + 1;
                        self->m_match_index[peer] = snap.last_included_index;
                        again = true;
                    }
                }
                if (!again) self->m_replicating[peer] = false;
                continue;
            }
            self->instance()->metrics()->counter("raft_append_entries_sent_total").inc();
            auto r = self->instance()->call<std::uint64_t, bool, std::uint64_t>(
                peer, "raft/append_entries", opts, args);
            std::unique_lock lk{self->m_mutex};
            if (!r) {
                self->m_replicating[peer] = false;
                return; // retry on next heartbeat
            }
            auto [peer_term, success, match] = *r;
            if (peer_term > self->m_term) {
                self->become_follower(peer_term, "");
                self->m_replicating[peer] = false;
                return;
            }
            if (self->m_role != Role::Leader) {
                self->m_replicating[peer] = false;
                return;
            }
            if (success) {
                self->m_match_index[peer] = std::max(self->m_match_index[peer], match);
                self->m_next_index[peer] = self->m_match_index[peer] + 1;
                self->advance_commit();
                // More entries appended meanwhile?
                again = self->m_next_index[peer] <=
                        self->m_snapshot_index + self->m_log.size();
            } else {
                // Conflict: follower tells us its match hint; back off.
                self->m_next_index[peer] =
                    std::max<std::uint64_t>(1, std::min(match + 1, self->m_next_index[peer] - 1));
                again = true;
            }
            if (!again) self->m_replicating[peer] = false;
        } while (again && !self->m_stopped.load());
    });
}

void Provider::advance_commit() {
    // m_mutex held. Find the highest N replicated on a majority with
    // log[N].term == currentTerm (RAFT's commitment rule).
    std::uint64_t last = m_snapshot_index + m_log.size();
    for (std::uint64_t n = last; n > m_commit_index && n > m_snapshot_index; --n) {
        if (entry_term(n) != m_term) break;
        std::size_t count = 1; // self
        for (const auto& p : m_peers) {
            if (p == instance()->address()) continue;
            if (m_match_index[p] >= n) ++count;
        }
        if (count >= m_peers.size() / 2 + 1) {
            m_commit_index = n;
            break;
        }
    }
    apply_committed();
}

void Provider::apply_committed() {
    // m_mutex held.
    while (m_last_applied < m_commit_index) {
        ++m_last_applied;
        const LogEntry& e = m_log[m_last_applied - m_snapshot_index - 1];
        std::string result = m_sm->apply(e.command);
        instance()->metrics()->counter("raft_entries_applied_total").inc();
        auto it = m_waiters.find(m_last_applied);
        if (it != m_waiters.end()) {
            it->second->set_value(Expected<std::string>(std::move(result)));
            m_waiters.erase(it);
        }
    }
    maybe_snapshot();
}

void Provider::maybe_snapshot() {
    // m_mutex held. Compact the log once enough entries are applied.
    std::uint64_t applied_in_log = m_last_applied - m_snapshot_index;
    if (applied_in_log < m_config.snapshot_threshold) return;
    m_snapshot_data = m_sm->snapshot();
    m_snapshot_term = entry_term(m_last_applied);
    m_log.erase(m_log.begin(), m_log.begin() + static_cast<std::ptrdiff_t>(applied_in_log));
    m_snapshot_index = m_last_applied;
    persist();
    log::debug("raft", "%s: compacted log at index %llu", instance()->address().c_str(),
               static_cast<unsigned long long>(m_snapshot_index));
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

Expected<std::string> Provider::submit(const std::string& command) {
    std::shared_ptr<abt::Eventual<Expected<std::string>>> waiter;
    std::uint64_t index = 0;
    {
        std::lock_guard lk{m_mutex};
        if (m_role != Role::Leader)
            return Error{Error::Code::NotLeader,
                         m_leader.empty() ? "no leader known" : m_leader};
        m_log.push_back(LogEntry{m_term, command});
        persist();
        index = m_snapshot_index + m_log.size();
        waiter = std::make_shared<abt::Eventual<Expected<std::string>>>();
        m_waiters[index] = waiter;
        if (m_peers.size() == 1) advance_commit(); // single-node commit
    }
    broadcast();
    auto result = waiter->wait_for(std::chrono::duration_cast<std::chrono::microseconds>(
        m_config.rpc_timeout * 20));
    if (!result) {
        // Deregister so a timed-out submission does not leak its waiter.
        std::lock_guard lk{m_mutex};
        auto it = m_waiters.find(index);
        if (it != m_waiters.end() && it->second == waiter) m_waiters.erase(it);
        return Error{Error::Code::Timeout, "command not committed in time"};
    }
    return std::move(*result);
}

Expected<std::vector<std::string>> Provider::submit_multi(
    const std::vector<std::string>& commands) {
    if (commands.empty()) return std::vector<std::string>{};
    std::vector<std::shared_ptr<abt::Eventual<Expected<std::string>>>> waiters;
    waiters.reserve(commands.size());
    std::uint64_t first_index = 0;
    {
        std::lock_guard lk{m_mutex};
        if (m_role != Role::Leader)
            return Error{Error::Code::NotLeader,
                         m_leader.empty() ? "no leader known" : m_leader};
        for (const auto& command : commands) m_log.push_back(LogEntry{m_term, command});
        persist(); // one store write for the whole batch
        first_index = m_snapshot_index + m_log.size() - commands.size() + 1;
        for (std::size_t i = 0; i < commands.size(); ++i) {
            auto w = std::make_shared<abt::Eventual<Expected<std::string>>>();
            m_waiters[first_index + i] = w;
            waiters.push_back(std::move(w));
        }
        if (m_peers.size() == 1) advance_commit(); // single-node commit
    }
    instance()->metrics()->counter("raft_batches_submitted_total").inc();
    broadcast(); // one replication round carries every entry of the batch
    auto budget = std::chrono::duration_cast<std::chrono::microseconds>(
        m_config.rpc_timeout * 20);
    std::vector<std::string> results;
    results.reserve(commands.size());
    for (std::size_t i = 0; i < waiters.size(); ++i) {
        auto r = waiters[i]->wait_for(budget);
        if (!r) {
            // Deregister the rest so a timed-out batch does not leak waiters.
            std::lock_guard lk{m_mutex};
            for (std::size_t j = i; j < waiters.size(); ++j) {
                auto it = m_waiters.find(first_index + j);
                if (it != m_waiters.end() && it->second == waiters[j]) m_waiters.erase(it);
            }
            return Error{Error::Code::Timeout, "batch not committed in time"};
        }
        if (!*r) return std::move(*r).error();
        results.push_back(std::move(**r));
    }
    return results;
}

// ---------------------------------------------------------------------------
// RPC handlers (follower side)
// ---------------------------------------------------------------------------

void Provider::define_rpcs() {
    define("request_vote", [this](const margo::Request& req) {
        RequestVoteView args;
        if (!req.unpack(args)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (args.term > m_term) become_follower(args.term, "");
        bool granted = false;
        if (args.term == m_term && (m_voted_for.empty() || m_voted_for == args.candidate)) {
            // Election restriction: candidate's log must be at least as
            // up-to-date as ours.
            std::uint64_t our_last = m_snapshot_index + m_log.size();
            std::uint64_t our_last_term = entry_term(our_last);
            if (args.last_log_term > our_last_term ||
                (args.last_log_term == our_last_term && args.last_log_index >= our_last)) {
                granted = true;
                m_voted_for = args.candidate;
                persist();
                reset_election_deadline();
            }
        }
        req.respond_values(m_term, granted);
    });

    define("append_entries", [this](const margo::Request& req) {
        AppendEntriesView args;
        if (!req.unpack(args)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (args.term < m_term) {
            req.respond_values(m_term, false, std::uint64_t{0});
            return;
        }
        become_follower(args.term, args.leader);
        // Consistency check at prev_log_index.
        std::uint64_t our_last = m_snapshot_index + m_log.size();
        if (args.prev_log_index > our_last ||
            (args.prev_log_index > m_snapshot_index &&
             entry_term(args.prev_log_index) != args.prev_log_term)) {
            // Hint: how far we actually match.
            std::uint64_t hint = std::min(args.prev_log_index, our_last);
            if (hint > 0) --hint;
            req.respond_values(m_term, false, std::max(hint, m_snapshot_index));
            return;
        }
        // Append, truncating conflicting suffix.
        std::uint64_t index = args.prev_log_index;
        for (auto& entry : args.entries) {
            ++index;
            if (index <= m_snapshot_index) continue; // already snapshotted
            std::size_t pos = index - m_snapshot_index - 1;
            if (pos < m_log.size()) {
                if (m_log[pos].term == entry.term) continue; // already have it
                m_log.resize(pos); // conflict: truncate suffix
            }
            m_log.push_back(std::move(entry));
        }
        persist();
        std::uint64_t match = args.prev_log_index + args.entries.size();
        if (args.leader_commit > m_commit_index) {
            m_commit_index = std::min(args.leader_commit, m_snapshot_index + m_log.size());
            apply_committed();
        }
        req.respond_values(m_term, true, match);
    });

    define("install_snapshot", [this](const margo::Request& req) {
        InstallSnapshotView args;
        if (!req.unpack(args)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (args.term < m_term) {
            req.respond_values(m_term);
            return;
        }
        become_follower(args.term, args.leader);
        if (args.last_included_index > m_snapshot_index) {
            m_snapshot_data = args.data; // materialize the payload view once
            (void)m_sm->restore(m_snapshot_data);
            m_snapshot_index = args.last_included_index;
            m_snapshot_term = args.last_included_term;
            m_log.clear();
            m_commit_index = std::max(m_commit_index, m_snapshot_index);
            m_last_applied = m_snapshot_index;
            persist();
        }
        req.respond_values(m_term);
    });

    define("submit", [this](const margo::Request& req) {
        std::string command;
        if (!req.unpack(command)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto r = submit(command);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(*r);
    });

    define("submit_multi", [this](const margo::Request& req) {
        std::vector<std::string> commands;
        if (!req.unpack(commands)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto r = submit_multi(commands);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(*r);
    });

    define("status", [this](const margo::Request& req) {
        req.respond_values(get_config().dump());
    });
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::InstancePtr instance, std::vector<std::string> peers,
               std::uint16_t provider_id, std::chrono::milliseconds op_timeout)
: m_instance(std::move(instance)), m_peers(std::move(peers)), m_provider_id(provider_id),
  m_op_timeout(op_timeout) {}

Expected<std::string> Client::submit(const std::string& command) {
    auto deadline = std::chrono::steady_clock::now() + m_op_timeout;
    margo::ForwardOptions opts;
    opts.provider_id = m_provider_id;
    opts.timeout = std::chrono::milliseconds(1000);
    std::size_t next_peer = 0;
    Error last{Error::Code::Unreachable, "no peer reachable"};
    while (std::chrono::steady_clock::now() < deadline) {
        std::string target = m_leader;
        if (target.empty()) {
            target = m_peers[next_peer % m_peers.size()];
            ++next_peer;
        }
        auto r = m_instance->call<std::string>(target, "raft/submit", opts, command);
        if (r) {
            m_leader = target;
            return std::get<0>(std::move(*r));
        }
        last = r.error();
        absorb_submit_error(last);
    }
    return last;
}

Expected<std::vector<std::string>> Client::submit_multi(
    const std::vector<std::string>& commands) {
    auto deadline = std::chrono::steady_clock::now() + m_op_timeout;
    margo::ForwardOptions opts;
    opts.provider_id = m_provider_id;
    opts.timeout = std::chrono::milliseconds(1000);
    std::size_t next_peer = 0;
    Error last{Error::Code::Unreachable, "no peer reachable"};
    while (std::chrono::steady_clock::now() < deadline) {
        std::string target = m_leader;
        if (target.empty()) {
            target = m_peers[next_peer % m_peers.size()];
            ++next_peer;
        }
        auto r = m_instance->call<std::vector<std::string>>(target, "raft/submit_multi",
                                                            opts, commands);
        if (r) {
            m_leader = target;
            return std::get<0>(std::move(*r));
        }
        last = r.error();
        absorb_submit_error(last);
    }
    return last;
}

void Client::absorb_submit_error(const Error& e) {
    if (e.code == Error::Code::NotLeader) {
        // The message carries the leader hint (possibly empty).
        m_leader = e.message.find("sim://") == 0 ? e.message : "";
        if (m_leader.empty()) {
            // Strip known prefixes like "leadership lost; leader=".
            auto pos = e.message.find("sim://");
            if (pos != std::string::npos) m_leader = e.message.substr(pos);
        }
        if (m_leader.empty())
            m_instance->runtime()->sleep_for(std::chrono::milliseconds(20));
        return;
    }
    m_leader.clear();
    m_instance->runtime()->sleep_for(std::chrono::milliseconds(20));
}

} // namespace mochi::raft
