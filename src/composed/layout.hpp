// The elastic service's routing plane: a compact, epoch-numbered **layout**
// from which any process computes `key -> shard -> node` locally, replacing
// the per-op-refreshable shard directory (the Motr-DIX idea applied to §6's
// elastic service: extreme-scale clients resolve targets client-side from
// compact state instead of round-tripping to a central lookup).
//
// The layout is a consistent-hash ring: shards own contiguous ranges of the
// 64-bit key-hash space, sorted by range start. Splitting a hot shard
// bisects its range (only that shard's upper half moves — ~1/2N of the keys,
// impossible under modulo hashing where changing the shard count remaps
// everything), merging joins a shard back into its ring predecessor, and
// rebalancing reassigns shards to nodes with weighted rendezvous (HRW)
// hashing. Every mutation bumps the epoch; stale clients are caught by the
// epoch guard piggybacked on Yokan RPCs (see yokan/provider.hpp) and repair
// themselves from the layout blob carried in the rejection.
#pragma once

#include "common/expected.hpp"
#include "common/hash.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mochi::composed {

/// Ring coordinate of a key. MUST match what servers use to carve ranges
/// (yokan extract_range); both delegate to common::fnv1a64.
[[nodiscard]] inline std::uint64_t key_hash(std::string_view key) noexcept {
    return common::fnv1a64(key);
}

/// One shard's entry in the layout. The shard owns the hash range
/// [range_begin, next shard's range_begin) — the last shard wraps to 2^64.
struct LayoutShard {
    std::uint32_t id = 0;          ///< stable shard id (provider id offset)
    std::uint64_t range_begin = 0; ///< inclusive start of owned hash range
    std::string node;              ///< address currently hosting the shard

    template <typename A>
    void serialize(A& ar) {
        ar& id& range_begin& node;
    }
};

/// A node with a rebalancing weight (pufferscale-derived capacity share).
struct WeightedNode {
    std::string address;
    double weight = 1.0;
};

class Layout {
  public:
    Layout() = default;

    /// Even partition of the ring into `num_shards` ranges, shards assigned
    /// round-robin over `nodes` (sorted order) — deterministic, so every
    /// process bootstrapping from the same inputs agrees.
    static Layout initial(std::size_t num_shards, std::vector<std::string> nodes);

    [[nodiscard]] std::uint64_t epoch() const noexcept { return m_epoch; }
    [[nodiscard]] const std::vector<LayoutShard>& shards() const noexcept { return m_shards; }
    [[nodiscard]] std::size_t num_shards() const noexcept { return m_shards.size(); }
    [[nodiscard]] bool empty() const noexcept { return m_shards.empty(); }

    /// Shard owning ring coordinate `h` (layout must be non-empty).
    [[nodiscard]] const LayoutShard& shard_for_hash(std::uint64_t h) const;
    [[nodiscard]] const LayoutShard& shard_for_key(std::string_view key) const {
        return shard_for_hash(key_hash(key));
    }
    [[nodiscard]] const LayoutShard* find_shard(std::uint32_t id) const;
    /// Exclusive end of `shard`'s range; 0 encodes the ring top (2^64).
    [[nodiscard]] std::uint64_t range_end_of(std::uint32_t id) const;
    /// Smallest id not yet in use (split children get this).
    [[nodiscard]] std::uint32_t next_shard_id() const;
    /// Distinct node addresses, sorted.
    [[nodiscard]] std::vector<std::string> nodes() const;

    // -- mutations (each bumps the epoch) -------------------------------------

    /// What a split changes — the controller drives the data movement
    /// (extract upper half via REMI, start child, cleanup) from this.
    struct SplitPlan {
        std::uint32_t parent = 0;
        std::uint32_t child = 0;
        std::uint64_t mid = 0; ///< child's range_begin
        std::uint64_t end = 0; ///< child's exclusive range end (0 == 2^64)
        std::string parent_node;
        std::string child_node;
    };
    /// Bisect `shard_id`'s range; the upper half becomes a new shard hosted
    /// on `child_node` (parent's node when empty).
    Expected<SplitPlan> split(std::uint32_t shard_id, std::string child_node = {});

    struct MergePlan {
        std::uint32_t survivor = 0; ///< ring predecessor absorbing the range
        std::uint32_t victim = 0;
        std::string survivor_node;
        std::string victim_node;
    };
    /// Remove `shard_id`, its range falling to the ring predecessor (ranges
    /// are adjacent, so only the victim's keys move). The first shard of the
    /// ring has no predecessor and cannot be merged away.
    Expected<MergePlan> merge(std::uint32_t shard_id);

    /// Reassign a shard to another node (migration / recovery).
    Status move_shard(std::uint32_t id, std::string node);

    struct Move {
        std::uint32_t shard = 0;
        std::string from;
        std::string to;
    };
    /// Weighted rendezvous placement of every shard over `nodes`; returns
    /// the moves applied (epoch bumps once if any shard moved).
    std::vector<Move> rebalance_weighted(const std::vector<WeightedNode>& nodes);

    /// HRW winner for one shard over weighted nodes (deterministic).
    [[nodiscard]] static std::string place(std::uint32_t shard_id,
                                           const std::vector<WeightedNode>& nodes);

    // -- serialization --------------------------------------------------------

    template <typename A>
    void serialize(A& ar) {
        ar& m_epoch& m_shards;
    }
    /// Archive-packed blob (what the controller publishes, SSG gossips, and
    /// stale-epoch rejections piggyback).
    [[nodiscard]] std::string pack() const;
    static Expected<Layout> unpack_blob(const std::string& blob);

    /// Structural check: shards sorted, first range at 0, ids unique.
    [[nodiscard]] bool valid() const;

  private:
    std::uint64_t m_epoch = 0;
    std::vector<LayoutShard> m_shards; ///< sorted by range_begin
};

} // namespace mochi::composed
