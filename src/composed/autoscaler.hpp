// PoolAutoscaler: closes the loop the paper's requirements chain implies —
// "performance introspection ... provides the empirical data necessary for
// informed decisions about changes made to the service" (§2.3), and §5's
// online reconfiguration is the actuator. The autoscaler watches one pool's
// queue depth through a Margo monitor (the §4 periodic sampler) and adds or
// removes execution streams serving that pool within configured bounds —
// the process-local analogue of the workflow-level elasticity §8.1 surveys.
#pragma once

#include "margo/instance.hpp"

#include <deque>
#include <thread>
#include <vector>

namespace mochi::composed {

struct AutoscalerConfig {
    std::string pool;                ///< pool whose depth drives decisions
    std::size_t min_xstreams = 1;
    std::size_t max_xstreams = 4;
    double high_watermark = 8.0;     ///< avg queued ULTs that triggers scale-up
    double low_watermark = 0.5;      ///< avg below which an ES is retired
    std::size_t window = 8;          ///< samples averaged per decision
    std::size_t cooldown_samples = 8; ///< samples to wait between decisions
};

class PoolAutoscaler : public margo::Monitor,
                       public std::enable_shared_from_this<PoolAutoscaler> {
  public:
    /// Create and install on `instance` (which must sample periodically —
    /// see the "monitoring.sampling_period_ms" margo config). The pool must
    /// exist; ESs named "<pool>_auto<N>" are managed by the autoscaler.
    static Expected<std::shared_ptr<PoolAutoscaler>> attach(margo::InstancePtr instance,
                                                            AutoscalerConfig config);

    ~PoolAutoscaler() override;

    void on_progress_sample(std::size_t in_flight,
                            const std::map<std::string, std::size_t>& pool_sizes) override;

    /// Quiesce: no new decisions, and any in-flight decision is joined
    /// before the instance tears the ULT runtime down.
    void on_shutdown() override;

    [[nodiscard]] std::size_t scale_ups() const noexcept { return m_scale_ups.load(); }
    [[nodiscard]] std::size_t scale_downs() const noexcept { return m_scale_downs.load(); }
    [[nodiscard]] std::size_t managed_xstreams() const noexcept { return m_managed.load(); }

    /// Stop making decisions (the monitor stays installed but inert).
    void disable() noexcept { m_enabled.store(false); }

  private:
    explicit PoolAutoscaler(margo::InstancePtr instance, AutoscalerConfig config)
    : m_instance(std::move(instance)), m_config(std::move(config)) {}
    void decide(double avg_depth);

    margo::InstancePtr m_instance;
    AutoscalerConfig m_config;
    std::mutex m_mutex;
    std::deque<double> m_samples;
    std::size_t m_cooldown = 0;
    /// Names of the ESs this autoscaler created, in creation order. The
    /// authoritative record: scale-down retires the most recent entry, and
    /// a failed remove_xstream leaves the list (and thus future victim
    /// selection) untouched instead of desynchronizing a counter.
    std::vector<std::string> m_managed_names;
    /// Monotonic suffix for generated ES names — never reused, so a
    /// remove_xstream failure cannot make a later scale-up collide with the
    /// still-live ES of the same name.
    std::size_t m_name_seq = 0;
    std::atomic<std::size_t> m_managed{0};
    std::atomic<std::size_t> m_scale_ups{0};
    std::atomic<std::size_t> m_scale_downs{0};
    std::atomic<bool> m_enabled{true};
    /// Decision-thread tracking (separate from m_mutex: decide() takes
    /// m_mutex, so joining under it would deadlock).
    std::mutex m_thread_mutex;
    std::thread m_decision;
    bool m_shutdown = false;
};

} // namespace mochi::composed
