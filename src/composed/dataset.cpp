#include "composed/dataset.hpp"
#include "bedrock/component.hpp"

namespace mochi::composed {

// ---------------------------------------------------------------------------
// DatasetHandle
// ---------------------------------------------------------------------------

Status DatasetHandle::create(const std::string& name, const std::string& content) const {
    auto r = call<bool>("create", name, content);
    if (!r) return r.error();
    return {};
}

Expected<std::string> DatasetHandle::read(const std::string& name) const {
    auto r = call<std::string>("read", name);
    if (!r) return std::move(r).error();
    return std::get<0>(std::move(*r));
}

Expected<std::vector<std::string>> DatasetHandle::list(const std::string& prefix) const {
    auto r = call<std::vector<std::string>>("list", prefix);
    if (!r) return std::move(r).error();
    return std::get<0>(std::move(*r));
}

Status DatasetHandle::destroy(const std::string& name) const {
    auto r = call<bool>("destroy", name);
    if (!r) return r.error();
    return {};
}

Expected<json::Value> DatasetHandle::run_script(const std::string& name,
                                                const std::string& code) const {
    auto r = call<std::string>("run_script", name, code);
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

// ---------------------------------------------------------------------------
// DatasetProvider
// ---------------------------------------------------------------------------

DatasetProvider::DatasetProvider(margo::InstancePtr instance, std::uint16_t provider_id,
                                 yokan::Database meta, warabi::TargetHandle data,
                                 std::optional<poesie::InterpreterHandle> script,
                                 std::shared_ptr<abt::Pool> pool)
: margo::Provider(std::move(instance), provider_id, "dataset", std::move(pool)),
  m_meta(std::move(meta)), m_data(std::move(data)), m_script(std::move(script)) {
    define("create", [this](const margo::Request& req) {
        std::string name, content;
        if (!req.unpack(name, content)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (auto existing = m_meta.exists(meta_key(name)); existing && *existing) {
            req.respond_error(Error{Error::Code::AlreadyExists, "dataset exists: " + name});
            return;
        }
        auto region = m_data.create(content.size());
        if (!region) {
            req.respond_error(region.error());
            return;
        }
        if (auto st = m_data.write(*region, 0, content); !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        auto meta = json::Value::object();
        meta["region"] = *region;
        meta["size"] = content.size();
        if (auto st = m_meta.put(meta_key(name), meta.dump()); !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        req.respond_values(true);
    });
    define("read", [this](const margo::Request& req) {
        std::string name;
        if (!req.unpack(name)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto meta_str = m_meta.get(meta_key(name));
        if (!meta_str) {
            req.respond_error(meta_str.error());
            return;
        }
        auto meta = json::Value::parse(*meta_str);
        if (!meta) {
            req.respond_error(meta.error());
            return;
        }
        auto content =
            m_data.read(static_cast<std::uint64_t>((*meta)["region"].as_integer()), 0,
                        static_cast<std::uint64_t>((*meta)["size"].as_integer()));
        if (!content) {
            req.respond_error(content.error());
            return;
        }
        req.respond_values(*content);
    });
    define("list", [this](const margo::Request& req) {
        std::string prefix;
        if (!req.unpack(prefix)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto keys = m_meta.list_keys("", "dataset/" + prefix, 0);
        if (!keys) {
            req.respond_error(keys.error());
            return;
        }
        std::vector<std::string> names;
        names.reserve(keys->size());
        for (auto& k : *keys) names.push_back(k.substr(8)); // strip "dataset/"
        req.respond_values(names);
    });
    define("destroy", [this](const margo::Request& req) {
        std::string name;
        if (!req.unpack(name)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto meta_str = m_meta.get(meta_key(name));
        if (!meta_str) {
            req.respond_error(meta_str.error());
            return;
        }
        auto meta = json::Value::parse(*meta_str);
        if (meta)
            (void)m_data.erase(static_cast<std::uint64_t>((*meta)["region"].as_integer()));
        if (auto st = m_meta.erase(meta_key(name)); !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        req.respond_values(true);
    });
    define("run_script", [this](const margo::Request& req) {
        std::string name, code;
        if (!req.unpack(name, code)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!m_script) {
            req.respond_error(Error{Error::Code::InvalidState,
                                    "no poesie dependency configured for this provider"});
            return;
        }
        auto meta_str = m_meta.get(meta_key(name));
        if (!meta_str) {
            req.respond_error(meta_str.error());
            return;
        }
        auto meta = json::Value::parse(*meta_str);
        auto content =
            m_data.read(static_cast<std::uint64_t>((*meta)["region"].as_integer()), 0,
                        static_cast<std::uint64_t>((*meta)["size"].as_integer()));
        if (!content) {
            req.respond_error(content.error());
            return;
        }
        // One throwaway VM per execution: inject $dataset and $name, run.
        std::string vm = "dataset-" + name;
        (void)m_script->create_vm(vm);
        (void)m_script->set_variable(vm, "dataset", json::Value{*content});
        (void)m_script->set_variable(vm, "name", json::Value{name});
        auto result = m_script->execute(vm, code);
        (void)m_script->destroy_vm(vm);
        if (!result) {
            req.respond_error(result.error());
            return;
        }
        req.respond_values(result->dump());
    });
}

json::Value DatasetProvider::get_config() const {
    auto c = json::Value::object();
    c["meta"] = m_meta.address() + ":" + std::to_string(m_meta.provider_id());
    c["data"] = m_data.address() + ":" + std::to_string(m_data.provider_id());
    c["scriptable"] = m_script.has_value();
    return c;
}

// ---------------------------------------------------------------------------
// Bedrock module
// ---------------------------------------------------------------------------

namespace {

class DatasetComponent : public bedrock::ComponentInstance {
  public:
    DatasetComponent(const bedrock::ComponentArgs& args, yokan::Database meta,
                     warabi::TargetHandle data,
                     std::optional<poesie::InterpreterHandle> script)
    : m_provider(args.instance, args.provider_id, std::move(meta), std::move(data),
                 std::move(script), args.pool) {}
    json::Value get_config() const override { return m_provider.get_config(); }

  private:
    DatasetProvider m_provider;
};

/// Resolve a dependency entry into (address, provider_id): local
/// dependencies address this very process.
std::pair<std::string, std::uint16_t> endpoint_of(const bedrock::ComponentArgs& args,
                                                  const bedrock::ResolvedDependency& dep) {
    if (dep.is_local()) return {args.instance->address(), dep.provider_id};
    return {dep.address, dep.provider_id};
}

} // namespace

void register_dataset_module() {
    bedrock::ModuleDefinition module;
    module.type = "dataset";
    module.dependency_specs.push_back({"meta", "yokan", /*required=*/true, false});
    module.dependency_specs.push_back({"data", "warabi", /*required=*/true, false});
    module.dependency_specs.push_back({"script", "poesie", /*required=*/false, false});
    module.factory = [](const bedrock::ComponentArgs& args)
        -> Expected<std::unique_ptr<bedrock::ComponentInstance>> {
        auto [meta_addr, meta_id] = endpoint_of(args, args.dependencies.at("meta").front());
        auto [data_addr, data_id] = endpoint_of(args, args.dependencies.at("data").front());
        yokan::Database meta{args.instance, meta_addr, meta_id};
        warabi::TargetHandle data{args.instance, data_addr, data_id};
        std::optional<poesie::InterpreterHandle> script;
        auto it = args.dependencies.find("script");
        if (it != args.dependencies.end() && !it->second.empty()) {
            auto [addr, id] = endpoint_of(args, it->second.front());
            script.emplace(args.instance, addr, id);
        }
        return std::unique_ptr<bedrock::ComponentInstance>(new DatasetComponent(
            args, std::move(meta), std::move(data), std::move(script)));
    };
    bedrock::ModuleRegistry::provide("libdataset.so", std::move(module));
}

} // namespace mochi::composed
