// Cluster: the simulated elastic resource pool (DESIGN.md substitutions —
// what Flux [6] would provide on a real system). Spawns Bedrock-managed
// service processes ("nodes") on a shared fabric, and can crash or restart
// them for the resilience scenarios of §7.
#pragma once

#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "remi/sim_file_store.hpp"

#include <map>

namespace mochi::composed {

class Cluster {
  public:
    explicit Cluster(mercury::LinkModel link = {}, std::uint64_t seed = 1)
    : m_fabric(mercury::Fabric::create(link, seed)) {}

    /// When enabled, every subsequently spawned node's margo instance runs
    /// in lightweight mode (virtual ESs on the fabric's shared executor,
    /// child timer on the shared timer thread) — the per-node OS thread
    /// count drops to zero, which is what makes 100+ node tests cheap.
    void set_lightweight_nodes(bool enabled) noexcept { m_lightweight = enabled; }

    ~Cluster() { shutdown(); }
    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    [[nodiscard]] const std::shared_ptr<mercury::Fabric>& fabric() const noexcept {
        return m_fabric;
    }

    /// Allocate a node and bootstrap a Bedrock process on it with `config`.
    /// Wipes any leftover node-local storage unless `keep_storage`.
    Expected<std::shared_ptr<bedrock::Process>> spawn_node(const std::string& address,
                                                           const json::Value& config,
                                                           bool keep_storage = false) {
        if (!keep_storage) remi::SimFileStore::destroy_node(address);
        json::Value cfg = config;
        if (m_lightweight) cfg["margo"]["lightweight"] = true;
        auto proc = bedrock::Process::spawn(m_fabric, address, cfg);
        if (!proc) return proc;
        m_nodes[address] = *proc;
        return proc;
    }

    /// Hard-crash a node: the process vanishes from the network without any
    /// goodbye; node-local storage survives (transient failure, §2.3).
    Status crash_node(const std::string& address) {
        auto it = m_nodes.find(address);
        if (it == m_nodes.end())
            return Error{Error::Code::NotFound, "no node at " + address};
        it->second->shutdown();
        m_nodes.erase(it);
        return {};
    }

    /// Crash a node *and* destroy its local storage (permanent failure).
    Status destroy_node(const std::string& address) {
        if (auto st = crash_node(address); !st.ok()) return st;
        remi::SimFileStore::destroy_node(address);
        return {};
    }

    [[nodiscard]] std::shared_ptr<bedrock::Process> node(const std::string& address) const {
        auto it = m_nodes.find(address);
        return it == m_nodes.end() ? nullptr : it->second;
    }

    [[nodiscard]] std::vector<std::string> node_addresses() const {
        std::vector<std::string> out;
        out.reserve(m_nodes.size());
        for (const auto& [a, p] : m_nodes) out.push_back(a);
        return out;
    }

    void shutdown() {
        for (auto& [a, p] : m_nodes) p->shutdown();
        m_nodes.clear();
    }

  private:
    std::shared_ptr<mercury::Fabric> m_fabric;
    std::map<std::string, std::shared_ptr<bedrock::Process>> m_nodes;
    bool m_lightweight = false;
};

} // namespace mochi::composed
