#include "composed/layout.hpp"
#include "mercury/archive.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace mochi::composed {

Layout Layout::initial(std::size_t num_shards, std::vector<std::string> nodes) {
    Layout layout;
    if (num_shards == 0 || nodes.empty()) return layout;
    std::sort(nodes.begin(), nodes.end());
    layout.m_shards.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
        LayoutShard s;
        s.id = static_cast<std::uint32_t>(i);
        // Exact even partition via 128-bit arithmetic: begin_i = i*2^64/N.
        s.range_begin =
            static_cast<std::uint64_t>((static_cast<unsigned __int128>(i) << 64) / num_shards);
        s.node = nodes[i % nodes.size()];
        layout.m_shards.push_back(std::move(s));
    }
    layout.m_epoch = 1;
    return layout;
}

const LayoutShard& Layout::shard_for_hash(std::uint64_t h) const {
    assert(!m_shards.empty());
    // Last shard whose range_begin <= h (shards are sorted and the first
    // starts at 0, so this always exists).
    auto it = std::upper_bound(
        m_shards.begin(), m_shards.end(), h,
        [](std::uint64_t v, const LayoutShard& s) { return v < s.range_begin; });
    return *std::prev(it);
}

const LayoutShard* Layout::find_shard(std::uint32_t id) const {
    for (const auto& s : m_shards)
        if (s.id == id) return &s;
    return nullptr;
}

std::uint64_t Layout::range_end_of(std::uint32_t id) const {
    for (std::size_t i = 0; i < m_shards.size(); ++i) {
        if (m_shards[i].id != id) continue;
        return i + 1 < m_shards.size() ? m_shards[i + 1].range_begin : 0;
    }
    return 0;
}

std::uint32_t Layout::next_shard_id() const {
    std::uint32_t next = 0;
    for (const auto& s : m_shards) next = std::max(next, s.id + 1);
    return next;
}

std::vector<std::string> Layout::nodes() const {
    std::set<std::string> out;
    for (const auto& s : m_shards) out.insert(s.node);
    return {out.begin(), out.end()};
}

Expected<Layout::SplitPlan> Layout::split(std::uint32_t shard_id, std::string child_node) {
    for (std::size_t i = 0; i < m_shards.size(); ++i) {
        if (m_shards[i].id != shard_id) continue;
        std::uint64_t begin = m_shards[i].range_begin;
        std::uint64_t end = i + 1 < m_shards.size() ? m_shards[i + 1].range_begin : 0;
        // Span via 128-bit so the top-wrapping last shard (end == 0 == 2^64)
        // needs no special case.
        auto span = static_cast<unsigned __int128>(end == 0 ? 0 : end) +
                    (end == 0 ? (static_cast<unsigned __int128>(1) << 64) : 0) - begin;
        if (span < 2)
            return Error{Error::Code::InvalidState,
                         "shard " + std::to_string(shard_id) + " range too small to split"};
        SplitPlan plan;
        plan.parent = shard_id;
        plan.child = next_shard_id();
        plan.mid = begin + static_cast<std::uint64_t>(span / 2);
        plan.end = end;
        plan.parent_node = m_shards[i].node;
        plan.child_node = child_node.empty() ? m_shards[i].node : std::move(child_node);
        LayoutShard child;
        child.id = plan.child;
        child.range_begin = plan.mid;
        child.node = plan.child_node;
        m_shards.insert(m_shards.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        std::move(child));
        ++m_epoch;
        return plan;
    }
    return Error{Error::Code::NotFound, "no shard " + std::to_string(shard_id)};
}

Expected<Layout::MergePlan> Layout::merge(std::uint32_t shard_id) {
    for (std::size_t i = 0; i < m_shards.size(); ++i) {
        if (m_shards[i].id != shard_id) continue;
        if (i == 0)
            return Error{Error::Code::InvalidState,
                         "the ring's first shard has no predecessor to merge into"};
        MergePlan plan;
        plan.survivor = m_shards[i - 1].id;
        plan.victim = shard_id;
        plan.survivor_node = m_shards[i - 1].node;
        plan.victim_node = m_shards[i].node;
        m_shards.erase(m_shards.begin() + static_cast<std::ptrdiff_t>(i));
        ++m_epoch;
        return plan;
    }
    return Error{Error::Code::NotFound, "no shard " + std::to_string(shard_id)};
}

Status Layout::move_shard(std::uint32_t id, std::string node) {
    for (auto& s : m_shards) {
        if (s.id != id) continue;
        if (s.node == node) return {};
        s.node = std::move(node);
        ++m_epoch;
        return {};
    }
    return Error{Error::Code::NotFound, "no shard " + std::to_string(id)};
}

std::string Layout::place(std::uint32_t shard_id, const std::vector<WeightedNode>& nodes) {
    // Weighted rendezvous (HRW): node i wins with probability proportional
    // to its weight, and adding/removing a node only reassigns the shards
    // that hash to it — the property pufferscale's weighted updates rely on.
    std::string best;
    double best_score = -1.0;
    char tag[16];
    std::snprintf(tag, sizeof tag, "#%u", shard_id);
    for (const auto& n : nodes) {
        if (n.weight <= 0.0) continue;
        std::uint64_t h = common::fnv1a64(n.address + tag);
        // FNV-1a's trailing bytes (the shard tag) only stir the low bits;
        // finalize with a full-avalanche mix (murmur3 fmix64) so the id
        // actually decides the rendezvous instead of the address alone.
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ULL;
        h ^= h >> 33;
        // Map the hash to (0, 1]; score = -w / ln(u) is the standard
        // weighted-rendezvous transform.
        double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
        double score = -n.weight / std::log(u);
        if (score > best_score || (score == best_score && n.address < best)) {
            best_score = score;
            best = n.address;
        }
    }
    return best;
}

std::vector<Layout::Move> Layout::rebalance_weighted(const std::vector<WeightedNode>& nodes) {
    std::vector<Move> moves;
    if (nodes.empty()) return moves;
    for (auto& s : m_shards) {
        std::string target = place(s.id, nodes);
        if (target.empty() || target == s.node) continue;
        moves.push_back({s.id, s.node, target});
        s.node = std::move(target);
    }
    if (!moves.empty()) ++m_epoch;
    return moves;
}

std::string Layout::pack() const { return mercury::pack(*this); }

Expected<Layout> Layout::unpack_blob(const std::string& blob) {
    Layout layout;
    if (!mercury::unpack(blob, layout) || !layout.valid())
        return Error{Error::Code::Corruption, "malformed layout blob"};
    return layout;
}

bool Layout::valid() const {
    if (m_shards.empty()) return false;
    if (m_shards.front().range_begin != 0) return false;
    std::set<std::uint32_t> ids;
    for (std::size_t i = 0; i < m_shards.size(); ++i) {
        if (!ids.insert(m_shards[i].id).second) return false;
        if (i > 0 && m_shards[i].range_begin <= m_shards[i - 1].range_begin) return false;
    }
    return true;
}

} // namespace mochi::composed
