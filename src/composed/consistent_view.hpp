// ConsistentView: the paper's stated future work, implemented (§6: "In the
// future, however, we plan to build a consistent view by using the RAFT
// protocol [20] to coordinate configuration changes across a set of
// Bedrock-managed processes."). Where SSG gives *eventually* consistent
// membership, this service runs every view change (join/leave/metadata
// update) through a Mochi-RAFT log replicated on a small set of coordinator
// processes: every observer that asks for version v sees exactly the same
// member list, and concurrent changes serialize into one linear history.
#pragma once

#include "raft/raft.hpp"

#include <set>

namespace mochi::composed {

/// A linearizable group view.
struct ConsistentGroupView {
    std::uint64_t version = 0;
    std::vector<std::string> members; ///< sorted

    template <typename A>
    void serialize(A& ar) {
        ar& version& members;
    }
};

/// State machine replicated on the coordinators: applies join/leave commands
/// and answers reads through the log (linearizable reads).
class ViewStateMachine : public raft::StateMachine {
  public:
    static std::string encode_join(const std::string& member);
    static std::string encode_leave(const std::string& member);
    static std::string encode_get();

    std::string apply(const std::string& command) override;
    [[nodiscard]] std::string snapshot() const override;
    Status restore(const std::string& snap) override;

    [[nodiscard]] ConsistentGroupView current() const;

  private:
    mutable std::mutex m_mutex;
    std::set<std::string> m_members;
    std::uint64_t m_version = 0;
};

/// One coordinator process: a margo instance hosting the RAFT provider over
/// a ViewStateMachine.
struct ViewCoordinator {
    margo::InstancePtr instance;
    std::shared_ptr<ViewStateMachine> machine;
    std::shared_ptr<raft::Provider> raft;

    static Expected<ViewCoordinator> create(const std::shared_ptr<mercury::Fabric>& fabric,
                                            const std::string& address,
                                            const std::vector<std::string>& coordinators,
                                            std::uint16_t provider_id,
                                            const raft::RaftConfig& config = {});
    void shutdown();
};

/// Client used by service processes and applications alike: joins/leaves go
/// through consensus; view() is linearizable (served through the log).
class ConsistentViewClient {
  public:
    ConsistentViewClient(margo::InstancePtr instance, std::vector<std::string> coordinators,
                         std::uint16_t provider_id)
    : m_raft(std::move(instance), std::move(coordinators), provider_id) {}

    /// Returns the view version at which the join took effect.
    Expected<std::uint64_t> join(const std::string& member);
    Expected<std::uint64_t> leave(const std::string& member);
    /// Linearizable read of the current view.
    Expected<ConsistentGroupView> view();

  private:
    raft::Client m_raft;
};

} // namespace mochi::composed
