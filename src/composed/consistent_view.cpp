#include "composed/consistent_view.hpp"
#include "mercury/archive.hpp"

namespace mochi::composed {

// Commands: 'J'<member>, 'L'<member>, 'G'. Replies: packed
// (version, members) after the command applied — so join/leave observe the
// exact view version their change produced.

std::string ViewStateMachine::encode_join(const std::string& member) { return "J" + member; }
std::string ViewStateMachine::encode_leave(const std::string& member) { return "L" + member; }
std::string ViewStateMachine::encode_get() { return "G"; }

std::string ViewStateMachine::apply(const std::string& command) {
    std::lock_guard lk{m_mutex};
    if (!command.empty()) {
        switch (command[0]) {
        case 'J': {
            if (m_members.insert(command.substr(1)).second) ++m_version;
            break;
        }
        case 'L': {
            if (m_members.erase(command.substr(1)) > 0) ++m_version;
            break;
        }
        case 'G':
        default: break;
        }
    }
    ConsistentGroupView view;
    view.version = m_version;
    view.members.assign(m_members.begin(), m_members.end());
    return mercury::pack(view);
}

std::string ViewStateMachine::snapshot() const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> members(m_members.begin(), m_members.end());
    return mercury::pack(m_version, members);
}

Status ViewStateMachine::restore(const std::string& snap) {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> members;
    std::uint64_t version = 0;
    if (!mercury::unpack(snap, version, members))
        return Error{Error::Code::Corruption, "corrupt view snapshot"};
    m_version = version;
    m_members = std::set<std::string>(members.begin(), members.end());
    return {};
}

ConsistentGroupView ViewStateMachine::current() const {
    std::lock_guard lk{m_mutex};
    ConsistentGroupView view;
    view.version = m_version;
    view.members.assign(m_members.begin(), m_members.end());
    return view;
}

Expected<ViewCoordinator> ViewCoordinator::create(
    const std::shared_ptr<mercury::Fabric>& fabric, const std::string& address,
    const std::vector<std::string>& coordinators, std::uint16_t provider_id,
    const raft::RaftConfig& config) {
    auto instance = margo::Instance::create(fabric, address);
    if (!instance) return instance.error();
    ViewCoordinator c;
    c.instance = std::move(instance).value();
    c.machine = std::make_shared<ViewStateMachine>();
    c.raft = raft::Provider::create(c.instance, provider_id, coordinators, c.machine, config);
    return c;
}

void ViewCoordinator::shutdown() {
    // Same ordering rule as KvReplica::shutdown: drain Margo before
    // releasing the provider that its handler ULTs reference.
    if (raft) raft->stop();
    if (instance) instance->shutdown();
    raft.reset();
}

namespace {

Expected<ConsistentGroupView> decode_view(const std::string& payload) {
    ConsistentGroupView view;
    if (!mercury::unpack(payload, view))
        return Error{Error::Code::Corruption, "corrupt view reply"};
    return view;
}

} // namespace

Expected<std::uint64_t> ConsistentViewClient::join(const std::string& member) {
    auto r = m_raft.submit(ViewStateMachine::encode_join(member));
    if (!r) return std::move(r).error();
    auto view = decode_view(*r);
    if (!view) return view.error();
    return view->version;
}

Expected<std::uint64_t> ConsistentViewClient::leave(const std::string& member) {
    auto r = m_raft.submit(ViewStateMachine::encode_leave(member));
    if (!r) return std::move(r).error();
    auto view = decode_view(*r);
    if (!view) return view.error();
    return view->version;
}

Expected<ConsistentGroupView> ConsistentViewClient::view() {
    auto r = m_raft.submit(ViewStateMachine::encode_get());
    if (!r) return std::move(r).error();
    return decode_view(*r);
}

} // namespace mochi::composed
