// The dataset component "M" of §3.2: "a Mochi component M managing
// 'datasets' by storing their metadata in a key-value store (managed by the
// Yokan component) and their data in a blob storage target (managed by the
// Warabi component). This component M could be further composed with
// Mochi's embedded language interpreter component (Poesie), to execute
// scripts on datasets".
//
// M demonstrates the composition mechanics end-to-end: its provider
// declares Bedrock dependencies on a Yokan provider, a Warabi provider, and
// (optionally) a Poesie provider — all resolved by Bedrock via resource
// handles, which may point anywhere in the service (§3.2: "composition in
// Mochi is achieved by having providers depend on resource handles pointing
// to other providers").
#pragma once

#include "margo/provider.hpp"
#include "poesie/provider.hpp"
#include "warabi/provider.hpp"
#include "yokan/provider.hpp"

namespace mochi::composed {

/// Client-side handle to a dataset provider.
class DatasetHandle : public margo::ResourceHandle {
  public:
    DatasetHandle(margo::InstancePtr instance, std::string address,
                  std::uint16_t provider_id)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "dataset") {}

    Status create(const std::string& name, const std::string& content) const;
    [[nodiscard]] Expected<std::string> read(const std::string& name) const;
    [[nodiscard]] Expected<std::vector<std::string>> list(const std::string& prefix = "") const;
    Status destroy(const std::string& name) const;
    /// Execute a Jx9 script against the dataset via the provider's Poesie
    /// dependency; the script sees `$dataset` (content) and `$name`.
    [[nodiscard]] Expected<json::Value> run_script(const std::string& name,
                                                   const std::string& code) const;
};

class DatasetProvider : public margo::Provider {
  public:
    /// `meta`/`data` point to the Yokan/Warabi providers backing this
    /// component; `script` optionally points to a Poesie provider.
    DatasetProvider(margo::InstancePtr instance, std::uint16_t provider_id,
                    yokan::Database meta, warabi::TargetHandle data,
                    std::optional<poesie::InterpreterHandle> script = std::nullopt,
                    std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the backing handles are destroyed.
    ~DatasetProvider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

  private:
    [[nodiscard]] std::string meta_key(const std::string& name) const {
        return "dataset/" + name;
    }

    yokan::Database m_meta;
    warabi::TargetHandle m_data;
    std::optional<poesie::InterpreterHandle> m_script;
};

/// Register the dataset Bedrock module under "libdataset.so" (idempotent).
/// Dependencies: "meta" (yokan, required), "data" (warabi, required),
/// "script" (poesie, optional).
void register_dataset_module();

} // namespace mochi::composed
