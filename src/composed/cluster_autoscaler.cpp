#include "composed/cluster_autoscaler.hpp"
#include "bedrock/client.hpp"
#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace mochi::composed {

// ---------------------------------------------------------------------------
// AutoscalePolicy
// ---------------------------------------------------------------------------

namespace {

/// A shard's load: served ops plus epoch-guard rejections (rejected work
/// still hit the provider and still signals client pressure on the range).
double shard_load(const ShardStats& s) { return s.ops + s.stale_rejections; }

} // namespace

bool AutoscalePolicy::streak(std::map<std::string, std::size_t>& streaks,
                             const std::string& key, bool active) {
    if (!active) {
        streaks.erase(key);
        return false;
    }
    return ++streaks[key] >= m_cfg.hysteresis;
}

Action AutoscalePolicy::fire(Action a) {
    // One action per window: restart damping from scratch so the *next*
    // signal has to prove itself against the post-action load distribution,
    // not against streaks accumulated before the topology changed.
    m_cooldown = m_cfg.cooldown;
    m_hot_shards.clear();
    m_cold_shards.clear();
    m_pressure.clear();
    m_cold_nodes.clear();
    return a;
}

Action AutoscalePolicy::decide(const ClusterSnapshot& snap) {
    if (m_cooldown > 0) {
        // Streaks are frozen during cooldown: the periods right after a
        // reconfiguration observe a cluster still settling (migrations,
        // rebalanced routes) and must not count toward the next action.
        --m_cooldown;
        return {};
    }
    if (snap.shards.empty() || snap.nodes.empty()) return {};

    double total = 0;
    for (const auto& s : snap.shards) total += shard_load(s);
    if (total < m_cfg.min_total_ops) {
        // Idle cluster: every shard looks "cold" relative to a near-zero
        // mean, which must not trigger merges. Decay instead of acting.
        m_hot_shards.clear();
        m_cold_shards.clear();
        m_pressure.clear();
        m_cold_nodes.clear();
        return {};
    }
    double node_total = 0;
    for (const auto& n : snap.nodes) node_total += n.ops;
    const double node_mean = node_total / static_cast<double>(snap.nodes.size());

    // A shard is judged against the mean of the *other* shards: an outlier
    // cannot hide inside a mean it dominates (with N shards, load/mean is
    // bounded by N, so a self-inclusive mean would blind the policy to the
    // hottest shard whenever hot_shard_factor >= N).
    auto mean_of_others = [&](const ShardStats& s) {
        if (snap.shards.size() <= 1) return shard_load(s);
        return (total - shard_load(s)) / static_cast<double>(snap.shards.size() - 1);
    };
    auto is_hot = [&](const ShardStats& s) {
        return snap.shards.size() > 1 &&
               shard_load(s) > m_cfg.hot_shard_factor * mean_of_others(s) &&
               shard_load(s) >= m_cfg.min_hot_ops;
    };
    const bool any_hot =
        std::any_of(snap.shards.begin(), snap.shards.end(), is_hot);

    // 1. Split the hottest shard whose load has stayed above the high
    //    watermark for the hysteresis window. The streak tracks the load
    //    signal itself; max_shards only gates the action, so a capped ring
    //    does not fall through to a merge that would worsen the imbalance.
    const ShardStats* hottest = nullptr;
    for (const auto& s : snap.shards) {
        if (streak(m_hot_shards, "shard:" + std::to_string(s.id), is_hot(s)) &&
            snap.shards.size() < m_cfg.max_shards &&
            (hottest == nullptr || shard_load(s) > shard_load(*hottest)))
            hottest = &s;
    }
    if (hottest != nullptr) {
        // Place the child half on the least-loaded *other* node so the
        // split actually sheds load instead of doubling down on the host.
        std::string child;
        double best = 0;
        for (const auto& n : snap.nodes) {
            if (n.address == hottest->node) continue;
            if (child.empty() || n.ops < best) {
                child = n.address;
                best = n.ops;
            }
        }
        return fire({ActionKind::SplitShard, hottest->id, child});
    }

    // 2. Grow the node set while any pool queue stays beyond the depth
    //    watermark (per-node utilization signal, not per-shard).
    bool pressure = std::any_of(snap.nodes.begin(), snap.nodes.end(), [&](const NodeStats& n) {
        return n.pool_depth > m_cfg.node_add_depth || n.shed >= m_cfg.shed_pressure_min;
    });
    if (streak(m_pressure, "node", pressure) &&
        (m_cfg.max_nodes == 0 || snap.nodes.size() < m_cfg.max_nodes))
        return fire({ActionKind::AddNode});

    // 3. Merge the coldest shard (into its ring predecessor) once it has
    //    stayed below the low watermark. Reclamation is suppressed while
    //    any shard runs hot — shrinking a stressed ring only concentrates
    //    the stress — and the wide gap between hot_shard_factor and
    //    cold_shard_factor is the anti-flap dead band: a merge's survivor
    //    cannot immediately re-qualify as hot.
    const ShardStats* coldest = nullptr;
    for (const auto& s : snap.shards) {
        bool cold = !any_hot && snap.shards.size() > m_cfg.min_shards &&
                    shard_load(s) < m_cfg.cold_shard_factor * mean_of_others(s);
        if (streak(m_cold_shards, "shard:" + std::to_string(s.id), cold) &&
            (coldest == nullptr || shard_load(s) < shard_load(*coldest)))
            coldest = &s;
    }
    if (coldest != nullptr) return fire({ActionKind::MergeShard, coldest->id});

    // 4. Release a node whose share of the traffic has stayed negligible
    //    (its shards migrate away first; membership shrinks afterwards).
    //    Same suppression: never shed capacity under hot-shard or queueing
    //    pressure.
    const NodeStats* idle = nullptr;
    for (const auto& n : snap.nodes) {
        bool cold = !any_hot && !pressure && snap.nodes.size() > m_cfg.min_nodes &&
                    n.ops < m_cfg.cold_node_factor * node_mean;
        if (streak(m_cold_nodes, n.address, cold) && (idle == nullptr || n.ops < idle->ops))
            idle = &n;
    }
    if (idle != nullptr) return fire({ActionKind::RemoveNode, 0, idle->address});

    return {};
}

// ---------------------------------------------------------------------------
// ClusterAutoscaler
// ---------------------------------------------------------------------------

ClusterAutoscaler::ClusterAutoscaler(Cluster& cluster, ElasticKvService& service,
                                     ClusterAutoscalerConfig config,
                                     flux::ResourceManager* flux, flux::JobId job)
: m_cluster(cluster), m_service(service), m_config(config), m_flux(flux), m_job(job),
  m_policy(config.policy) {
    static std::atomic<std::uint64_t> g_seq{0};
    auto inst = margo::Instance::create(
        m_cluster.fabric(), "sim://autoscaler" + std::to_string(g_seq.fetch_add(1)));
    assert(inst.has_value());
    m_instance = std::move(inst).value();
}

ClusterAutoscaler::~ClusterAutoscaler() {
    stop();
    if (m_instance) m_instance->shutdown();
}

void ClusterAutoscaler::start() {
    if (m_running.exchange(true)) return;
    m_thread = std::thread([this] { control_loop(); });
}

void ClusterAutoscaler::stop() {
    m_running.store(false);
    if (m_thread.joinable()) m_thread.join();
}

void ClusterAutoscaler::control_loop() {
    while (m_running.load()) {
        (void)step();
        // Sleep in small slices so stop() never waits a full period.
        auto remaining = m_config.period;
        constexpr auto k_slice = std::chrono::milliseconds(5);
        while (m_running.load() && remaining.count() > 0) {
            auto nap = std::min<std::chrono::milliseconds>(k_slice, remaining);
            std::this_thread::sleep_for(nap);
            remaining -= nap;
        }
    }
}

ClusterSnapshot ClusterAutoscaler::scrape() {
    ClusterSnapshot snap;
    const Layout layout = m_service.layout();
    const std::vector<std::string> nodes = m_service.nodes();
    bedrock::Client client{m_instance};

    // Fresh cumulative counter values per node; deltas against m_prev are
    // this period's load. Gauges (pool depth, in-flight) are instantaneous.
    std::map<std::string, std::map<std::string, double>> current;
    for (const auto& address : nodes) {
        auto metrics = client.makeServiceHandle(address).getMetrics();
        if (!metrics) {
            // Unreachable (crashed/leaving) node: the resilience layer owns
            // it; the policy simply doesn't see it this period.
            std::lock_guard lk{m_stats_mutex};
            ++m_stats.failed_scrapes;
            continue;
        }
        NodeStats ns;
        ns.address = address;
        for (const auto& [name, value] : (*metrics)["gauges"].as_object()) {
            if (name.rfind("margo_pool_size_", 0) == 0)
                ns.pool_depth = std::max(ns.pool_depth, value.as_real());
            else if (name == "margo_in_flight_rpcs")
                ns.in_flight = value.as_real();
        }
        auto& cur = current[address];
        for (const auto& [name, value] : (*metrics)["counters"].as_object()) {
            const bool shard_counter = name.rfind("yokan_provider_", 0) == 0;
            // Tenant backpressure: tenant_<id>_shed_total deltas feed the
            // policy's pressure signal (see PolicyConfig::shed_pressure_min).
            const bool shed_counter =
                name.rfind("tenant_", 0) == 0 && name.size() >= 11 &&
                name.compare(name.size() - 11, 11, "_shed_total") == 0;
            if (shard_counter || shed_counter) cur[name] = value.as_real();
        }
        snap.nodes.push_back(std::move(ns));
    }

    auto delta = [&](const std::string& node, const std::string& name) -> double {
        auto nit = current.find(node);
        if (nit == current.end()) return 0;
        auto cit = nit->second.find(name);
        if (cit == nit->second.end()) return 0;
        auto pnode = m_prev.find(node);
        if (pnode == m_prev.end()) return 0; // first sight: lifetime != burst
        auto pit = pnode->second.find(name);
        double prev = pit == pnode->second.end() ? 0 : pit->second;
        return std::max(0.0, cit->second - prev);
    };

    for (auto& ns : snap.nodes) {
        auto nit = current.find(ns.address);
        if (nit == current.end()) continue;
        for (const auto& [name, value] : nit->second) {
            if (name.rfind("tenant_", 0) == 0) ns.shed += delta(ns.address, name);
        }
    }

    for (const auto& shard : layout.shards()) {
        const std::string prefix =
            "yokan_provider_" +
            std::to_string(ElasticKvService::shard_provider_id(shard.id));
        ShardStats ss;
        ss.id = shard.id;
        ss.node = shard.node;
        ss.ops = delta(shard.node, prefix + "_ops_total");
        ss.stale_rejections = delta(shard.node, prefix + "_stale_rejections_total");
        for (auto& ns : snap.nodes) {
            if (ns.address == shard.node) {
                ns.ops += ss.ops;
                ++ns.shards;
                break;
            }
        }
        snap.shards.push_back(std::move(ss));
    }

    for (auto& [node, counters] : current) m_prev[node] = std::move(counters);
    return snap;
}

Status ClusterAutoscaler::apply(const Action& action, const ClusterSnapshot& snapshot) {
    (void)snapshot;
    switch (action.kind) {
    case ActionKind::SplitShard: {
        auto plan = m_service.split_shard(action.shard, action.node);
        if (!plan) return plan.error();
        std::lock_guard lk{m_stats_mutex};
        ++m_stats.splits;
        return {};
    }
    case ActionKind::MergeShard: {
        auto plan = m_service.merge_shards(action.shard);
        if (!plan) return plan.error();
        std::lock_guard lk{m_stats_mutex};
        ++m_stats.merges;
        return {};
    }
    case ActionKind::AddNode: {
        std::string address;
        if (m_flux != nullptr) {
            auto granted = m_flux->grow(m_job, 1, m_config.grow_timeout);
            if (!granted) return granted.error();
            address = granted->front();
        } else {
            address = "sim://auto" + std::to_string(m_auto_names++);
        }
        if (auto st = m_service.scale_up(address); !st.ok()) {
            // Hand an unusable grant straight back so the inventory never
            // leaks nodes the service failed to occupy.
            if (m_flux != nullptr) (void)m_flux->shrink(m_job, {address});
            return st;
        }
        std::lock_guard lk{m_stats_mutex};
        ++m_stats.node_adds;
        return {};
    }
    case ActionKind::RemoveNode: {
        if (auto st = m_service.scale_down(action.node); !st.ok()) return st;
        if (m_flux != nullptr) (void)m_flux->shrink(m_job, {action.node});
        std::lock_guard lk{m_stats_mutex};
        ++m_stats.node_removes;
        return {};
    }
    case ActionKind::None: return {};
    }
    return {};
}

Action ClusterAutoscaler::step() {
    ClusterSnapshot snap = scrape();
    Action action = m_policy.decide(snap);
    {
        std::lock_guard lk{m_stats_mutex};
        ++m_stats.periods;
    }
    if (action.kind != ActionKind::None) {
        if (auto st = apply(action, snap); !st.ok()) {
            log::warn("autoscaler", "action failed: %s", st.error().message.c_str());
            std::lock_guard lk{m_stats_mutex};
            ++m_stats.failed_actions;
        }
    }
    return action;
}

ClusterAutoscaler::Stats ClusterAutoscaler::stats() const {
    std::lock_guard lk{m_stats_mutex};
    return m_stats;
}

} // namespace mochi::composed
