// The elastic (and optionally resilient) sharded key-value service — the
// paper's capstone composition. It assembles:
//   - Yokan shard providers managed by Bedrock on every node (Listing 3),
//   - REMI for shard migration and split/merge data movement (§6 Obs. 4-5),
//   - Pufferscale for rebalancing decisions (§6 Obs. 6, executed through
//     dependency injection),
//   - Margo monitoring as the load signal driving those decisions (§4),
//   - SSG for dynamic membership, SWIM fault detection, and layout
//     dissemination (§6 Obs. 7, §7 Obs. 12),
//   - periodic checkpoints to the simulated PFS plus a top-down controller
//     that re-provisions shards of dead nodes (§7 Obs. 9 + "top-down"
//     design).
//
// Routing plane: instead of a per-op-refreshable shard directory, the
// controller publishes an epoch-numbered consistent-hash **Layout** (see
// layout.hpp) from which every process computes `key -> shard -> node`
// locally. The layout reaches servers by direct push (update_epoch RPC) and
// by SSG payload gossip; detached clients bootstrap it once from the
// controller (or any group member) and afterwards learn of changes only
// through the epoch hints piggybacked on their own data RPCs — steady-state
// traffic does zero directory lookups. Shards split (bisecting their hash
// range, moving ~1/2N of the keys over REMI) and merge (into their ring
// predecessor), which a modulo-hashed directory fundamentally cannot do
// without remapping every key.
#pragma once

#include "composed/cluster.hpp"
#include "composed/layout.hpp"
#include "pufferscale/rebalancer.hpp"
#include "ssg/group.hpp"
#include "yokan/provider.hpp"

#include <set>

namespace mochi::composed {

struct ElasticKvConfig {
    std::size_t num_shards = 16; ///< initial shard count (splits/merges change it)
    std::string backend = "map";
    remi::Method migration_method = remi::Method::Chunks;
    pufferscale::Objectives objectives;
    bool enable_resilience = false; ///< SWIM detection + shard re-provisioning
    bool enable_swim = true;
    std::chrono::milliseconds swim_period{100};
    std::string group_name = "elastic_kv";
    /// Margo instance config applied to every service node (including ones
    /// spawned later by scale_up / the autoscaler): pool/xstream layout,
    /// and the "qos" tenant table — e.g. a prio_wait handler pool plus
    /// per-tenant weights/quotas for multi-tenant deployments.
    json::Value margo;
};

class ElasticKvService {
  public:
    /// Deploy the service over `addresses` (nodes are spawned in `cluster`).
    static Expected<std::unique_ptr<ElasticKvService>>
    create(Cluster& cluster, std::vector<std::string> addresses, ElasticKvConfig config = {});

    ~ElasticKvService();

    // -- client operations (routed through the layout) -------------------------

    Status put(const std::string& key, const std::string& value);
    Expected<std::string> get(const std::string& key);
    Status erase(const std::string& key);

    /// Snapshot of the current layout (what the controller publishes).
    [[nodiscard]] Layout layout() const;
    [[nodiscard]] std::uint64_t epoch() const;
    [[nodiscard]] std::size_t num_shards() const;
    [[nodiscard]] std::vector<std::string> nodes() const;
    [[nodiscard]] std::uint64_t group_digest() const;

    /// Shard id a key routes to (under the current layout).
    [[nodiscard]] std::uint32_t shard_of(const std::string& key) const;

    // -- elasticity (§6) --------------------------------------------------------

    /// Add a node and rebalance shards onto it.
    Status scale_up(const std::string& address);
    /// Drain a node's shards to the others, then release it.
    Status scale_down(const std::string& address);
    /// Rebalance with Pufferscale using live monitoring-derived load.
    Status rebalance();
    /// Weighted-layout rebalance: reassign shards to nodes by weighted
    /// rendezvous hashing (pufferscale-derived weights), migrate the shards
    /// that moved, and publish the new epoch.
    Status rebalance_weighted(const std::vector<WeightedNode>& weights);
    /// Shard load/size snapshot (the Pufferscale input), derived from each
    /// node's Margo monitoring statistics (§4) and Yokan sizes.
    [[nodiscard]] std::vector<pufferscale::Resource> shard_resources() const;

    // -- shard split / merge ----------------------------------------------------

    /// Split a (hot) shard: bisect its hash range, seed a child provider
    /// with the upper half's keys (REMI when the child lands on another
    /// node), flip the layout, then drop the moved keys from the parent.
    /// Only ~1/2N of the service's keys move. Returns the applied plan.
    Expected<Layout::SplitPlan> split_shard(std::uint32_t shard_id,
                                            std::string child_node = {});
    /// Merge a (cold) shard into its ring predecessor: the victim's keys
    /// are staged into the survivor, the layout flips, and the victim
    /// provider is stopped. Returns the applied plan.
    Expected<Layout::MergePlan> merge_shards(std::uint32_t victim_id);

    // -- resilience (§7) ---------------------------------------------------------

    /// Checkpoint every shard to the PFS (also runs before risky steps).
    Status checkpoint_all();
    /// Number of shard re-provisionings performed by the controller.
    [[nodiscard]] std::size_t recoveries() const noexcept { return m_recoveries.load(); }

    static constexpr std::uint16_t k_remi_provider_id = 1;
    static constexpr std::uint16_t k_first_shard_provider_id = 100;

    /// Provider id shard `id` is served under (stable across moves).
    [[nodiscard]] static constexpr std::uint16_t shard_provider_id(std::uint32_t id) noexcept {
        return static_cast<std::uint16_t>(k_first_shard_provider_id + id);
    }

    /// Address of the controller process (serves the layout RPC).
    [[nodiscard]] const std::string& controller_address() const {
        return m_client->address();
    }

  private:
    ElasticKvService(Cluster& cluster, ElasticKvConfig config)
    : m_cluster(cluster), m_config(std::move(config)) {}

    Status spawn_service_node(const std::string& address);
    [[nodiscard]] json::Value node_bootstrap_config() const;
    [[nodiscard]] json::Value shard_descriptor(std::uint32_t shard) const;
    Status migrate_shard(std::uint32_t shard, const std::string& dest);
    void on_member_died(const std::string& address);
    Status recover_shards_of(const std::string& address);
    /// Push the current layout everywhere: update_epoch RPC to every shard
    /// provider, payload publish into the SSG group, so both guarded
    /// servers and gossip listeners see the new epoch.
    void publish_layout();
    /// Client handle to shard `id` under the current layout.
    [[nodiscard]] yokan::Database shard_db(const LayoutShard& shard) const {
        return yokan::Database{m_client, shard.node, shard_provider_id(shard.id)};
    }
    [[nodiscard]] std::string shard_name(std::uint32_t shard) const {
        return "shard" + std::to_string(shard);
    }
    [[nodiscard]] std::string shard_root(std::uint32_t shard) const {
        return "/yokan/" + shard_name(shard) + "/";
    }
    [[nodiscard]] std::string checkpoint_path(std::uint32_t shard) const {
        return "/ckpt/" + m_config.group_name + "/" + shard_name(shard);
    }

    Cluster& m_cluster;
    ElasticKvConfig m_config;
    margo::InstancePtr m_client; ///< the controller/client margo instance

    mutable std::mutex m_mutex;
    Layout m_layout;
    std::set<std::string> m_nodes;
    std::map<std::string, std::shared_ptr<ssg::Group>> m_groups; ///< per node
    std::atomic<std::size_t> m_recoveries{0};
    std::atomic<bool> m_stopping{false};
};

/// A detached application client. It bootstraps the layout once (from the
/// controller, or from any SSG member via refresh_from_member) and from then
/// on routes every operation locally: key -> shard -> node is computed from
/// the cached layout, and the layout epoch rides on every data RPC. When the
/// layout moved on, the server rejects the stale request with a retryable
/// error carrying the new epoch — and usually the new layout itself — so the
/// client repairs its cache *from the rejection* and retries, without ever
/// asking a directory. Steady-state traffic therefore performs zero
/// layout/directory RPCs.
class ElasticKvClient {
  public:
    /// `instance` is the application's own margo runtime; `controller` the
    /// address returned by ElasticKvService::controller_address().
    ElasticKvClient(margo::InstancePtr instance, std::string controller);

    Status put(const std::string& key, const std::string& value);
    Expected<std::string> get(const std::string& key);
    Status erase(const std::string& key);

    /// Batched writes: pairs are grouped by shard and each group leaves as
    /// one put_multi RPC, all shards in flight concurrently (async
    /// forwards). On a stale layout only the *failed* shard groups are
    /// regrouped under the repaired layout and re-sent (put_multi is
    /// idempotent); groups that succeeded are not re-sent.
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs);
    /// Batched reads, same shard-grouped fan-out with per-group retry;
    /// results align with `keys` (nullopt for missing keys).
    Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys);

    /// Explicitly refresh the cached layout from the controller.
    Status refresh();
    /// Refresh from any SSG group member instead of the controller (the
    /// dissemination path detached clients use when the controller is
    /// unreachable).
    Status refresh_from_member(const std::string& member_address,
                               const std::string& group_name = "elastic_kv");

    /// Epoch of the cached layout.
    [[nodiscard]] std::uint64_t cached_version() const noexcept {
        return m_layout.epoch();
    }
    [[nodiscard]] const Layout& cached_layout() const noexcept { return m_layout; }
    /// Explicit layout fetches performed (bootstrap + fallback refreshes).
    [[nodiscard]] std::size_t refreshes() const noexcept { return m_refreshes; }
    /// Operations retried after a piggybacked stale-epoch rejection.
    [[nodiscard]] std::size_t stale_retries() const noexcept { return m_stale_retries; }

  private:
    template <typename Op>
    auto with_routing(const std::string& key, Op op)
        -> decltype(op(std::declval<yokan::Database&>()));

    /// Adopt a layout blob if its epoch is newer than the cache.
    bool adopt(std::uint64_t epoch, const std::string& blob);
    /// Handle a stale-epoch rejection: repair the cache from the piggybacked
    /// layout when present, refresh explicitly otherwise. True if the cache
    /// advanced (retry is worthwhile).
    bool handle_stale(const Error& err);
    Status ensure_layout();
    [[nodiscard]] yokan::Database shard_db(const LayoutShard& shard) const {
        return yokan::Database{m_instance, shard.node,
                               ElasticKvService::shard_provider_id(shard.id),
                               m_epoch_context};
    }

    margo::InstancePtr m_instance;
    std::string m_controller;
    Layout m_layout;
    std::shared_ptr<yokan::EpochContext> m_epoch_context;
    std::size_t m_refreshes = 0;
    std::size_t m_stale_retries = 0;
};

} // namespace mochi::composed
