// The elastic (and optionally resilient) sharded key-value service — the
// paper's capstone composition. It assembles:
//   - Yokan shard providers managed by Bedrock on every node (Listing 3),
//   - REMI for shard migration (§6 Obs. 4-5, through Bedrock's managed
//     migrate_provider),
//   - Pufferscale for rebalancing decisions (§6 Obs. 6, executed through
//     dependency injection),
//   - Margo monitoring as the load signal driving those decisions (§4),
//   - SSG for dynamic membership and SWIM fault detection (§6 Obs. 7,
//     §7 Obs. 12),
//   - periodic checkpoints to the simulated PFS plus a top-down controller
//     that re-provisions shards of dead nodes (§7 Obs. 9 + "top-down"
//     design).
//
// The service object acts as the controller, the role Colza gives to the
// application (§6). Clients route by shard hash using a versioned directory
// (the Colza-style "view digest" protocol: a stale client notices its
// directory version no longer matches and refreshes).
#pragma once

#include "composed/cluster.hpp"
#include "pufferscale/rebalancer.hpp"
#include "ssg/group.hpp"
#include "yokan/provider.hpp"

#include <set>

namespace mochi::composed {

struct ElasticKvConfig {
    std::size_t num_shards = 16;
    std::string backend = "map";
    remi::Method migration_method = remi::Method::Chunks;
    pufferscale::Objectives objectives;
    bool enable_resilience = false; ///< SWIM detection + shard re-provisioning
    bool enable_swim = true;
    std::chrono::milliseconds swim_period{100};
    std::string group_name = "elastic_kv";
};

/// Versioned shard directory handed to clients.
struct Directory {
    std::uint64_t version = 0;
    std::vector<std::string> shard_to_node; ///< indexed by shard id
};

class ElasticKvService {
  public:
    /// Deploy the service over `addresses` (nodes are spawned in `cluster`).
    static Expected<std::unique_ptr<ElasticKvService>>
    create(Cluster& cluster, std::vector<std::string> addresses, ElasticKvConfig config = {});

    ~ElasticKvService();

    // -- client operations (routed by shard hash) ------------------------------

    Status put(const std::string& key, const std::string& value);
    Expected<std::string> get(const std::string& key);
    Status erase(const std::string& key);

    [[nodiscard]] Directory directory() const;
    [[nodiscard]] std::size_t num_shards() const noexcept { return m_config.num_shards; }
    [[nodiscard]] std::vector<std::string> nodes() const;
    [[nodiscard]] std::uint64_t group_digest() const;

    /// Shard id a key routes to.
    [[nodiscard]] std::uint32_t shard_of(const std::string& key) const;

    // -- elasticity (§6) --------------------------------------------------------

    /// Add a node and rebalance shards onto it.
    Status scale_up(const std::string& address);
    /// Drain a node's shards to the others, then release it.
    Status scale_down(const std::string& address);
    /// Rebalance with Pufferscale using live monitoring-derived load.
    Status rebalance();
    /// Shard load/size snapshot (the Pufferscale input), derived from each
    /// node's Margo monitoring statistics (§4) and Yokan sizes.
    [[nodiscard]] std::vector<pufferscale::Resource> shard_resources() const;

    // -- resilience (§7) ---------------------------------------------------------

    /// Checkpoint every shard to the PFS (also runs before risky steps).
    Status checkpoint_all();
    /// Number of shard re-provisionings performed by the controller.
    [[nodiscard]] std::size_t recoveries() const noexcept { return m_recoveries.load(); }

    static constexpr std::uint16_t k_remi_provider_id = 1;
    static constexpr std::uint16_t k_first_shard_provider_id = 100;

    /// Address of the controller process (serves the directory RPC).
    [[nodiscard]] const std::string& controller_address() const {
        return m_client->address();
    }

  private:
    ElasticKvService(Cluster& cluster, ElasticKvConfig config)
    : m_cluster(cluster), m_config(std::move(config)) {}

    Status spawn_service_node(const std::string& address);
    [[nodiscard]] static json::Value node_bootstrap_config();
    [[nodiscard]] json::Value shard_descriptor(std::size_t shard) const;
    Status migrate_shard(std::size_t shard, const std::string& dest);
    void on_member_died(const std::string& address);
    Status recover_shards_of(const std::string& address);
    [[nodiscard]] std::string shard_name(std::size_t shard) const {
        return "shard" + std::to_string(shard);
    }
    [[nodiscard]] std::string checkpoint_path(std::size_t shard) const {
        return "/ckpt/" + m_config.group_name + "/" + shard_name(shard);
    }

    Cluster& m_cluster;
    ElasticKvConfig m_config;
    margo::InstancePtr m_client; ///< the controller/client margo instance

    mutable std::mutex m_mutex;
    std::vector<std::string> m_shard_to_node;
    std::uint64_t m_directory_version = 1;
    std::set<std::string> m_nodes;
    std::map<std::string, std::shared_ptr<ssg::Group>> m_groups; ///< per node
    std::atomic<std::size_t> m_recoveries{0};
    std::atomic<bool> m_stopping{false};
};

/// A detached application client implementing the Colza-style protocol of
/// §6: it routes with a *cached* directory and only refreshes it from the
/// controller when an operation lands on a node that no longer (or does not
/// yet) host the shard — the "mismatch ... informs the [client] that [its]
/// view of the group is outdated" pattern, with the explicit query function
/// as the refresh mechanism.
class ElasticKvClient {
  public:
    /// `instance` is the application's own margo runtime; `controller` the
    /// address returned by ElasticKvService::controller_address().
    ElasticKvClient(margo::InstancePtr instance, std::string controller);

    Status put(const std::string& key, const std::string& value);
    Expected<std::string> get(const std::string& key);
    Status erase(const std::string& key);

    /// Batched writes: pairs are grouped by shard and each group leaves as
    /// one put_multi RPC, all shards in flight concurrently (async
    /// forwards). On a stale directory the client refreshes once and
    /// retries the whole batch (put_multi is idempotent).
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs);
    /// Batched reads, same shard-grouped fan-out; results align with `keys`
    /// (nullopt for missing keys).
    Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys);

    /// Explicitly refresh the cached directory from the controller.
    Status refresh();
    [[nodiscard]] std::uint64_t cached_version() const noexcept {
        return m_directory.version;
    }
    [[nodiscard]] std::size_t refreshes() const noexcept { return m_refreshes; }

  private:
    template <typename Op>
    auto with_routing(const std::string& key, Op op)
        -> decltype(op(std::declval<yokan::Database&>()));

    margo::InstancePtr m_instance;
    std::string m_controller;
    Directory m_directory;
    std::size_t m_refreshes = 0;
};

} // namespace mochi::composed
