#include "composed/elastic_kv.hpp"
#include "common/logging.hpp"

#include <numeric>
#include <thread>

namespace mochi::composed {

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

json::Value ElasticKvService::node_bootstrap_config() const {
    // Listing-3-style bootstrap: every node gets the component libraries and
    // a REMI provider; shard providers are started dynamically.
    auto cfg = json::Value::object();
    // Deployment-wide margo config (QoS tenant table, prio pools) applies to
    // every node, so late joiners enforce the same tenancy policy as the
    // seed set.
    if (m_config.margo.is_object()) cfg["margo"] = m_config.margo;
    cfg["libraries"]["yokan"] = "libyokan.so";
    cfg["libraries"]["remi"] = "libremi.so";
    auto remi_desc = json::Value::object();
    remi_desc["name"] = "remi";
    remi_desc["type"] = "remi";
    remi_desc["provider_id"] = static_cast<std::int64_t>(k_remi_provider_id);
    cfg["providers"].push_back(std::move(remi_desc));
    return cfg;
}

json::Value ElasticKvService::shard_descriptor(std::uint32_t shard) const {
    auto desc = json::Value::object();
    desc["name"] = shard_name(shard);
    desc["type"] = "yokan";
    desc["provider_id"] = static_cast<std::int64_t>(shard_provider_id(shard));
    desc["config"]["name"] = shard_name(shard);
    desc["config"]["backend"] = m_config.backend;
    desc["dependencies"]["remi"] = "remi";
    return desc;
}

Expected<std::unique_ptr<ElasticKvService>>
ElasticKvService::create(Cluster& cluster, std::vector<std::string> addresses,
                         ElasticKvConfig config) {
    if (addresses.empty())
        return Error{Error::Code::InvalidArgument, "service needs at least one node"};
    yokan::register_module();
    remi::register_module();
    auto service =
        std::unique_ptr<ElasticKvService>(new ElasticKvService(cluster, std::move(config)));
    auto client = margo::Instance::create(
        cluster.fabric(), "sim://" + service->m_config.group_name + "-controller");
    if (!client) return client.error();
    service->m_client = std::move(client).value();

    for (const auto& addr : addresses) {
        if (auto st = service->spawn_service_node(addr); !st.ok()) return st.error();
    }
    // Initial layout: even ring partition, shards round-robin over nodes.
    Layout layout = Layout::initial(service->m_config.num_shards, addresses);
    for (const auto& shard : layout.shards()) {
        auto node = cluster.node(shard.node);
        if (auto st = node->start_provider(service->shard_descriptor(shard.id)); !st.ok())
            return st.error();
    }
    {
        std::lock_guard lk{service->m_mutex};
        service->m_layout = std::move(layout);
    }
    // Serve the layout to detached clients: the one explicit fetch they do
    // (bootstrap); everything after rides on piggybacked epoch hints.
    ElasticKvService* raw = service.get();
    (void)service->m_client->register_rpc(
        "elastic_kv/layout", margo::k_default_provider_id, [raw](const margo::Request& req) {
            auto layout = raw->layout();
            req.respond_values(layout.epoch(), layout.pack());
        });
    service->publish_layout();
    return service;
}

Status ElasticKvService::spawn_service_node(const std::string& address) {
    auto proc = m_cluster.spawn_node(address, node_bootstrap_config());
    if (!proc) return proc.error();
    {
        std::lock_guard lk{m_mutex};
        m_nodes.insert(address);
    }
    // Membership: bootstrap or join the SSG group on the node's runtime.
    ssg::GroupConfig gcfg;
    gcfg.enable_swim = m_config.enable_swim;
    gcfg.swim_period = m_config.swim_period;
    std::shared_ptr<ssg::Group> group;
    std::string seed;
    {
        std::lock_guard lk{m_mutex};
        for (const auto& [a, g] : m_groups) {
            seed = a;
            break;
        }
    }
    auto instance = (*proc)->margo_instance();
    if (seed.empty()) {
        auto g = ssg::Group::create(instance, m_config.group_name, {address}, gcfg);
        if (!g) return g.error();
        group = std::move(g).value();
    } else {
        auto g = ssg::Group::join(instance, m_config.group_name, seed, gcfg);
        if (!g) return g.error();
        group = std::move(g).value();
    }
    // Gossip-delivered layouts flow into the node's local shard providers
    // (supplements the controller's direct update_epoch push, and covers
    // providers the push raced with).
    group->on_payload([instance](std::uint64_t version, const std::string& blob) {
        yokan::apply_epoch_update(instance, version, blob);
    });
    if (m_config.enable_resilience) {
        group->on_membership_change([this](const std::string& addr,
                                           ssg::MembershipEvent ev) {
            if (ev == ssg::MembershipEvent::Died && !m_stopping.load()) on_member_died(addr);
        });
    }
    std::lock_guard lk{m_mutex};
    m_groups[address] = std::move(group);
    return {};
}

ElasticKvService::~ElasticKvService() {
    m_stopping.store(true);
    (void)m_client->deregister_rpc("elastic_kv/layout", margo::k_default_provider_id);
    {
        std::lock_guard lk{m_mutex};
        for (auto& [a, g] : m_groups) g->leave();
        m_groups.clear();
    }
    if (m_client) m_client->shutdown();
}

void ElasticKvService::publish_layout() {
    Layout layout;
    std::shared_ptr<ssg::Group> group;
    {
        std::lock_guard lk{m_mutex};
        layout = m_layout;
        if (!m_groups.empty()) group = m_groups.begin()->second;
    }
    if (layout.empty()) return;
    const std::string blob = layout.pack();
    // Direct push to every shard provider: after this returns, stale-epoch
    // requests are rejected service-wide (best effort per provider — a
    // missed one catches up via gossip or a guarded client's next request).
    for (const auto& shard : layout.shards())
        (void)shard_db(shard).update_epoch(layout.epoch(), blob);
    // One member publishes; SWIM piggybacks the version and the rest of the
    // group pulls the blob (anti-entropy).
    if (group) group->publish_payload(layout.epoch(), blob);
}

// ---------------------------------------------------------------------------
// Client operations
// ---------------------------------------------------------------------------

std::uint32_t ElasticKvService::shard_of(const std::string& key) const {
    std::lock_guard lk{m_mutex};
    return m_layout.shard_for_key(key).id;
}

Layout ElasticKvService::layout() const {
    std::lock_guard lk{m_mutex};
    return m_layout;
}

std::uint64_t ElasticKvService::epoch() const {
    std::lock_guard lk{m_mutex};
    return m_layout.epoch();
}

std::size_t ElasticKvService::num_shards() const {
    std::lock_guard lk{m_mutex};
    return m_layout.num_shards();
}

std::vector<std::string> ElasticKvService::nodes() const {
    std::lock_guard lk{m_mutex};
    return {m_nodes.begin(), m_nodes.end()};
}

std::uint64_t ElasticKvService::group_digest() const {
    std::lock_guard lk{m_mutex};
    if (m_groups.empty()) return 0;
    return m_groups.begin()->second->view_digest();
}

Status ElasticKvService::put(const std::string& key, const std::string& value) {
    LayoutShard shard;
    {
        std::lock_guard lk{m_mutex};
        shard = m_layout.shard_for_key(key);
    }
    return shard_db(shard).put(key, value);
}

Expected<std::string> ElasticKvService::get(const std::string& key) {
    LayoutShard shard;
    {
        std::lock_guard lk{m_mutex};
        shard = m_layout.shard_for_key(key);
    }
    return shard_db(shard).get(key);
}

Status ElasticKvService::erase(const std::string& key) {
    LayoutShard shard;
    {
        std::lock_guard lk{m_mutex};
        shard = m_layout.shard_for_key(key);
    }
    return shard_db(shard).erase(key);
}

// ---------------------------------------------------------------------------
// Elasticity
// ---------------------------------------------------------------------------

std::vector<pufferscale::Resource> ElasticKvService::shard_resources() const {
    // Load signal: per-provider handler activity from each node's Margo
    // monitoring (§4 — "using the performance introspection tools presented
    // in Section 4 to guide load rebalancing"); size from a live count query.
    std::vector<pufferscale::Resource> resources;
    Layout layout = this->layout();
    for (const auto& shard : layout.shards()) {
        pufferscale::Resource r;
        r.id = shard_name(shard.id);
        r.node = shard.node;
        auto proc = m_cluster.node(r.node);
        if (!proc) continue;
        auto stats = proc->margo_instance()->monitoring_json();
        double load = 0;
        std::uint16_t pid = shard_provider_id(shard.id);
        for (const auto& [key, rpc] : stats["rpcs"].as_object()) {
            if (rpc["provider_id"].as_integer() != pid) continue;
            for (const auto& [peer, t] : rpc["target"].as_object())
                load += static_cast<double>(t["ult"]["duration"]["num"].as_integer());
        }
        r.load = load;
        yokan::Database db = shard_db(shard);
        if (auto c = db.count()) r.size = static_cast<double>(*c);
        resources.push_back(std::move(r));
    }
    return resources;
}

Status ElasticKvService::migrate_shard(std::uint32_t shard, const std::string& dest) {
    LayoutShard source;
    Layout staged;
    {
        std::lock_guard lk{m_mutex};
        const auto* s = m_layout.find_shard(shard);
        if (!s) return Error{Error::Code::NotFound, "no shard " + std::to_string(shard)};
        source = *s;
        staged = m_layout;
    }
    if (source.node == dest) return {};
    if (auto st = staged.move_shard(shard, dest); !st.ok()) return st;
    // 1. Freeze the source *before* the checkpoint: push the staged epoch
    //    (with the staged layout as the repair hint) so no guarded write can
    //    land after the snapshot and silently miss the transfer. Writers
    //    adopt the hinted layout and retry against `dest`, backing off until
    //    the restore below brings the provider up there.
    if (auto st = shard_db(source).update_epoch(staged.epoch(), staged.pack()); !st.ok())
        return st;
    // 2. Checkpoint-and-restore the frozen provider onto `dest` (Bedrock's
    //    managed migration over REMI).
    bedrock::Client bc{m_client};
    auto handle = bc.makeServiceHandle(source.node);
    auto options = json::Value::object();
    options["method"] = m_config.migration_method == remi::Method::Rdma ? "rdma" : "chunks";
    if (auto st = handle.migrateProvider(shard_name(shard), dest, options); !st.ok())
        return st;
    // 3. Flip: commit the staged layout and publish the new epoch.
    {
        std::lock_guard lk{m_mutex};
        if (auto st = m_layout.move_shard(shard, dest); !st.ok()) return st;
    }
    publish_layout();
    return {};
}

Status ElasticKvService::rebalance() {
    auto resources = shard_resources();
    auto plan = pufferscale::plan_rescale(resources, nodes(), m_config.objectives);
    if (!plan) return plan.error();
    // Pufferscale executes through dependency injection: the injected
    // function is Bedrock's managed provider migration (which also flips the
    // layout entry and publishes the new epoch).
    return pufferscale::execute(*plan, [this](const pufferscale::Move& move) -> Status {
        auto shard = static_cast<std::uint32_t>(std::stoul(move.resource.substr(5)));
        return migrate_shard(shard, move.to);
    });
}

Status ElasticKvService::rebalance_weighted(const std::vector<WeightedNode>& weights) {
    // Plan on a scratch copy (rendezvous placement over the weighted nodes);
    // each executed migration flips the live layout and publishes.
    Layout staged = layout();
    auto moves = staged.rebalance_weighted(weights);
    for (const auto& move : moves) {
        if (auto st = migrate_shard(move.shard, move.to); !st.ok()) return st;
    }
    return {};
}

Status ElasticKvService::scale_up(const std::string& address) {
    if (auto st = spawn_service_node(address); !st.ok()) return st;
    return rebalance();
}

Status ElasticKvService::scale_down(const std::string& address) {
    {
        std::lock_guard lk{m_mutex};
        if (!m_nodes.count(address))
            return Error{Error::Code::NotFound, "no service node at " + address};
        if (m_nodes.size() == 1)
            return Error{Error::Code::InvalidState, "cannot remove the last node"};
        m_nodes.erase(address);
    }
    // §6 Obs. 4: "removing nodes first requires their data to be sent to
    // remaining nodes" — plan a rescale excluding the leaving node.
    auto resources = shard_resources();
    auto plan = pufferscale::plan_rescale(resources, nodes(), m_config.objectives);
    if (!plan) return plan.error();
    if (auto st = pufferscale::execute(*plan, [this](const pufferscale::Move& move) {
            auto shard = static_cast<std::uint32_t>(std::stoul(move.resource.substr(5)));
            return migrate_shard(shard, move.to);
        });
        !st.ok())
        return st;
    // Leave the group gracefully and release the node.
    std::shared_ptr<ssg::Group> group;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_groups.find(address);
        if (it != m_groups.end()) {
            group = it->second;
            m_groups.erase(it);
        }
    }
    if (group) group->leave();
    return m_cluster.crash_node(address);
}

// ---------------------------------------------------------------------------
// Shard split / merge
// ---------------------------------------------------------------------------

Expected<Layout::SplitPlan> ElasticKvService::split_shard(std::uint32_t shard_id,
                                                          std::string child_node) {
    Layout staged = layout();
    auto plan = staged.split(shard_id, std::move(child_node));
    if (!plan) return plan.error();
    yokan::Database parent{m_client, plan->parent_node, shard_provider_id(plan->parent)};
    const std::string method =
        m_config.migration_method == remi::Method::Rdma ? "rdma" : "chunks";
    // 1. Start the (empty) child provider so post-flip traffic has a target.
    auto node = m_cluster.node(plan->child_node);
    if (!node)
        return Error{Error::Code::NotFound, "no service node at " + plan->child_node};
    if (auto st = node->start_provider(shard_descriptor(plan->child)); !st.ok())
        return st.error();
    // 2. Flip: commit the staged layout and publish the new epoch. Guarded
    //    writes for the upper half now land on the child, and the parent's
    //    epoch guard rejects stale writers — the parent's copy of the upper
    //    half is frozen from here on.
    {
        std::lock_guard lk{m_mutex};
        m_layout = staged;
    }
    publish_layout();
    // 3. Copy the frozen upper half into the child (REMI ships the files
    //    when the child landed on another node). absorb() is put-if-absent:
    //    any key the child already holds was written *after* the flip and is
    //    newer than the parent's frozen copy, so the copy can never clobber
    //    a post-flip update. Reads of not-yet-copied keys transiently miss;
    //    acknowledged writes are never lost.
    auto seeded = parent.extract_range(plan->mid, plan->end, shard_root(plan->child), "seed",
                                       plan->child_node, method, k_remi_provider_id);
    if (!seeded) return seeded.error();
    yokan::Database child{m_client, plan->child_node, shard_provider_id(plan->child)};
    if (auto a = child.absorb("seed"); !a) return a.error();
    // 4. Drop the moved range from the parent.
    auto erased = parent.erase_range(plan->mid, plan->end);
    if (!erased) return erased.error();
    log::info("elastic_kv", "split shard%u -> shard%u on %s (%llu keys moved)",
              plan->parent, plan->child, plan->child_node.c_str(),
              static_cast<unsigned long long>(*seeded));
    return *plan;
}

Expected<Layout::MergePlan> ElasticKvService::merge_shards(std::uint32_t victim_id) {
    Layout staged = layout();
    const auto* victim_shard = staged.find_shard(victim_id);
    if (!victim_shard)
        return Error{Error::Code::NotFound, "no shard " + std::to_string(victim_id)};
    const std::uint64_t vbegin = victim_shard->range_begin;
    const std::uint64_t vend = staged.range_end_of(victim_id);
    auto plan = staged.merge(victim_id);
    if (!plan) return plan.error();
    yokan::Database victim{m_client, plan->victim_node, shard_provider_id(plan->victim)};
    yokan::Database survivor{m_client, plan->survivor_node,
                             shard_provider_id(plan->survivor)};
    const std::string method =
        m_config.migration_method == remi::Method::Rdma ? "rdma" : "chunks";
    const std::uint64_t new_epoch = staged.epoch();
    const std::string blob = staged.pack();
    // 1. Flip: the victim's range now belongs to the survivor. The victim
    //    left the layout, so publish_layout() cannot reach it — push the new
    //    epoch to it directly; from then on its guard rejects every stale
    //    writer and its data is frozen.
    {
        std::lock_guard lk{m_mutex};
        m_layout = staged;
    }
    publish_layout();
    if (auto st = victim.update_epoch(new_epoch, blob); !st.ok()) return st.error();
    // 2. Move the frozen range under the survivor's root and load it;
    //    put-if-absent, as in split_shard: the survivor's own post-flip
    //    writes win over the victim's frozen copies.
    auto moved = victim.extract_range(vbegin, vend, shard_root(plan->survivor), "xfer",
                                      plan->survivor_node, method, k_remi_provider_id);
    if (!moved) return moved.error();
    if (auto a = survivor.absorb("xfer"); !a) return a.error();
    // 3. Retire the victim.
    auto node = m_cluster.node(plan->victim_node);
    if (node) (void)node->stop_provider(shard_name(plan->victim));
    log::info("elastic_kv", "merged shard%u into shard%u (%llu keys moved)", plan->victim,
              plan->survivor, static_cast<unsigned long long>(*moved));
    return *plan;
}

// ---------------------------------------------------------------------------
// Resilience (§7)
// ---------------------------------------------------------------------------

Status ElasticKvService::checkpoint_all() {
    Layout layout = this->layout();
    bedrock::Client bc{m_client};
    for (const auto& shard : layout.shards()) {
        auto handle = bc.makeServiceHandle(shard.node);
        if (auto st = handle.checkpointProvider(shard_name(shard.id),
                                                checkpoint_path(shard.id));
            !st.ok())
            return st;
    }
    return {};
}

void ElasticKvService::on_member_died(const std::string& address) {
    log::info("elastic_kv", "controller: node %s died, re-provisioning its shards",
              address.c_str());
    (void)recover_shards_of(address);
}

Status ElasticKvService::recover_shards_of(const std::string& address) {
    // Top-down recovery (§7): the controller has the global view; it
    // restarts every shard the dead node hosted on surviving nodes, restored
    // from the latest PFS checkpoint.
    std::vector<std::uint32_t> lost;
    std::vector<std::string> survivors;
    {
        std::lock_guard lk{m_mutex};
        if (!m_nodes.erase(address)) return {}; // already handled
        m_groups.erase(address);
        for (const auto& shard : m_layout.shards())
            if (shard.node == address) lost.push_back(shard.id);
        survivors.assign(m_nodes.begin(), m_nodes.end());
    }
    if (survivors.empty())
        return Error{Error::Code::InvalidState, "no surviving node to recover onto"};
    bedrock::Client bc{m_client};
    std::size_t next = 0;
    for (std::uint32_t s : lost) {
        const std::string& target = survivors[next++ % survivors.size()];
        auto handle = bc.makeServiceHandle(target);
        if (auto st = handle.startProvider(shard_descriptor(s)); !st.ok()) return st;
        // Restore from the checkpoint if one exists (otherwise the shard
        // restarts empty — data since the last checkpoint is lost, which §7
        // Obs. 9 deems acceptable for this failure model).
        if (remi::SimFileStore::pfs()->exists(checkpoint_path(s)))
            (void)handle.restoreProvider(shard_name(s), checkpoint_path(s));
        {
            std::lock_guard lk{m_mutex};
            (void)m_layout.move_shard(s, target);
        }
        m_recoveries.fetch_add(1);
    }
    publish_layout();
    return {};
}

// ---------------------------------------------------------------------------
// ElasticKvClient (layout cache + piggybacked epoch invalidation)
// ---------------------------------------------------------------------------

ElasticKvClient::ElasticKvClient(margo::InstancePtr instance, std::string controller)
: m_instance(std::move(instance)), m_controller(std::move(controller)),
  m_epoch_context(std::make_shared<yokan::EpochContext>()) {}

bool ElasticKvClient::adopt(std::uint64_t epoch, const std::string& blob) {
    if (epoch <= m_layout.epoch()) return false;
    auto layout = Layout::unpack_blob(blob);
    if (!layout || layout->epoch() <= m_layout.epoch()) return false;
    m_layout = std::move(*layout);
    m_epoch_context->epoch.store(m_layout.epoch(), std::memory_order_relaxed);
    return true;
}

Status ElasticKvClient::refresh() {
    auto r = m_instance->call<std::uint64_t, std::string>(m_controller, "elastic_kv/layout",
                                                          {});
    if (!r) return r.error();
    ++m_refreshes;
    m_instance->metrics()->counter("elastic_layout_refreshes_total").inc();
    (void)adopt(std::get<0>(*r), std::get<1>(*r));
    return {};
}

Status ElasticKvClient::refresh_from_member(const std::string& member_address,
                                            const std::string& group_name) {
    auto r = ssg::Group::fetch_payload(m_instance, group_name, member_address);
    if (!r) return r.error();
    ++m_refreshes;
    m_instance->metrics()->counter("elastic_layout_refreshes_total").inc();
    if (r->first == 0)
        return Error{Error::Code::NotFound, "member holds no layout payload yet"};
    (void)adopt(r->first, r->second);
    return {};
}

Status ElasticKvClient::ensure_layout() {
    if (!m_layout.empty()) return {};
    return refresh();
}

bool ElasticKvClient::handle_stale(const Error& err) {
    std::uint64_t epoch = 0;
    std::string blob;
    if (!yokan::decode_stale_epoch(err, epoch, blob)) return false;
    ++m_stale_retries;
    m_instance->metrics()->counter("elastic_stale_epoch_retries_total").inc();
    // Fast path: the rejection carried the new layout — repair the cache
    // with zero extra RPCs.
    if (!blob.empty() && adopt(epoch, blob)) return true;
    // Blob too large (or raced): one explicit refresh.
    if (auto st = refresh(); !st.ok()) return false;
    return m_layout.epoch() >= epoch;
}

namespace {

/// True when an error indicates the client routed to the wrong node: the
/// node is gone, or it no longer hosts the shard's provider (the dispatch
/// layer answers Error::Code::NoSuchRpc). Epoch-guarded requests normally
/// fail with the richer stale-epoch rejection instead; this is the fallback
/// for nodes that died (resilience) or providers stopped by a merge.
bool indicates_stale_layout(const Error& err) {
    return err.code == Error::Code::Unreachable || err.code == Error::Code::NoSuchRpc;
}

/// Timeouts are ambiguous: a node mid-reconfiguration answers late (worth a
/// refresh + retry), but a genuinely dead node times out on every attempt —
/// refreshing the layout then just multiplies the damage by the full attempt
/// budget. Allow a short streak of timeout-driven refreshes, then surface
/// the Timeout to the caller.
constexpr int k_max_timeout_refreshes = 2;

/// Decide whether `err` warrants a layout refresh + retry, tracking the run
/// of consecutive timeouts in `timeout_streak` (reset by any other error).
bool should_refresh_layout(const Error& err, int& timeout_streak) {
    if (err.code == Error::Code::Timeout) return ++timeout_streak <= k_max_timeout_refreshes;
    timeout_streak = 0;
    return indicates_stale_layout(err);
}

/// Routing attempts per operation. A stale-epoch rejection repairs the cache
/// instantly (no backoff needed), but the wrong-node path may race an
/// in-flight migration: the source provider is already gone while the layout
/// still points at it. Backing off briefly between refreshes rides that
/// window out instead of surfacing a transient error to the caller.
constexpr int k_route_attempts = 8;

void routing_backoff(int attempt) {
    if (attempt > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(1 << attempt, 32)));
}

} // namespace

template <typename Op>
auto ElasticKvClient::with_routing(const std::string& key, Op op)
    -> decltype(op(std::declval<yokan::Database&>())) {
    if (auto st = ensure_layout(); !st.ok()) return st.error();
    int timeout_streak = 0;
    for (int attempt = 0;; ++attempt) {
        LayoutShard shard = m_layout.shard_for_key(key);
        auto db = shard_db(shard);
        auto result = op(db);
        if (result) return result;
        if (attempt >= k_route_attempts - 1) return result;
        // Stale epoch? Repair from the piggybacked layout and retry.
        if (handle_stale(result.error())) continue;
        // Wrong node (death/migration)? Refresh (with backoff: the layout
        // may not have flipped yet) and retry.
        if (should_refresh_layout(result.error(), timeout_streak)) {
            routing_backoff(attempt);
            if (auto st = refresh(); !st.ok()) return st.error();
            continue;
        }
        return result;
    }
}

Status ElasticKvClient::put(const std::string& key, const std::string& value) {
    auto r = with_routing(key, [&](yokan::Database& db) -> Expected<bool> {
        auto st = db.put(key, value);
        if (!st.ok()) return st.error();
        return true;
    });
    if (!r) return r.error();
    return {};
}

Expected<std::string> ElasticKvClient::get(const std::string& key) {
    return with_routing(key,
                        [&](yokan::Database& db) -> Expected<std::string> { return db.get(key); });
}

Status ElasticKvClient::erase(const std::string& key) {
    auto r = with_routing(key, [&](yokan::Database& db) -> Expected<bool> {
        auto st = db.erase(key);
        if (!st.ok()) return st.error();
        return true;
    });
    if (!r) return r.error();
    return {};
}

Status ElasticKvClient::put_multi(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
    if (pairs.empty()) return {};
    if (auto st = ensure_layout(); !st.ok()) return st;
    // Indices into `pairs` still to be written; shrinks as groups succeed.
    std::vector<std::size_t> remaining(pairs.size());
    std::iota(remaining.begin(), remaining.end(), std::size_t{0});
    std::optional<Error> last_error;
    int timeout_streak = 0;
    for (int attempt = 0; attempt < k_route_attempts && !remaining.empty(); ++attempt) {
        // Group the remaining pairs by shard under the *current* layout;
        // every group leaves as one RPC and all round trips overlap.
        std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
        for (auto i : remaining)
            by_shard[m_layout.shard_for_key(pairs[i].first).id].push_back(i);
        struct Flight {
            std::vector<std::size_t> items;
            margo::AsyncRequest req;
        };
        std::vector<Flight> inflight;
        inflight.reserve(by_shard.size());
        for (auto& [sid, items] : by_shard) {
            const auto* shard = m_layout.find_shard(sid);
            std::vector<std::pair<std::string, std::string>> group;
            group.reserve(items.size());
            for (auto i : items) group.push_back(pairs[i]);
            auto db = shard_db(*shard);
            inflight.push_back({std::move(items), db.put_multi_async(group)});
        }
        // Per-shard-group outcome: successful groups are done for good; only
        // failed groups carry over to the next attempt (regrouped under the
        // repaired layout).
        std::vector<std::size_t> failed;
        last_error.reset();
        for (auto& f : inflight) {
            auto r = f.req.wait_unpack<std::uint64_t, bool>();
            if (r) {
                m_epoch_context->observe(std::get<0>(*r));
                continue;
            }
            failed.insert(failed.end(), f.items.begin(), f.items.end());
            if (!last_error) last_error = std::move(r).error();
        }
        remaining = std::move(failed);
        if (remaining.empty()) return {};
        // Repair the layout before retrying; a non-stale error is final.
        if (!handle_stale(*last_error)) {
            if (!should_refresh_layout(*last_error, timeout_streak)) return *last_error;
            routing_backoff(attempt);
            if (auto st = refresh(); !st.ok()) return st;
        }
    }
    if (!remaining.empty())
        return last_error ? *last_error
                          : Error{Error::Code::Unreachable, "routing failed"};
    return {};
}

Expected<std::vector<std::optional<std::string>>>
ElasticKvClient::get_multi(const std::vector<std::string>& keys) {
    std::vector<std::optional<std::string>> values(keys.size());
    if (keys.empty()) return values;
    if (auto st = ensure_layout(); !st.ok()) return st.error();
    std::vector<std::size_t> remaining(keys.size());
    std::iota(remaining.begin(), remaining.end(), std::size_t{0});
    std::optional<Error> last_error;
    int timeout_streak = 0;
    for (int attempt = 0; attempt < k_route_attempts && !remaining.empty(); ++attempt) {
        // Group key positions by shard so results can be scattered back
        // into the caller's order.
        std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
        for (auto i : remaining) by_shard[m_layout.shard_for_key(keys[i]).id].push_back(i);
        struct Flight {
            std::vector<std::size_t> positions;
            margo::AsyncRequest req;
        };
        std::vector<Flight> inflight;
        inflight.reserve(by_shard.size());
        for (auto& [sid, positions] : by_shard) {
            const auto* shard = m_layout.find_shard(sid);
            std::vector<std::string> group;
            group.reserve(positions.size());
            for (auto i : positions) group.push_back(keys[i]);
            auto db = shard_db(*shard);
            inflight.push_back({std::move(positions), db.get_multi_async(group)});
        }
        std::vector<std::size_t> failed;
        last_error.reset();
        for (auto& f : inflight) {
            auto r = f.req.wait_unpack<std::uint64_t, std::vector<std::optional<std::string>>>();
            if (!r) {
                failed.insert(failed.end(), f.positions.begin(), f.positions.end());
                if (!last_error) last_error = std::move(r).error();
                continue;
            }
            m_epoch_context->observe(std::get<0>(*r));
            auto& group_values = std::get<1>(*r);
            if (group_values.size() != f.positions.size()) {
                if (!last_error)
                    last_error =
                        Error{Error::Code::Corruption, "get_multi result size mismatch"};
                failed.insert(failed.end(), f.positions.begin(), f.positions.end());
                continue;
            }
            for (std::size_t j = 0; j < f.positions.size(); ++j)
                values[f.positions[j]] = std::move(group_values[j]);
        }
        remaining = std::move(failed);
        if (remaining.empty()) return values;
        if (!handle_stale(*last_error)) {
            if (!should_refresh_layout(*last_error, timeout_streak)) return *last_error;
            routing_backoff(attempt);
            if (auto st = refresh(); !st.ok()) return st.error();
        }
    }
    if (!remaining.empty())
        return last_error ? *last_error
                          : Error{Error::Code::Unreachable, "routing failed"};
    return values;
}

} // namespace mochi::composed
