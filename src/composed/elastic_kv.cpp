#include "composed/elastic_kv.hpp"
#include "common/logging.hpp"

namespace mochi::composed {

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

json::Value ElasticKvService::node_bootstrap_config() {
    // Listing-3-style bootstrap: every node gets the component libraries and
    // a REMI provider; shard providers are started dynamically.
    auto cfg = json::Value::object();
    cfg["libraries"]["yokan"] = "libyokan.so";
    cfg["libraries"]["remi"] = "libremi.so";
    auto remi_desc = json::Value::object();
    remi_desc["name"] = "remi";
    remi_desc["type"] = "remi";
    remi_desc["provider_id"] = static_cast<std::int64_t>(k_remi_provider_id);
    cfg["providers"].push_back(std::move(remi_desc));
    return cfg;
}

json::Value ElasticKvService::shard_descriptor(std::size_t shard) const {
    auto desc = json::Value::object();
    desc["name"] = shard_name(shard);
    desc["type"] = "yokan";
    desc["provider_id"] = static_cast<std::int64_t>(k_first_shard_provider_id + shard);
    desc["config"]["name"] = shard_name(shard);
    desc["config"]["backend"] = m_config.backend;
    desc["dependencies"]["remi"] = "remi";
    return desc;
}

Expected<std::unique_ptr<ElasticKvService>>
ElasticKvService::create(Cluster& cluster, std::vector<std::string> addresses,
                         ElasticKvConfig config) {
    if (addresses.empty())
        return Error{Error::Code::InvalidArgument, "service needs at least one node"};
    yokan::register_module();
    remi::register_module();
    auto service =
        std::unique_ptr<ElasticKvService>(new ElasticKvService(cluster, std::move(config)));
    auto client = margo::Instance::create(
        cluster.fabric(), "sim://" + service->m_config.group_name + "-controller");
    if (!client) return client.error();
    service->m_client = std::move(client).value();

    for (const auto& addr : addresses) {
        if (auto st = service->spawn_service_node(addr); !st.ok()) return st.error();
    }
    // Initial round-robin shard placement.
    {
        std::lock_guard lk{service->m_mutex};
        service->m_shard_to_node.resize(service->m_config.num_shards);
        for (std::size_t s = 0; s < service->m_config.num_shards; ++s)
            service->m_shard_to_node[s] = addresses[s % addresses.size()];
    }
    for (std::size_t s = 0; s < service->m_config.num_shards; ++s) {
        auto node = cluster.node(addresses[s % addresses.size()]);
        if (auto st = node->start_provider(service->shard_descriptor(s)); !st.ok())
            return st.error();
    }
    // Serve the directory to detached clients (the explicit query function
    // of §6's first client strategy).
    ElasticKvService* raw = service.get();
    (void)service->m_client->register_rpc(
        "elastic_kv/directory", margo::k_default_provider_id,
        [raw](const margo::Request& req) {
            auto dir = raw->directory();
            req.respond_values(dir.version, dir.shard_to_node);
        });
    return service;
}

Status ElasticKvService::spawn_service_node(const std::string& address) {
    auto proc = m_cluster.spawn_node(address, node_bootstrap_config());
    if (!proc) return proc.error();
    {
        std::lock_guard lk{m_mutex};
        m_nodes.insert(address);
    }
    // Membership: bootstrap or join the SSG group on the node's runtime.
    ssg::GroupConfig gcfg;
    gcfg.enable_swim = m_config.enable_swim;
    gcfg.swim_period = m_config.swim_period;
    std::shared_ptr<ssg::Group> group;
    std::string seed;
    {
        std::lock_guard lk{m_mutex};
        for (const auto& [a, g] : m_groups) {
            seed = a;
            break;
        }
    }
    auto instance = (*proc)->margo_instance();
    if (seed.empty()) {
        auto g = ssg::Group::create(instance, m_config.group_name, {address}, gcfg);
        if (!g) return g.error();
        group = std::move(g).value();
    } else {
        auto g = ssg::Group::join(instance, m_config.group_name, seed, gcfg);
        if (!g) return g.error();
        group = std::move(g).value();
    }
    if (m_config.enable_resilience) {
        group->on_membership_change([this](const std::string& addr,
                                           ssg::MembershipEvent ev) {
            if (ev == ssg::MembershipEvent::Died && !m_stopping.load()) on_member_died(addr);
        });
    }
    std::lock_guard lk{m_mutex};
    m_groups[address] = std::move(group);
    return {};
}

ElasticKvService::~ElasticKvService() {
    m_stopping.store(true);
    (void)m_client->deregister_rpc("elastic_kv/directory", margo::k_default_provider_id);
    {
        std::lock_guard lk{m_mutex};
        for (auto& [a, g] : m_groups) g->leave();
        m_groups.clear();
    }
    if (m_client) m_client->shutdown();
}

// ---------------------------------------------------------------------------
// Client operations
// ---------------------------------------------------------------------------

namespace {

std::uint32_t shard_hash(const std::string& key, std::size_t num_shards) {
    std::uint32_t h = 2166136261u;
    for (unsigned char c : key) {
        h ^= c;
        h *= 16777619u;
    }
    return h % static_cast<std::uint32_t>(num_shards);
}

} // namespace

std::uint32_t ElasticKvService::shard_of(const std::string& key) const {
    return shard_hash(key, m_config.num_shards);
}

Directory ElasticKvService::directory() const {
    std::lock_guard lk{m_mutex};
    return Directory{m_directory_version, m_shard_to_node};
}

std::vector<std::string> ElasticKvService::nodes() const {
    std::lock_guard lk{m_mutex};
    return {m_nodes.begin(), m_nodes.end()};
}

std::uint64_t ElasticKvService::group_digest() const {
    std::lock_guard lk{m_mutex};
    if (m_groups.empty()) return 0;
    return m_groups.begin()->second->view_digest();
}

Status ElasticKvService::put(const std::string& key, const std::string& value) {
    std::size_t shard = shard_of(key);
    std::string node;
    {
        std::lock_guard lk{m_mutex};
        node = m_shard_to_node[shard];
    }
    yokan::Database db{m_client, node,
                       static_cast<std::uint16_t>(k_first_shard_provider_id + shard)};
    return db.put(key, value);
}

Expected<std::string> ElasticKvService::get(const std::string& key) {
    std::size_t shard = shard_of(key);
    std::string node;
    {
        std::lock_guard lk{m_mutex};
        node = m_shard_to_node[shard];
    }
    yokan::Database db{m_client, node,
                       static_cast<std::uint16_t>(k_first_shard_provider_id + shard)};
    return db.get(key);
}

Status ElasticKvService::erase(const std::string& key) {
    std::size_t shard = shard_of(key);
    std::string node;
    {
        std::lock_guard lk{m_mutex};
        node = m_shard_to_node[shard];
    }
    yokan::Database db{m_client, node,
                       static_cast<std::uint16_t>(k_first_shard_provider_id + shard)};
    return db.erase(key);
}

// ---------------------------------------------------------------------------
// Elasticity
// ---------------------------------------------------------------------------

std::vector<pufferscale::Resource> ElasticKvService::shard_resources() const {
    // Load signal: per-provider handler activity from each node's Margo
    // monitoring (§4 — "using the performance introspection tools presented
    // in Section 4 to guide load rebalancing"); size from the provider's
    // own config (key count via yokan config is not exposed, so we use the
    // monitoring request sizes as a proxy plus the DB's store footprint).
    std::vector<pufferscale::Resource> resources;
    Directory dir = directory();
    for (std::size_t s = 0; s < dir.shard_to_node.size(); ++s) {
        pufferscale::Resource r;
        r.id = shard_name(s);
        r.node = dir.shard_to_node[s];
        auto proc = m_cluster.node(r.node);
        if (!proc) continue;
        auto stats = proc->margo_instance()->monitoring_json();
        double load = 0;
        std::uint16_t pid = static_cast<std::uint16_t>(k_first_shard_provider_id + s);
        for (const auto& [key, rpc] : stats["rpcs"].as_object()) {
            if (rpc["provider_id"].as_integer() != pid) continue;
            for (const auto& [peer, t] : rpc["target"].as_object())
                load += static_cast<double>(t["ult"]["duration"]["num"].as_integer());
        }
        r.load = load;
        // Size: count keys through a live query.
        yokan::Database db{m_client, r.node, pid};
        if (auto c = db.count()) r.size = static_cast<double>(*c);
        resources.push_back(std::move(r));
    }
    return resources;
}

Status ElasticKvService::migrate_shard(std::size_t shard, const std::string& dest) {
    std::string source;
    {
        std::lock_guard lk{m_mutex};
        source = m_shard_to_node[shard];
    }
    if (source == dest) return {};
    bedrock::Client bc{m_client};
    auto handle = bc.makeServiceHandle(source);
    auto options = json::Value::object();
    options["method"] = m_config.migration_method == remi::Method::Rdma ? "rdma" : "chunks";
    if (auto st = handle.migrateProvider(shard_name(shard), dest, options); !st.ok())
        return st;
    std::lock_guard lk{m_mutex};
    m_shard_to_node[shard] = dest;
    ++m_directory_version;
    return {};
}

Status ElasticKvService::rebalance() {
    auto resources = shard_resources();
    auto plan = pufferscale::plan_rescale(resources, nodes(), m_config.objectives);
    if (!plan) return plan.error();
    // Pufferscale executes through dependency injection: the injected
    // function is Bedrock's managed provider migration.
    return pufferscale::execute(*plan, [this](const pufferscale::Move& move) -> Status {
        std::size_t shard = std::stoul(move.resource.substr(5));
        return migrate_shard(shard, move.to);
    });
}

Status ElasticKvService::scale_up(const std::string& address) {
    if (auto st = spawn_service_node(address); !st.ok()) return st;
    return rebalance();
}

Status ElasticKvService::scale_down(const std::string& address) {
    {
        std::lock_guard lk{m_mutex};
        if (!m_nodes.count(address))
            return Error{Error::Code::NotFound, "no service node at " + address};
        if (m_nodes.size() == 1)
            return Error{Error::Code::InvalidState, "cannot remove the last node"};
        m_nodes.erase(address);
    }
    // §6 Obs. 4: "removing nodes first requires their data to be sent to
    // remaining nodes" — plan a rescale excluding the leaving node.
    auto resources = shard_resources();
    auto plan = pufferscale::plan_rescale(resources, nodes(), m_config.objectives);
    if (!plan) return plan.error();
    if (auto st = pufferscale::execute(*plan, [this](const pufferscale::Move& move) {
            std::size_t shard = std::stoul(move.resource.substr(5));
            return migrate_shard(shard, move.to);
        });
        !st.ok())
        return st;
    // Leave the group gracefully and release the node.
    std::shared_ptr<ssg::Group> group;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_groups.find(address);
        if (it != m_groups.end()) {
            group = it->second;
            m_groups.erase(it);
        }
    }
    if (group) group->leave();
    return m_cluster.crash_node(address);
}

// ---------------------------------------------------------------------------
// Resilience (§7)
// ---------------------------------------------------------------------------

Status ElasticKvService::checkpoint_all() {
    Directory dir = directory();
    bedrock::Client bc{m_client};
    for (std::size_t s = 0; s < dir.shard_to_node.size(); ++s) {
        auto handle = bc.makeServiceHandle(dir.shard_to_node[s]);
        if (auto st = handle.checkpointProvider(shard_name(s), checkpoint_path(s)); !st.ok())
            return st;
    }
    return {};
}

void ElasticKvService::on_member_died(const std::string& address) {
    log::info("elastic_kv", "controller: node %s died, re-provisioning its shards",
              address.c_str());
    (void)recover_shards_of(address);
}

Status ElasticKvService::recover_shards_of(const std::string& address) {
    // Top-down recovery (§7): the controller has the global view; it
    // restarts every shard the dead node hosted on surviving nodes, restored
    // from the latest PFS checkpoint.
    std::vector<std::size_t> lost;
    std::vector<std::string> survivors;
    {
        std::lock_guard lk{m_mutex};
        if (!m_nodes.erase(address)) return {}; // already handled
        m_groups.erase(address);
        for (std::size_t s = 0; s < m_shard_to_node.size(); ++s)
            if (m_shard_to_node[s] == address) lost.push_back(s);
        survivors.assign(m_nodes.begin(), m_nodes.end());
    }
    if (survivors.empty())
        return Error{Error::Code::InvalidState, "no surviving node to recover onto"};
    bedrock::Client bc{m_client};
    std::size_t next = 0;
    for (std::size_t s : lost) {
        const std::string& target = survivors[next++ % survivors.size()];
        auto handle = bc.makeServiceHandle(target);
        if (auto st = handle.startProvider(shard_descriptor(s)); !st.ok()) return st;
        // Restore from the checkpoint if one exists (otherwise the shard
        // restarts empty — data since the last checkpoint is lost, which §7
        // Obs. 9 deems acceptable for this failure model).
        if (remi::SimFileStore::pfs()->exists(checkpoint_path(s)))
            (void)handle.restoreProvider(shard_name(s), checkpoint_path(s));
        {
            std::lock_guard lk{m_mutex};
            m_shard_to_node[s] = target;
            ++m_directory_version;
        }
        m_recoveries.fetch_add(1);
    }
    return {};
}

// ---------------------------------------------------------------------------
// ElasticKvClient (Colza-style stale-view protocol)
// ---------------------------------------------------------------------------

ElasticKvClient::ElasticKvClient(margo::InstancePtr instance, std::string controller)
: m_instance(std::move(instance)), m_controller(std::move(controller)) {}

Status ElasticKvClient::refresh() {
    auto r = m_instance->call<std::uint64_t, std::vector<std::string>>(
        m_controller, "elastic_kv/directory", {});
    if (!r) return r.error();
    m_directory.version = std::get<0>(*r);
    m_directory.shard_to_node = std::move(std::get<1>(*r));
    ++m_refreshes;
    return {};
}

namespace {

/// True when an error indicates the client routed to the wrong node: the
/// node is gone, or it no longer hosts the shard's provider (the dispatch
/// layer answers "no such RPC").
bool indicates_stale_directory(const Error& err) {
    if (err.code == Error::Code::Unreachable || err.code == Error::Code::Timeout)
        return true;
    return err.code == Error::Code::NotFound &&
           err.message.find("no such RPC") != std::string::npos;
}

} // namespace

template <typename Op>
auto ElasticKvClient::with_routing(const std::string& key, Op op)
    -> decltype(op(std::declval<yokan::Database&>())) {
    if (m_directory.shard_to_node.empty()) {
        if (auto st = refresh(); !st.ok()) return st.error();
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
        std::uint32_t shard = shard_hash(key, m_directory.shard_to_node.size());
        yokan::Database db{
            m_instance, m_directory.shard_to_node[shard],
            static_cast<std::uint16_t>(ElasticKvService::k_first_shard_provider_id + shard)};
        auto result = op(db);
        if (result) return result;
        // Stale view? Refresh and retry once (the Colza mismatch protocol).
        if (attempt == 0 && indicates_stale_directory(result.error())) {
            if (auto st = refresh(); !st.ok()) return st.error();
            continue;
        }
        return result;
    }
    return Error{Error::Code::Unreachable, "routing failed"};
}

Status ElasticKvClient::put(const std::string& key, const std::string& value) {
    auto r = with_routing(key, [&](yokan::Database& db) -> Expected<bool> {
        auto st = db.put(key, value);
        if (!st.ok()) return st.error();
        return true;
    });
    if (!r) return r.error();
    return {};
}

Expected<std::string> ElasticKvClient::get(const std::string& key) {
    return with_routing(key,
                        [&](yokan::Database& db) -> Expected<std::string> { return db.get(key); });
}

Status ElasticKvClient::erase(const std::string& key) {
    auto r = with_routing(key, [&](yokan::Database& db) -> Expected<bool> {
        auto st = db.erase(key);
        if (!st.ok()) return st.error();
        return true;
    });
    if (!r) return r.error();
    return {};
}

Status ElasticKvClient::put_multi(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
    if (pairs.empty()) return {};
    if (m_directory.shard_to_node.empty()) {
        if (auto st = refresh(); !st.ok()) return st;
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
        // Group by shard; every group leaves as one RPC and all shards'
        // round trips overlap.
        std::map<std::uint32_t, std::vector<std::pair<std::string, std::string>>> by_shard;
        for (const auto& p : pairs)
            by_shard[shard_hash(p.first, m_directory.shard_to_node.size())].push_back(p);
        std::vector<margo::AsyncRequest> inflight;
        inflight.reserve(by_shard.size());
        for (auto& [shard, group] : by_shard) {
            yokan::Database db{m_instance, m_directory.shard_to_node[shard],
                               static_cast<std::uint16_t>(
                                   ElasticKvService::k_first_shard_provider_id + shard)};
            inflight.push_back(db.put_multi_async(group));
        }
        std::optional<Error> first;
        for (auto& req : inflight) {
            auto r = req.wait_unpack<bool>();
            if (!r && !first) first = std::move(r).error();
        }
        if (!first) return {};
        // Stale view? Refresh and retry the whole batch once (puts are
        // idempotent, so re-sending already-applied groups is safe).
        if (attempt == 0 && indicates_stale_directory(*first)) {
            if (auto st = refresh(); !st.ok()) return st;
            continue;
        }
        return *first;
    }
    return Error{Error::Code::Unreachable, "routing failed"};
}

Expected<std::vector<std::optional<std::string>>>
ElasticKvClient::get_multi(const std::vector<std::string>& keys) {
    std::vector<std::optional<std::string>> values(keys.size());
    if (keys.empty()) return values;
    if (m_directory.shard_to_node.empty()) {
        if (auto st = refresh(); !st.ok()) return st.error();
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
        // Group key positions by shard so results can be scattered back
        // into the caller's order.
        std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
        for (std::size_t i = 0; i < keys.size(); ++i)
            by_shard[shard_hash(keys[i], m_directory.shard_to_node.size())].push_back(i);
        std::vector<std::pair<const std::vector<std::size_t>*, margo::AsyncRequest>> inflight;
        inflight.reserve(by_shard.size());
        for (auto& [shard, positions] : by_shard) {
            std::vector<std::string> group;
            group.reserve(positions.size());
            for (auto i : positions) group.push_back(keys[i]);
            yokan::Database db{m_instance, m_directory.shard_to_node[shard],
                               static_cast<std::uint16_t>(
                                   ElasticKvService::k_first_shard_provider_id + shard)};
            inflight.emplace_back(&positions, db.get_multi_async(group));
        }
        std::optional<Error> first;
        for (auto& [positions, req] : inflight) {
            auto r = req.wait_unpack<std::vector<std::optional<std::string>>>();
            if (!r) {
                if (!first) first = std::move(r).error();
                continue;
            }
            auto& group_values = std::get<0>(*r);
            if (group_values.size() != positions->size()) {
                if (!first)
                    first = Error{Error::Code::Corruption, "get_multi result size mismatch"};
                continue;
            }
            for (std::size_t j = 0; j < positions->size(); ++j)
                values[(*positions)[j]] = std::move(group_values[j]);
        }
        if (!first) return values;
        if (attempt == 0 && indicates_stale_directory(*first)) {
            if (auto st = refresh(); !st.ok()) return st.error();
            continue;
        }
        return *first;
    }
    return Error{Error::Code::Unreachable, "routing failed"};
}

} // namespace mochi::composed
