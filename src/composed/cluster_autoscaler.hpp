// Closed-loop cluster elasticity: the metrics-driven controller that turns
// the paper's building blocks into an autonomic service. Each control period
// it scrapes `bedrock/get_metrics` from every service node (§4's "statistics
// at no engineering cost", exported remotely by Bedrock), derives per-shard
// load (ops during the window, stale-epoch rejections) and per-node
// utilization (total ops, pool queue depths, in-flight RPCs), and feeds a
// pure decision policy whose outputs are the flip-first reconfigurations of
// the elastic KV service — split a hot shard, merge a cold one, grow or
// shrink the node set through the Flux-like resource manager with SSG
// membership changes. All actuators keep serving during reconfiguration, so
// the controller's hard invariant is zero client-visible errors.
//
// The policy (AutoscalePolicy) is deterministic and side-effect free: it
// consumes ClusterSnapshot values and returns one Action, with hysteresis
// (a signal must persist for N consecutive periods), cooldown (no action for
// M periods after one fires), and a wide dead band between the hot and cold
// thresholds so oscillating load cannot make it flap. Unit tests drive it
// with injected snapshots; the live ClusterAutoscaler merely wires it to the
// scraper and the actuators.
#pragma once

#include "composed/elastic_kv.hpp"
#include "flux/resource_manager.hpp"

#include <thread>

namespace mochi::composed {

/// One shard's load over the last control period (counter deltas, not
/// cumulative totals).
struct ShardStats {
    std::uint32_t id = 0;
    std::string node;            ///< address currently serving the shard
    double ops = 0;              ///< data ops served during the window
    double stale_rejections = 0; ///< epoch-guard rejections during the window
};

/// One node's utilization over the last control period.
struct NodeStats {
    std::string address;
    double ops = 0;        ///< total shard ops served during the window
    double pool_depth = 0; ///< deepest margo pool queue (sampled gauge)
    double in_flight = 0;  ///< in-flight RPCs (sampled gauge)
    double shed = 0;       ///< tenant backpressure rejections (tenant_*_shed_total deltas)
    std::size_t shards = 0;
};

struct ClusterSnapshot {
    std::vector<ShardStats> shards;
    std::vector<NodeStats> nodes;
    /// Sum of shard ops (the activity gate: an idle cluster is never scaled).
    [[nodiscard]] double total_ops() const noexcept {
        double t = 0;
        for (const auto& s : shards) t += s.ops;
        return t;
    }
};

enum class ActionKind { None, SplitShard, MergeShard, AddNode, RemoveNode };

struct Action {
    ActionKind kind = ActionKind::None;
    std::uint32_t shard = 0; ///< Split/Merge target
    std::string node;        ///< Split child placement / RemoveNode victim
};

struct PolicyConfig {
    // -- thresholds (load = ops + stale rejections over one period) ----------
    double hot_shard_factor = 4.0;  ///< hot: load > factor * mean shard load
    double min_hot_ops = 64.0;      ///< ... and load at least this (absolute)
    double cold_shard_factor = 0.1; ///< cold: load < factor * mean shard load
    double node_add_depth = 32.0;   ///< grow when a pool queue exceeds this
    /// Tenant shed rejections per period that count as queueing pressure: a
    /// node refusing tenant work is saturated even if its pool drains fast
    /// (backpressure keeps the queue short by design), so shedding feeds the
    /// same pressure signal as pool depth — it can trigger AddNode and it
    /// suppresses capacity reclamation.
    double shed_pressure_min = 1.0;
    double cold_node_factor = 0.05; ///< shrink: node ops < factor * mean
    double min_total_ops = 16.0;    ///< below this the cluster is idle: no actions

    // -- structural bounds ---------------------------------------------------
    std::size_t min_shards = 1;
    std::size_t max_shards = 64;
    std::size_t min_nodes = 1;
    std::size_t max_nodes = 0; ///< 0 = unbounded

    // -- damping -------------------------------------------------------------
    std::size_t hysteresis = 2; ///< consecutive periods a signal must persist
    std::size_t cooldown = 3;   ///< periods to hold off after any action
};

/// The pure decision core. Call decide() once per control period; it
/// updates per-signal streaks and returns at most one action. Priority:
/// relieve pressure first (split hot shard, then add node), reclaim
/// resources second (merge cold shard, then remove cold node).
class AutoscalePolicy {
  public:
    explicit AutoscalePolicy(PolicyConfig config = {}) : m_cfg(config) {}

    Action decide(const ClusterSnapshot& snapshot);

    /// Periods left before the next action may fire (tests).
    [[nodiscard]] std::size_t cooldown_remaining() const noexcept { return m_cooldown; }

  private:
    /// Bump the streak for `key` in `streaks` if `active`, else clear it;
    /// true once the streak reaches the hysteresis length.
    bool streak(std::map<std::string, std::size_t>& streaks, const std::string& key,
                bool active);
    Action fire(Action a);

    PolicyConfig m_cfg;
    std::size_t m_cooldown = 0;
    std::map<std::string, std::size_t> m_hot_shards;  ///< "shard:<id>" streaks
    std::map<std::string, std::size_t> m_cold_shards; ///< "shard:<id>" streaks
    std::map<std::string, std::size_t> m_pressure;    ///< "node" (single key)
    std::map<std::string, std::size_t> m_cold_nodes;  ///< "<address>" streaks
};

struct ClusterAutoscalerConfig {
    std::chrono::milliseconds period{100}; ///< control period
    PolicyConfig policy;
    /// How long an AddNode action may block waiting for the resource
    /// manager to free a node before counting as failed.
    std::chrono::milliseconds grow_timeout{0};
};

/// The live control loop: scrape -> decide -> actuate, on its own thread.
/// Pass a flux::ResourceManager + job to allocate/release real inventory
/// nodes on Add/RemoveNode; without one, AddNode synthesizes fresh
/// addresses (`sim://auto<N>`) directly.
class ClusterAutoscaler {
  public:
    struct Stats {
        std::size_t periods = 0;
        std::size_t splits = 0;
        std::size_t merges = 0;
        std::size_t node_adds = 0;
        std::size_t node_removes = 0;
        std::size_t failed_actions = 0;
        std::size_t failed_scrapes = 0; ///< nodes that could not be scraped
    };

    ClusterAutoscaler(Cluster& cluster, ElasticKvService& service,
                      ClusterAutoscalerConfig config = {},
                      flux::ResourceManager* flux = nullptr, flux::JobId job = 0);
    ~ClusterAutoscaler();

    ClusterAutoscaler(const ClusterAutoscaler&) = delete;
    ClusterAutoscaler& operator=(const ClusterAutoscaler&) = delete;

    /// Start the periodic control loop (idempotent).
    void start();
    /// Stop and join the loop; safe to call repeatedly. Must run before the
    /// service/cluster are torn down.
    void stop();

    /// One control period, synchronously: scrape every node, run the
    /// policy, apply the action. Returns the action taken (tests/benches
    /// drive convergence deterministically with this instead of start()).
    Action step();

    /// Scrape `bedrock/get_metrics` across the service's nodes and convert
    /// counter deltas since the previous scrape into a snapshot.
    ClusterSnapshot scrape();

    [[nodiscard]] Stats stats() const;

  private:
    void control_loop();
    Status apply(const Action& action, const ClusterSnapshot& snapshot);

    Cluster& m_cluster;
    ElasticKvService& m_service;
    ClusterAutoscalerConfig m_config;
    flux::ResourceManager* m_flux;
    flux::JobId m_job;
    AutoscalePolicy m_policy;
    margo::InstancePtr m_instance; ///< scraper's own margo endpoint

    /// Previous cumulative counter values per node (delta base). A node seen
    /// for the first time contributes zero load for that period, so a
    /// controller (re)start never mistakes lifetime totals for a burst.
    std::map<std::string, std::map<std::string, double>> m_prev;

    std::atomic<bool> m_running{false};
    std::thread m_thread;
    std::size_t m_auto_names = 0; ///< sim://auto<N> sequence (no flux mode)

    mutable std::mutex m_stats_mutex;
    Stats m_stats;
};

} // namespace mochi::composed
