#include "composed/replicated_kv.hpp"
#include "mercury/archive.hpp"

namespace mochi::composed {

namespace {
constexpr char k_found = 'F';
constexpr char k_missing = 'M';
} // namespace

std::string YokanStateMachine::encode_put(const std::string& key, const std::string& value) {
    return "P" + mercury::pack(key, value);
}

std::string YokanStateMachine::encode_erase(const std::string& key) { return "E" + key; }

std::string YokanStateMachine::encode_get(const std::string& key) { return "G" + key; }

std::string YokanStateMachine::apply(const std::string& command) {
    if (command.empty()) return "";
    switch (command[0]) {
    case 'P': {
        std::string key, value;
        if (!mercury::unpack(std::string_view(command).substr(1), key, value)) return "";
        (void)m_backend->put(key, std::move(value));
        return std::string(1, k_found);
    }
    case 'E': {
        auto st = m_backend->erase(command.substr(1));
        return std::string(1, st.ok() ? k_found : k_missing);
    }
    case 'G': {
        auto v = m_backend->get(command.substr(1));
        if (!v) return std::string(1, k_missing);
        return std::string(1, k_found) + *v;
    }
    default: return "";
    }
}

std::string YokanStateMachine::snapshot() const {
    std::vector<std::pair<std::string, std::string>> pairs;
    m_backend->for_each(
        [&](const std::string& k, const std::string& v) { pairs.emplace_back(k, v); });
    return mercury::pack(pairs);
}

Status YokanStateMachine::restore(const std::string& snap) {
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!mercury::unpack(snap, pairs))
        return Error{Error::Code::Corruption, "corrupt replicated-kv snapshot"};
    m_backend->clear();
    for (auto& [k, v] : pairs) (void)m_backend->put(k, std::move(v));
    return {};
}

Expected<KvReplica> KvReplica::create(const std::shared_ptr<mercury::Fabric>& fabric,
                                      const std::string& address,
                                      const std::vector<std::string>& peers,
                                      std::uint16_t provider_id,
                                      const raft::RaftConfig& config,
                                      const std::string& backend_type) {
    auto instance = margo::Instance::create(fabric, address);
    if (!instance) return instance.error();
    auto backend = yokan::Backend::create(backend_type);
    if (!backend) return backend.error();
    KvReplica r;
    r.instance = std::move(instance).value();
    r.machine = std::make_shared<YokanStateMachine>(std::move(*backend));
    r.raft = raft::Provider::create(r.instance, provider_id, peers, r.machine, config);
    return r;
}

void KvReplica::shutdown() {
    // Order matters: stop RAFT timers, then drain the Margo runtime (which
    // runs handler ULTs that capture the provider), and only then release
    // the provider. Destroying it while handlers run is a use-after-free.
    if (raft) raft->stop();
    if (instance) instance->shutdown();
    raft.reset();
}

Status ReplicatedKvClient::put(const std::string& key, const std::string& value) {
    auto r = m_raft.submit(YokanStateMachine::encode_put(key, value));
    if (!r) return r.error();
    return {};
}

Expected<std::string> ReplicatedKvClient::get(const std::string& key) {
    auto r = m_raft.submit(YokanStateMachine::encode_get(key));
    if (!r) return std::move(r).error();
    if (r->empty() || (*r)[0] == k_missing)
        return Error{Error::Code::NotFound, "no such key: " + key};
    return r->substr(1);
}

Status ReplicatedKvClient::erase(const std::string& key) {
    auto r = m_raft.submit(YokanStateMachine::encode_erase(key));
    if (!r) return r.error();
    if (r->empty() || (*r)[0] == k_missing)
        return Error{Error::Code::NotFound, "no such key: " + key};
    return {};
}

} // namespace mochi::composed
