#include "composed/replicated_kv.hpp"
#include "mercury/archive.hpp"

namespace mochi::composed {

namespace {
constexpr char k_found = 'F';
constexpr char k_missing = 'M';
} // namespace

std::string YokanStateMachine::encode_put(const std::string& key, const std::string& value) {
    return "P" + mercury::pack(key, value);
}

std::string YokanStateMachine::encode_erase(const std::string& key) { return "E" + key; }

std::string YokanStateMachine::encode_get(const std::string& key) { return "G" + key; }

std::string YokanStateMachine::encode_put_multi(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
    return "B" + mercury::pack(pairs);
}

std::string YokanStateMachine::apply(const std::string& command) {
    if (command.empty()) return "";
    switch (command[0]) {
    case 'P': {
        std::string key, value;
        if (!mercury::unpack(std::string_view(command).substr(1), key, value)) return "";
        (void)m_backend->put(key, std::move(value));
        return std::string(1, k_found);
    }
    case 'E': {
        auto st = m_backend->erase(command.substr(1));
        return std::string(1, st.ok() ? k_found : k_missing);
    }
    case 'G': {
        auto v = m_backend->get(command.substr(1));
        if (!v) return std::string(1, k_missing);
        return std::string(1, k_found) + *v;
    }
    case 'B': {
        // Batched put: the whole batch lives in one committed entry, so
        // apply() runs it atomically on every replica (no entry boundary
        // can fall inside the batch).
        std::vector<std::pair<std::string, std::string>> pairs;
        if (!mercury::unpack(std::string_view(command).substr(1), pairs)) return "";
        for (auto& [k, v] : pairs) (void)m_backend->put(k, std::move(v));
        return std::string(1, k_found);
    }
    default: return "";
    }
}

std::string YokanStateMachine::snapshot() const {
    std::vector<std::pair<std::string, std::string>> pairs;
    m_backend->for_each(
        [&](const std::string& k, const std::string& v) { pairs.emplace_back(k, v); });
    return mercury::pack(pairs);
}

Status YokanStateMachine::restore(const std::string& snap) {
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!mercury::unpack(snap, pairs))
        return Error{Error::Code::Corruption, "corrupt replicated-kv snapshot"};
    m_backend->clear();
    for (auto& [k, v] : pairs) (void)m_backend->put(k, std::move(v));
    return {};
}

Expected<KvReplica> KvReplica::create(const std::shared_ptr<mercury::Fabric>& fabric,
                                      const std::string& address,
                                      const std::vector<std::string>& peers,
                                      std::uint16_t provider_id,
                                      const raft::RaftConfig& config,
                                      const std::string& backend_type) {
    auto instance = margo::Instance::create(fabric, address);
    if (!instance) return instance.error();
    auto backend = yokan::Backend::create(backend_type);
    if (!backend) return backend.error();
    KvReplica r;
    r.instance = std::move(instance).value();
    r.machine = std::make_shared<YokanStateMachine>(std::move(*backend));
    r.raft = raft::Provider::create(r.instance, provider_id, peers, r.machine, config);
    return r;
}

void KvReplica::shutdown() {
    // Order matters: stop RAFT timers, then drain the Margo runtime (which
    // runs handler ULTs that capture the provider), and only then release
    // the provider. Destroying it while handlers run is a use-after-free.
    if (raft) raft->stop();
    if (instance) instance->shutdown();
    raft.reset();
}

Status ReplicatedKvClient::put(const std::string& key, const std::string& value) {
    auto r = m_raft.submit(YokanStateMachine::encode_put(key, value));
    if (!r) return r.error();
    return {};
}

Expected<std::string> ReplicatedKvClient::get(const std::string& key) {
    auto r = m_raft.submit(YokanStateMachine::encode_get(key));
    if (!r) return std::move(r).error();
    if (r->empty() || (*r)[0] == k_missing)
        return Error{Error::Code::NotFound, "no such key: " + key};
    return r->substr(1);
}

Status ReplicatedKvClient::put_multi(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
    if (pairs.empty()) return {};
    auto r = m_raft.submit(YokanStateMachine::encode_put_multi(pairs));
    if (!r) return r.error();
    if (r->empty())
        return Error{Error::Code::Corruption, "replica rejected batched put"};
    return {};
}

Expected<std::vector<std::optional<std::string>>>
ReplicatedKvClient::get_multi(const std::vector<std::string>& keys) {
    std::vector<std::string> commands;
    commands.reserve(keys.size());
    for (const auto& k : keys) commands.push_back(YokanStateMachine::encode_get(k));
    auto r = m_raft.submit_multi(commands);
    if (!r) return std::move(r).error();
    std::vector<std::optional<std::string>> values;
    values.reserve(r->size());
    for (auto& res : *r) {
        if (res.empty() || res[0] == k_missing)
            values.emplace_back(std::nullopt);
        else
            values.emplace_back(res.substr(1));
    }
    return values;
}

Status ReplicatedKvClient::erase(const std::string& key) {
    auto r = m_raft.submit(YokanStateMachine::encode_erase(key));
    if (!r) return r.error();
    if (r->empty() || (*r)[0] == k_missing)
        return Error{Error::Code::NotFound, "no such key: " + key};
    return {};
}

} // namespace mochi::composed
