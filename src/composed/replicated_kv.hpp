// The resilient replicated key-value store of §2.3's design example:
// "multiple instances of Yokan ... a consensus algorithm such as RAFT is
// needed to provide data consistency for key-value pairs replicated across
// the nodes running Yokan. ... individual Yokan instances are unaware of
// their database being RAFT-replicated across nodes, while Mochi-RAFT
// itself does not need to know that the commands it logs represent Yokan
// key-value pairs."
//
// YokanStateMachine adapts a plain yokan::Backend to raft::StateMachine by
// encoding put/erase commands; KvReplica wires one node's pieces together;
// ReplicatedKvClient gives applications a Database-like API that is
// linearizable and survives leader failures.
#pragma once

#include "raft/raft.hpp"
#include "yokan/backend.hpp"

#include <optional>

namespace mochi::composed {

/// Adapts a Yokan backend to RAFT's state machine interface. Commands:
///   "P<klen:8><key><value>"  put
///   "E<key>"                  erase
///   "G<key>"                  get (read-through-log for linearizable reads)
///   "B<pairs>"                put_multi: one log entry carrying a whole
///                             batch, applied atomically on every replica
class YokanStateMachine : public raft::StateMachine {
  public:
    explicit YokanStateMachine(std::unique_ptr<yokan::Backend> backend)
    : m_backend(std::move(backend)) {}

    static std::string encode_put(const std::string& key, const std::string& value);
    static std::string encode_erase(const std::string& key);
    static std::string encode_get(const std::string& key);
    static std::string
    encode_put_multi(const std::vector<std::pair<std::string, std::string>>& pairs);

    std::string apply(const std::string& command) override;
    [[nodiscard]] std::string snapshot() const override;
    Status restore(const std::string& snap) override;

    [[nodiscard]] yokan::Backend& backend() noexcept { return *m_backend; }

  private:
    std::unique_ptr<yokan::Backend> m_backend;
};

/// One replica: a margo instance + RAFT provider over a Yokan backend.
struct KvReplica {
    margo::InstancePtr instance;
    std::shared_ptr<YokanStateMachine> machine;
    std::shared_ptr<raft::Provider> raft;

    static Expected<KvReplica> create(const std::shared_ptr<mercury::Fabric>& fabric,
                                      const std::string& address,
                                      const std::vector<std::string>& peers,
                                      std::uint16_t provider_id,
                                      const raft::RaftConfig& config = {},
                                      const std::string& backend_type = "map");
    void shutdown();
};

/// Client API over the replicated store. All operations are linearizable
/// (they go through the RAFT log, including reads).
class ReplicatedKvClient {
  public:
    ReplicatedKvClient(margo::InstancePtr instance, std::vector<std::string> peers,
                       std::uint16_t provider_id)
    : m_raft(std::move(instance), std::move(peers), provider_id) {}

    Status put(const std::string& key, const std::string& value);
    Expected<std::string> get(const std::string& key);
    Status erase(const std::string& key);

    /// Store a batch through a SINGLE log entry ('B' command): one consensus
    /// round replicates and applies all pairs atomically.
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs);
    /// Linearizable batched read: the 'G' commands travel together in one
    /// raft/submit_multi RPC and one log append/replication round.
    Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys);

  private:
    raft::Client m_raft;
};

} // namespace mochi::composed
