#include "composed/autoscaler.hpp"
#include "common/logging.hpp"

#include <numeric>

namespace mochi::composed {

Expected<std::shared_ptr<PoolAutoscaler>> PoolAutoscaler::attach(margo::InstancePtr instance,
                                                                 AutoscalerConfig config) {
    if (config.min_xstreams == 0 || config.min_xstreams > config.max_xstreams)
        return Error{Error::Code::InvalidArgument, "invalid xstream bounds"};
    if (auto pool = instance->find_pool_by_name(config.pool); !pool) return pool.error();
    auto scaler = std::shared_ptr<PoolAutoscaler>(
        new PoolAutoscaler(std::move(instance), std::move(config)));
    scaler->m_instance->add_monitor(scaler);
    return scaler;
}

void PoolAutoscaler::on_progress_sample(std::size_t,
                                        const std::map<std::string, std::size_t>& pool_sizes) {
    if (!m_enabled.load()) return;
    auto it = pool_sizes.find(m_config.pool);
    if (it == pool_sizes.end()) return;
    double avg = 0;
    bool ready = false;
    {
        std::lock_guard lk{m_mutex};
        m_samples.push_back(static_cast<double>(it->second));
        if (m_samples.size() > m_config.window) m_samples.pop_front();
        if (m_cooldown > 0) {
            --m_cooldown;
            return;
        }
        if (m_samples.size() < m_config.window) return;
        avg = std::accumulate(m_samples.begin(), m_samples.end(), 0.0) /
              static_cast<double>(m_samples.size());
        ready = true;
    }
    // The sampler runs on the timer thread, and remove_xstream joins the
    // victim's OS thread — which could be the very ES a decision ULT runs
    // on. A separate thread sidesteps both hazards (decisions are rare),
    // but it must be *tracked*: a detached thread could call into the
    // instance after finalize started. on_shutdown() joins it while the
    // runtime is still alive, and no new decision starts once m_shutdown
    // is set.
    if (ready) {
        std::lock_guard tlk{m_thread_mutex};
        if (m_shutdown) return;
        if (m_decision.joinable()) m_decision.join();
        m_decision = std::thread([this, avg] { decide(avg); });
    }
}

void PoolAutoscaler::on_shutdown() {
    m_enabled.store(false);
    std::thread pending;
    {
        std::lock_guard tlk{m_thread_mutex};
        m_shutdown = true;
        pending = std::move(m_decision);
    }
    if (pending.joinable()) pending.join();
}

PoolAutoscaler::~PoolAutoscaler() { on_shutdown(); }

void PoolAutoscaler::decide(double avg_depth) {
    if (!m_enabled.load()) return;
    std::lock_guard lk{m_mutex};
    // Count the ESs currently serving the pool (managed or configured).
    auto pool = m_instance->find_pool_by_name(m_config.pool);
    if (!pool) return;
    std::size_t serving = (*pool)->subscriber_count();
    if (avg_depth > m_config.high_watermark && serving < m_config.max_xstreams) {
        auto es = json::Value::object();
        // m_name_seq only ever grows: even if a past remove_xstream failed
        // and its ES is still alive, a new scale-up never reuses its name.
        es["name"] = m_config.pool + "_auto" + std::to_string(m_name_seq++);
        es["scheduler"]["pools"].push_back(m_config.pool);
        if (m_instance->add_xstream_from_json(es).ok()) {
            m_managed_names.push_back(es["name"].as_string());
            m_managed.store(m_managed_names.size());
            m_scale_ups.fetch_add(1);
            m_cooldown = m_config.cooldown_samples;
            m_samples.clear();
            log::info("autoscaler", "pool '%s': queue avg %.1f -> added %s",
                      m_config.pool.c_str(), avg_depth, es["name"].as_string().c_str());
        }
    } else if (avg_depth < m_config.low_watermark && !m_managed_names.empty() &&
               serving > m_config.min_xstreams) {
        const std::string& name = m_managed_names.back();
        if (m_instance->remove_xstream(name).ok()) {
            log::info("autoscaler", "pool '%s': queue avg %.1f -> removed %s",
                      m_config.pool.c_str(), avg_depth, name.c_str());
            m_managed_names.pop_back();
            m_managed.store(m_managed_names.size());
            m_scale_downs.fetch_add(1);
            m_cooldown = m_config.cooldown_samples;
            m_samples.clear();
        }
    }
}

} // namespace mochi::composed
