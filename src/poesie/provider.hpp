// Poesie: Mochi's embedded language interpreter component (§3.2 names it as
// a composition partner: component M "could be further composed with
// Mochi's embedded language interpreter component (Poesie), to execute
// scripts on datasets"). A provider manages named interpreter VMs, each
// holding a persistent variable environment; clients submit Jx9 scripts for
// remote execution.
#pragma once

#include "bedrock/jx9.hpp"
#include "margo/provider.hpp"

#include <map>

namespace mochi::poesie {

/// Client-side handle to a remote interpreter provider.
class InterpreterHandle : public margo::ResourceHandle {
  public:
    InterpreterHandle(margo::InstancePtr instance, std::string address,
                      std::uint16_t provider_id)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "poesie") {}

    /// Create a named VM (fails if it exists).
    Status create_vm(const std::string& name) const;
    Status destroy_vm(const std::string& name) const;
    [[nodiscard]] Expected<std::vector<std::string>> list_vms() const;

    /// Execute a Jx9 script in `vm`; variables persist between calls.
    /// Returns the script's `return` value as JSON.
    [[nodiscard]] Expected<json::Value> execute(const std::string& vm,
                                                const std::string& code) const;

    /// Read one variable from a VM's environment.
    [[nodiscard]] Expected<json::Value> get_variable(const std::string& vm,
                                                     const std::string& name) const;
    /// Set one variable in a VM's environment.
    Status set_variable(const std::string& vm, const std::string& name,
                        const json::Value& value) const;
};

class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id,
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the VM table is destroyed.
    ~Provider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

  private:
    struct Vm {
        std::map<std::string, json::Value> env;
        std::uint64_t executions = 0;
    };

    mutable std::mutex m_mutex;
    std::map<std::string, Vm> m_vms;
};

/// Register Poesie's Bedrock module under "libpoesie.so" (idempotent).
void register_module();

} // namespace mochi::poesie
