#include "poesie/provider.hpp"
#include "bedrock/component.hpp"

namespace mochi::poesie {

// ---------------------------------------------------------------------------
// InterpreterHandle
// ---------------------------------------------------------------------------

Status InterpreterHandle::create_vm(const std::string& name) const {
    auto r = call<bool>("create_vm", name);
    if (!r) return r.error();
    return {};
}

Status InterpreterHandle::destroy_vm(const std::string& name) const {
    auto r = call<bool>("destroy_vm", name);
    if (!r) return r.error();
    return {};
}

Expected<std::vector<std::string>> InterpreterHandle::list_vms() const {
    auto r = call<std::vector<std::string>>("list_vms");
    if (!r) return std::move(r).error();
    return std::get<0>(std::move(*r));
}

Expected<json::Value> InterpreterHandle::execute(const std::string& vm,
                                                 const std::string& code) const {
    auto r = call<std::string>("execute", vm, code);
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

Expected<json::Value> InterpreterHandle::get_variable(const std::string& vm,
                                                      const std::string& name) const {
    auto r = call<std::string>("get_variable", vm, name);
    if (!r) return std::move(r).error();
    return json::Value::parse(std::get<0>(*r));
}

Status InterpreterHandle::set_variable(const std::string& vm, const std::string& name,
                                       const json::Value& value) const {
    auto r = call<bool>("set_variable", vm, name, value.dump());
    if (!r) return r.error();
    return {};
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::InstancePtr instance, std::uint16_t provider_id,
                   std::shared_ptr<abt::Pool> pool)
: margo::Provider(std::move(instance), provider_id, "poesie", std::move(pool)) {
    define("create_vm", [this](const margo::Request& req) {
        std::string name;
        if (!req.unpack(name)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (m_vms.count(name)) {
            req.respond_error(Error{Error::Code::AlreadyExists, "vm exists: " + name});
            return;
        }
        m_vms[name];
        req.respond_values(true);
    });
    define("destroy_vm", [this](const margo::Request& req) {
        std::string name;
        if (!req.unpack(name)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        if (m_vms.erase(name) == 0) {
            req.respond_error(Error{Error::Code::NotFound, "no vm named " + name});
            return;
        }
        req.respond_values(true);
    });
    define("list_vms", [this](const margo::Request& req) {
        std::lock_guard lk{m_mutex};
        std::vector<std::string> names;
        names.reserve(m_vms.size());
        for (const auto& [n, vm] : m_vms) names.push_back(n);
        req.respond_values(names);
    });
    define("execute", [this](const margo::Request& req) {
        std::string vm_name, code;
        if (!req.unpack(vm_name, code)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        // Copy the environment out, evaluate without holding the lock (the
        // script may run long), then merge back.
        std::map<std::string, json::Value> env;
        {
            std::lock_guard lk{m_mutex};
            auto it = m_vms.find(vm_name);
            if (it == m_vms.end()) {
                req.respond_error(Error{Error::Code::NotFound, "no vm named " + vm_name});
                return;
            }
            env = it->second.env;
        }
        auto result = bedrock::jx9::evaluate_env(code, env);
        if (!result) {
            req.respond_error(result.error());
            return;
        }
        {
            std::lock_guard lk{m_mutex};
            auto it = m_vms.find(vm_name);
            if (it != m_vms.end()) {
                it->second.env = std::move(env);
                ++it->second.executions;
            }
        }
        req.respond_values(result->dump());
    });
    define("get_variable", [this](const margo::Request& req) {
        std::string vm_name, var;
        if (!req.unpack(vm_name, var)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::lock_guard lk{m_mutex};
        auto it = m_vms.find(vm_name);
        if (it == m_vms.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no vm named " + vm_name});
            return;
        }
        auto vit = it->second.env.find(var);
        if (vit == it->second.env.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no variable $" + var});
            return;
        }
        req.respond_values(vit->second.dump());
    });
    define("set_variable", [this](const margo::Request& req) {
        std::string vm_name, var, value_str;
        if (!req.unpack(vm_name, var, value_str)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto value = json::Value::parse(value_str);
        if (!value) {
            req.respond_error(value.error());
            return;
        }
        std::lock_guard lk{m_mutex};
        auto it = m_vms.find(vm_name);
        if (it == m_vms.end()) {
            req.respond_error(Error{Error::Code::NotFound, "no vm named " + vm_name});
            return;
        }
        it->second.env[var] = std::move(*value);
        req.respond_values(true);
    });
}

json::Value Provider::get_config() const {
    std::lock_guard lk{m_mutex};
    auto c = json::Value::object();
    c["vms"] = json::Value::array();
    for (const auto& [name, vm] : m_vms) {
        auto v = json::Value::object();
        v["name"] = name;
        v["variables"] = vm.env.size();
        v["executions"] = vm.executions;
        c["vms"].push_back(std::move(v));
    }
    return c;
}

// ---------------------------------------------------------------------------
// Bedrock module
// ---------------------------------------------------------------------------

namespace {

class PoesieComponent : public bedrock::ComponentInstance {
  public:
    explicit PoesieComponent(const bedrock::ComponentArgs& args)
    : m_provider(args.instance, args.provider_id, args.pool) {}
    json::Value get_config() const override { return m_provider.get_config(); }

  private:
    Provider m_provider;
};

} // namespace

void register_module() {
    bedrock::ModuleDefinition module;
    module.type = "poesie";
    module.factory = [](const bedrock::ComponentArgs& args)
        -> Expected<std::unique_ptr<bedrock::ComponentInstance>> {
        return std::unique_ptr<bedrock::ComponentInstance>(new PoesieComponent(args));
    };
    bedrock::ModuleRegistry::provide("libpoesie.so", std::move(module));
}

} // namespace mochi::poesie
