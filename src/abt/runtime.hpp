// The ULT runtime: pools + execution streams + timer, dynamically
// reconfigurable at run time (the "more dynamic run time" of §5 of the
// paper). Margo builds directly on this; each simulated service process owns
// one Runtime.
#pragma once

#include "abt/executor.hpp"
#include "abt/pool.hpp"
#include "abt/timer.hpp"
#include "abt/ult.hpp"
#include "common/expected.hpp"
#include "common/json.hpp"
#include "common/pool_alloc.hpp"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mochi::abt {

class Runtime;
template <typename T> class Eventual;

/// An execution stream: an OS thread running a scheduler that pulls ULTs
/// from an ordered list of pools (Argobots "xstream", Figure 2).
///
/// Virtual mode: constructed with an Executor, the xstream spawns no thread
/// of its own — it registers with the shared executor, whose worker crew
/// services its pools. Everything else (pool subscription, config
/// round-trip, introspection) behaves identically, so the rest of the stack
/// cannot tell the difference.
class Xstream {
  public:
    Xstream(std::string name, std::string sched_type,
            std::vector<std::shared_ptr<Pool>> pools, Runtime* rt,
            Executor* executor = nullptr);
    ~Xstream();

    Xstream(const Xstream&) = delete;
    Xstream& operator=(const Xstream&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] const std::string& scheduler_type() const noexcept { return m_sched_type; }
    [[nodiscard]] std::vector<std::string> pool_names() const;
    [[nodiscard]] bool uses_pool(const Pool* p) const;

    /// Wake the scheduler (called by pools on push).
    void notify();

    /// Ask the scheduler to exit after the current ULT and join the thread.
    void stop_and_join();

    /// ULTs executed by this stream so far.
    [[nodiscard]] std::uint64_t ults_executed() const noexcept { return m_executed.load(); }

    // Internal (Executor workers): pop one ULT from this stream's pools.
    [[nodiscard]] UltPtr try_pop();
    // Internal (Executor workers): account one executed ULT.
    void count_executed() noexcept { m_executed.fetch_add(1, std::memory_order_relaxed); }

  private:
    void scheduler_loop();
    void run_one(const UltPtr& ult);

    std::string m_name;
    std::string m_sched_type;
    Runtime* m_runtime;

    mutable std::mutex m_pools_mutex;
    std::vector<std::shared_ptr<Pool>> m_pools;

    std::mutex m_cv_mutex;
    std::condition_variable m_cv;
    bool m_wake_pending = false;
    std::atomic<bool> m_stop{false};
    std::atomic<std::uint64_t> m_executed{0};
    std::thread m_thread;
    Executor* m_executor = nullptr;               ///< non-null => virtual mode
    std::shared_ptr<Executor::Entry> m_entry;     ///< executor registration
};

/// Handle to a posted ULT; join() blocks (ULT-aware) until it terminates.
class ThreadHandle {
  public:
    ThreadHandle() = default;
    ThreadHandle(UltPtr ult, std::shared_ptr<Eventual<void>> event)
    : m_ult(std::move(ult)), m_event(std::move(event)) {}

    [[nodiscard]] bool valid() const noexcept { return m_ult != nullptr; }
    void join();

  private:
    UltPtr m_ult;
    std::shared_ptr<Eventual<void>> m_event;
};

/// Owns the pools, execution streams, stack pool and timer of one process.
///
/// Created from a JSON configuration matching the paper's Listing 2:
///   { "pools": [ {"name": "...", "kind": "fifo_wait", "access": "mpmc"} ],
///     "xstreams": [ {"name": "...", "scheduler":
///                     {"type": "basic", "pools": ["..."]}} ] }
/// and reconfigurable afterwards with add/remove operations whose validity
/// is always checked (§5 Observation 2).
/// Shared execution resources for lightweight runtimes: with `executor`
/// set, every xstream is virtual (serviced by the executor's worker crew,
/// no OS thread per ES); with `parent_timer` set, the runtime's timer is a
/// child multiplexed onto the parent (no timer thread per runtime). Both
/// must outlive the runtime. This is what lets one test process run 100+
/// margo instances at a fixed thread count.
struct SharedExecution {
    Executor* executor = nullptr;
    Timer* parent_timer = nullptr;
};

class Runtime : public std::enable_shared_from_this<Runtime> {
  public:
    static Expected<std::shared_ptr<Runtime>> create(const json::Value& config,
                                                     SharedExecution shared = {});
    static std::shared_ptr<Runtime> create_default();

    ~Runtime();
    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    // -- introspection -------------------------------------------------------

    [[nodiscard]] Expected<std::shared_ptr<Pool>> find_pool(std::string_view name) const;
    [[nodiscard]] std::vector<std::string> pool_names() const;
    [[nodiscard]] std::vector<std::string> xstream_names() const;
    [[nodiscard]] std::size_t num_pools() const;
    [[nodiscard]] std::size_t num_xstreams() const;

    /// Current configuration as JSON (round-trips through create()).
    [[nodiscard]] json::Value config() const;

    // -- online reconfiguration (§5) -----------------------------------------

    Expected<std::shared_ptr<Pool>> add_pool(const json::Value& pool_config);
    Status remove_pool(std::string_view name);
    Status add_xstream(const json::Value& xstream_config);
    Status remove_xstream(std::string_view name);

    // -- work submission -----------------------------------------------------

    /// Post a ULT to a pool; fire-and-forget.
    void post(const std::shared_ptr<Pool>& pool, std::function<void()> fn);

    /// Allocation-lean post for the RPC hot path: the task's state travels
    /// in Ult::task_payload and `fn` receives payload.get(). The wrapper
    /// closure captures only the function pointer, so it fits
    /// std::function's small-buffer optimization, and the ULT descriptor
    /// itself comes from a free list — a warm post performs zero heap
    /// allocations. If the runtime is finalized before the ULT runs, the
    /// payload is destroyed without `fn` ever running. `priority` orders the
    /// ULT inside a `prio`/`prio_wait` pool (higher runs first; FIFO pools
    /// ignore it) — Margo's QoS dispatch derives it from the tenant's
    /// weighted-fair-queueing deficit.
    void post_with_payload(const std::shared_ptr<Pool>& pool, std::shared_ptr<void> payload,
                           void (*fn)(void*), int priority = 0);

    /// Post a ULT and get a joinable handle.
    ThreadHandle post_thread(const std::shared_ptr<Pool>& pool, std::function<void()> fn);

    /// ULT descriptors served from the free list instead of the heap
    /// (feeds margo_pool_recycled_total).
    [[nodiscard]] std::uint64_t ult_pool_recycled() const noexcept {
        return m_ult_pool->recycled();
    }

    /// The default pool (first pool of the configuration).
    [[nodiscard]] std::shared_ptr<Pool> primary_pool() const;

    Timer& timer() noexcept { return *m_timer; }

    /// Sleep the calling ULT (or OS thread) for `d`.
    void sleep_for(std::chrono::microseconds d);

    /// Stop all execution streams and the timer, then *drain* any ULTs left
    /// in the pools by running them inline on the calling thread (bounded),
    /// so ThreadHandle::join() and on_terminate events always complete even
    /// for work racing the teardown. ULTs that remain blocked forever are
    /// leaked, never joined. Idempotent.
    void finalize();

    // Internal: run one ULT to its next suspension point on the calling
    // thread (the scheduler core, shared by Xstream and finalize's drain).
    // Reentrant: saves/restores the scheduling thread-locals.
    void execute_ult(const UltPtr& ult);

    // Internal: stack recycling for ULT fibers.
    char* acquire_stack(std::size_t size);
    void release_stack(char* stack, std::size_t size);

    static constexpr std::size_t k_default_stack_size = 128 * 1024;

  private:
    Runtime() = default;
    /// A fresh Ready ULT whose descriptor (and shared_ptr control block)
    /// come from m_ult_pool.
    [[nodiscard]] UltPtr make_ult(const std::shared_ptr<Pool>& pool);
    /// Run queued ULTs inline until all `pools` are empty or `budget` ULT
    /// slices have executed; returns the number of slices run.
    std::size_t drain_pools(const std::vector<std::shared_ptr<Pool>>& pools,
                            std::size_t budget);
    Status apply_config(const json::Value& config);
    Status add_xstream_locked(const json::Value& xstream_config);
    Expected<std::shared_ptr<Pool>> add_pool_locked(const json::Value& pool_config);

    mutable std::mutex m_mutex;
    // Ordered by insertion so config() round-trips deterministically.
    std::vector<std::shared_ptr<Pool>> m_pools;
    std::vector<std::unique_ptr<Xstream>> m_xstreams;
    std::unique_ptr<Timer> m_timer;
    Executor* m_executor = nullptr; ///< non-null => xstreams are virtual
    bool m_finalized = false;

    std::mutex m_stack_mutex;
    std::vector<char*> m_free_stacks; // all of k_default_stack_size

    /// Free list for Ult descriptors (allocate_shared control block + Ult in
    /// one recycled block). shared_ptr-held: a ThreadHandle's UltPtr may be
    /// the last owner after the Runtime is gone, and the block must still
    /// return somewhere valid.
    std::shared_ptr<FreeList> m_ult_pool = std::make_shared<FreeList>();
};

} // namespace mochi::abt
