#include "abt/runtime.hpp"
#include "abt/sync.hpp"
#include "common/logging.hpp"

#include <cassert>

// ThreadSanitizer cannot follow raw ucontext switches: without annotations
// its shadow-stack bookkeeping dereferences stale state after swapcontext
// and crashes (observed as a SEGV inside libtsan on the first fiber switch).
// The fiber API below tells TSan about every stack we switch to.
#if defined(__SANITIZE_THREAD__)
#define MOCHI_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MOCHI_TSAN_FIBERS 1
#endif
#endif
#ifndef MOCHI_TSAN_FIBERS
#define MOCHI_TSAN_FIBERS 0
#endif
#if MOCHI_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace mochi::abt {

// ---------------------------------------------------------------------------
// ULT machinery: the fiber context switch and the suspend/resume protocol.
// ---------------------------------------------------------------------------

namespace {

#if MOCHI_TSAN_FIBERS
#define MOCHI_NO_TSAN __attribute__((no_sanitize_thread, noinline))
#else
#define MOCHI_NO_TSAN inline
#endif

thread_local Ult* tl_current_ult = nullptr;
thread_local ucontext_t* tl_sched_ctx = nullptr;

// The scheduling thread-locals are only ever touched by their owning OS
// thread and by fibers currently executing on it, so they are race-free by
// construction. They must still go through these uninstrumented accessors:
// glibc recycles the stack+TLS block of exited threads, and TSan attributes
// fiber-context accesses to the fiber's own history, so a recycled TLS
// address would otherwise pair a dead fiber's access with a fresh thread's
// write and produce false data-race reports.
MOCHI_NO_TSAN Ult* cur_ult_get() noexcept { return tl_current_ult; }
MOCHI_NO_TSAN void cur_ult_set(Ult* u) noexcept { tl_current_ult = u; }
MOCHI_NO_TSAN ucontext_t* sched_ctx_get() noexcept { return tl_sched_ctx; }
MOCHI_NO_TSAN void sched_ctx_set(ucontext_t* c) noexcept { tl_sched_ctx = c; }
#if MOCHI_TSAN_FIBERS
// TSan fiber handle of the context a ULT must switch back to (the scheduler
// frame that swapped it in). Mirrors tl_sched_ctx.
thread_local void* tl_sched_fiber = nullptr;
MOCHI_NO_TSAN void* sched_fiber_get() noexcept { return tl_sched_fiber; }
MOCHI_NO_TSAN void sched_fiber_set(void* f) noexcept { tl_sched_fiber = f; }
#endif

// Announce to TSan that we are about to switch to the scheduler frame. Must
// immediately precede every ULT -> scheduler swapcontext.
inline void tsan_switch_to_sched() {
#if MOCHI_TSAN_FIBERS
    __tsan_switch_to_fiber(sched_fiber_get(), 0);
#endif
}

// Trampoline entered on a fresh fiber stack. Reads the ULT via the
// thread-local, which the scheduler sets immediately before swapping in.
void ult_trampoline() {
    Ult* self = cur_ult_get();
    self->fn();
    self->fn = nullptr; // destroy captured state while the fiber is alive
    self->task_payload.reset();
    self->state.store(UltState::Terminated);
    tsan_switch_to_sched();
    swapcontext(&self->ctx, sched_ctx_get());
    // unreachable
}

} // namespace

Ult* current_ult() noexcept { return cur_ult_get(); }

void yield() {
    Ult* self = cur_ult_get();
    if (self == nullptr) {
        std::this_thread::yield();
        return;
    }
    self->state.store(UltState::Yielding);
    tsan_switch_to_sched();
    swapcontext(&self->ctx, sched_ctx_get());
}

void suspend_current() {
    Ult* self = cur_ult_get();
    assert(self != nullptr && "suspend_current outside ULT context");
    UltState expected = UltState::Running;
    if (!self->state.compare_exchange_strong(expected, UltState::Blocking)) {
        // resume() raced us and already arrived: consume it without switching.
        assert(expected == UltState::ResumeRequested);
        self->state.store(UltState::Running);
        return;
    }
    tsan_switch_to_sched();
    swapcontext(&self->ctx, sched_ctx_get());
}

void resume(Ult* ult) {
    for (;;) {
        UltState s = ult->state.load();
        switch (s) {
        case UltState::Blocked: {
            UltState expected = UltState::Blocked;
            if (ult->state.compare_exchange_strong(expected, UltState::Ready)) {
                // The scheduler parked a self-reference before publishing
                // the Blocked state; hand it back to the pool.
                UltPtr keepalive = std::move(ult->self_keepalive);
                assert(keepalive != nullptr);
                Pool* pool = ult->home_pool;
                pool->push(std::move(keepalive));
                return;
            }
            break; // state changed under us; retry
        }
        case UltState::Running:
        case UltState::Blocking: {
            UltState expected = s;
            if (ult->state.compare_exchange_strong(expected, UltState::ResumeRequested))
                return; // suspend path / scheduler will requeue
            break;
        }
        case UltState::ResumeRequested:
            return; // already requested
        default:
            assert(false && "resume() on a ULT that is not suspending");
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Xstream: scheduler thread
// ---------------------------------------------------------------------------

Xstream::Xstream(std::string name, std::string sched_type,
                 std::vector<std::shared_ptr<Pool>> pools, Runtime* rt,
                 Executor* executor)
: m_name(std::move(name)), m_sched_type(std::move(sched_type)),
  m_runtime(rt), m_pools(std::move(pools)), m_executor(executor) {
    for (auto& p : m_pools) p->subscribe(this);
    if (m_executor != nullptr)
        m_entry = m_executor->register_xstream(this); // virtual: no own thread
    else
        m_thread = std::thread([this] { scheduler_loop(); });
}

Xstream::~Xstream() { stop_and_join(); }

std::vector<std::string> Xstream::pool_names() const {
    std::lock_guard lk{m_pools_mutex};
    std::vector<std::string> names;
    names.reserve(m_pools.size());
    for (const auto& p : m_pools) names.push_back(p->name());
    return names;
}

bool Xstream::uses_pool(const Pool* pool) const {
    std::lock_guard lk{m_pools_mutex};
    for (const auto& p : m_pools)
        if (p.get() == pool) return true;
    return false;
}

void Xstream::notify() {
    if (m_executor != nullptr) {
        m_executor->notify();
        return;
    }
    {
        std::lock_guard lk{m_cv_mutex};
        m_wake_pending = true;
    }
    m_cv.notify_one();
}

UltPtr Xstream::try_pop() {
    std::lock_guard lk{m_pools_mutex};
    for (auto& p : m_pools)
        if (UltPtr ult = p->pop()) return ult;
    return nullptr;
}

void Xstream::stop_and_join() {
    m_stop.store(true);
    if (m_executor != nullptr) {
        // Quiesce: after unregister() no executor worker touches this
        // xstream, giving the same guarantee as joining a real ES thread.
        m_executor->unregister(m_entry);
        m_entry.reset();
    } else {
        notify();
        if (m_thread.joinable()) {
            assert(std::this_thread::get_id() != m_thread.get_id() &&
                   "an execution stream cannot join itself");
            m_thread.join();
        }
    }
    std::lock_guard lk{m_pools_mutex};
    for (auto& p : m_pools) p->unsubscribe(this);
    m_pools.clear();
}

void Xstream::scheduler_loop() {
    using namespace std::chrono_literals;
    while (!m_stop.load()) {
        UltPtr ult;
        {
            std::lock_guard lk{m_pools_mutex};
            for (auto& p : m_pools) {
                ult = p->pop();
                if (ult) break;
            }
        }
        if (ult) {
            run_one(ult);
            m_executed.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        std::unique_lock lk{m_cv_mutex};
        // Timed wait bounds the latency of observing a stop request or a
        // pool attached after the emptiness check above.
        m_cv.wait_for(lk, 500us, [&] { return m_wake_pending || m_stop.load(); });
        m_wake_pending = false;
    }
}

void Xstream::run_one(const UltPtr& ult) { m_runtime->execute_ult(ult); }

// ---------------------------------------------------------------------------
// ThreadHandle
// ---------------------------------------------------------------------------

void ThreadHandle::join() {
    if (!m_ult) return;
    if (m_event) m_event->wait();
    m_ult.reset();
    m_event.reset();
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Expected<std::shared_ptr<Runtime>> Runtime::create(const json::Value& config,
                                                   SharedExecution shared) {
    auto rt = std::shared_ptr<Runtime>(new Runtime());
    rt->m_executor = shared.executor;
    rt->m_timer = shared.parent_timer != nullptr
                      ? std::make_unique<Timer>(*shared.parent_timer)
                      : std::make_unique<Timer>();
    if (auto st = rt->apply_config(config); !st.ok()) {
        rt->finalize();
        return st.error();
    }
    return rt;
}

std::shared_ptr<Runtime> Runtime::create_default() {
    auto result = create(json::Value{});
    assert(result.has_value());
    return std::move(result).value();
}

Runtime::~Runtime() { finalize(); }

Status Runtime::apply_config(const json::Value& config) {
    json::Value cfg = config;
    if (cfg.is_null()) cfg = json::Value::object();
    if (!cfg.is_object())
        return Error{Error::Code::InvalidArgument, "argobots config must be an object"};
    if (!cfg.contains("pools")) {
        auto pool = json::Value::object();
        pool["name"] = "__primary__";
        pool["type"] = "fifo_wait";
        pool["access"] = "mpmc";
        cfg["pools"].push_back(pool);
    }
    if (!cfg.contains("xstreams")) {
        auto es = json::Value::object();
        es["name"] = "__primary__";
        es["scheduler"]["type"] = "basic_wait";
        es["scheduler"]["pools"].push_back(cfg["pools"][std::size_t{0}].get_string("name"));
        cfg["xstreams"].push_back(es);
    }
    std::lock_guard lk{m_mutex};
    for (const auto& p : cfg["pools"].as_array()) {
        if (auto r = add_pool_locked(p); !r) return r.error();
    }
    for (const auto& x : cfg["xstreams"].as_array()) {
        if (auto st = add_xstream_locked(x); !st.ok()) return st;
    }
    if (m_xstreams.empty())
        return Error{Error::Code::InvalidArgument, "configuration has no execution stream"};
    return {};
}

Expected<std::shared_ptr<Pool>> Runtime::find_pool(std::string_view name) const {
    std::lock_guard lk{m_mutex};
    for (const auto& p : m_pools)
        if (p->name() == name) return p;
    return Error{Error::Code::NotFound, "no pool named '" + std::string(name) + "'"};
}

std::vector<std::string> Runtime::pool_names() const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> names;
    names.reserve(m_pools.size());
    for (const auto& p : m_pools) names.push_back(p->name());
    return names;
}

std::vector<std::string> Runtime::xstream_names() const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> names;
    names.reserve(m_xstreams.size());
    for (const auto& x : m_xstreams) names.push_back(x->name());
    return names;
}

std::size_t Runtime::num_pools() const {
    std::lock_guard lk{m_mutex};
    return m_pools.size();
}

std::size_t Runtime::num_xstreams() const {
    std::lock_guard lk{m_mutex};
    return m_xstreams.size();
}

json::Value Runtime::config() const {
    std::lock_guard lk{m_mutex};
    auto cfg = json::Value::object();
    cfg["pools"] = json::Value::array();
    for (const auto& p : m_pools) {
        auto pj = json::Value::object();
        pj["name"] = p->name();
        pj["type"] = to_string(p->kind());
        pj["access"] = to_string(p->access());
        cfg["pools"].push_back(std::move(pj));
    }
    cfg["xstreams"] = json::Value::array();
    for (const auto& x : m_xstreams) {
        auto xj = json::Value::object();
        xj["name"] = x->name();
        xj["scheduler"]["type"] = x->scheduler_type();
        auto pools = json::Value::array();
        for (const auto& pn : x->pool_names()) pools.push_back(pn);
        xj["scheduler"]["pools"] = std::move(pools);
        cfg["xstreams"].push_back(std::move(xj));
    }
    return cfg;
}

Expected<std::shared_ptr<Pool>> Runtime::add_pool_locked(const json::Value& pool_config) {
    if (!pool_config.is_object())
        return Error{Error::Code::InvalidArgument, "pool config must be an object"};
    std::string name = pool_config.get_string("name");
    if (name.empty())
        return Error{Error::Code::InvalidArgument, "pool config requires a name"};
    for (const auto& p : m_pools)
        if (p->name() == name)
            return Error{Error::Code::AlreadyExists, "a pool named '" + name + "' already exists"};
    std::string kind_str = pool_config.get_string("type", pool_config.get_string("kind", "fifo_wait"));
    auto kind = pool_kind_from_string(kind_str);
    if (!kind) return kind.error();
    auto access = pool_access_from_string(pool_config.get_string("access", "mpmc"));
    if (!access) return access.error();
    auto pool = std::make_shared<Pool>(name, *kind, *access);
    m_pools.push_back(pool);
    return pool;
}

Expected<std::shared_ptr<Pool>> Runtime::add_pool(const json::Value& pool_config) {
    std::lock_guard lk{m_mutex};
    return add_pool_locked(pool_config);
}

Status Runtime::remove_pool(std::string_view name) {
    std::lock_guard lk{m_mutex};
    auto it = std::find_if(m_pools.begin(), m_pools.end(),
                           [&](const auto& p) { return p->name() == name; });
    if (it == m_pools.end())
        return Error{Error::Code::NotFound, "no pool named '" + std::string(name) + "'"};
    for (const auto& x : m_xstreams) {
        if (x->uses_pool(it->get()))
            return Error{Error::Code::InvalidState,
                         "pool '" + std::string(name) + "' is in use by xstream '" + x->name() + "'"};
    }
    if ((*it)->size() != 0)
        return Error{Error::Code::InvalidState,
                     "pool '" + std::string(name) + "' still has queued work"};
    m_pools.erase(it);
    return {};
}

Status Runtime::add_xstream_locked(const json::Value& xstream_config) {
    if (!xstream_config.is_object())
        return Error{Error::Code::InvalidArgument, "xstream config must be an object"};
    std::string name = xstream_config.get_string("name");
    if (name.empty())
        return Error{Error::Code::InvalidArgument, "xstream config requires a name"};
    for (const auto& x : m_xstreams)
        if (x->name() == name)
            return Error{Error::Code::AlreadyExists,
                         "an xstream named '" + name + "' already exists"};
    const json::Value& sched = xstream_config["scheduler"];
    std::string sched_type = sched.get_string("type", "basic_wait");
    if (sched_type != "basic" && sched_type != "basic_wait")
        return Error{Error::Code::InvalidArgument, "unknown scheduler type: " + sched_type};
    std::vector<std::shared_ptr<Pool>> pools;
    if (!sched["pools"].is_array() || sched["pools"].size() == 0)
        return Error{Error::Code::InvalidArgument,
                     "xstream '" + name + "' needs at least one pool"};
    for (const auto& pn : sched["pools"].as_array()) {
        if (!pn.is_string())
            return Error{Error::Code::InvalidArgument, "scheduler pools must be names"};
        auto found = std::find_if(m_pools.begin(), m_pools.end(),
                                  [&](const auto& p) { return p->name() == pn.as_string(); });
        if (found == m_pools.end())
            return Error{Error::Code::NotFound,
                         "xstream '" + name + "' references unknown pool '" + pn.as_string() + "'"};
        pools.push_back(*found);
    }
    m_xstreams.push_back(
        std::make_unique<Xstream>(name, sched_type, std::move(pools), this, m_executor));
    return {};
}

Status Runtime::add_xstream(const json::Value& xstream_config) {
    std::lock_guard lk{m_mutex};
    return add_xstream_locked(xstream_config);
}

Status Runtime::remove_xstream(std::string_view name) {
    std::unique_ptr<Xstream> victim;
    {
        std::lock_guard lk{m_mutex};
        auto it = std::find_if(m_xstreams.begin(), m_xstreams.end(),
                               [&](const auto& x) { return x->name() == name; });
        if (it == m_xstreams.end())
            return Error{Error::Code::NotFound, "no xstream named '" + std::string(name) + "'"};
        // Note: removing an xstream may leave pools without a consumer; their
        // queued ULTs simply wait until another xstream is attached (tested
        // in AbtRuntime.OrphanedPoolResumesWhenXstreamAdded). The validity
        // rule the paper states (§5) is on the pool side: a pool *in use by
        // an ES* cannot be removed, which remove_pool enforces.
        victim = std::move(*it);
        m_xstreams.erase(it);
    }
    victim->stop_and_join(); // outside the lock: running ULTs may call into us
    return {};
}

UltPtr Runtime::make_ult(const std::shared_ptr<Pool>& pool) {
    auto ult = std::allocate_shared<Ult>(PoolAllocator<Ult>{m_ult_pool});
    ult->home_pool = pool.get();
    ult->runtime = this;
    ult->state.store(UltState::Ready);
    return ult;
}

void Runtime::post(const std::shared_ptr<Pool>& pool, std::function<void()> fn) {
    auto ult = make_ult(pool);
    ult->fn = std::move(fn);
    pool->push(std::move(ult));
}

void Runtime::post_with_payload(const std::shared_ptr<Pool>& pool, std::shared_ptr<void> payload,
                                void (*fn)(void*), int priority) {
    auto ult = make_ult(pool);
    ult->task_payload = std::move(payload);
    // Captures one function pointer (8 bytes, trivially copyable): stays in
    // std::function's inline buffer. The payload rides in the descriptor.
    ult->fn = [fn] { fn(current_ult()->task_payload.get()); };
    pool->push(std::move(ult), priority);
}

ThreadHandle Runtime::post_thread(const std::shared_ptr<Pool>& pool, std::function<void()> fn) {
    auto ult = make_ult(pool);
    auto event = std::make_shared<Eventual<void>>();
    ult->fn = std::move(fn);
    ult->on_terminate = [event] { event->set(); };
    ThreadHandle handle{ult, event};
    pool->push(std::move(ult));
    return handle;
}

std::shared_ptr<Pool> Runtime::primary_pool() const {
    std::lock_guard lk{m_mutex};
    assert(!m_pools.empty());
    return m_pools.front();
}

void Runtime::sleep_for(std::chrono::microseconds d) {
    if (!in_ult()) {
        std::this_thread::sleep_for(d);
        return;
    }
    Eventual<void> ev;
    m_timer->schedule(d, [&ev] { ev.set(); });
    ev.wait();
}

void Runtime::execute_ult(const UltPtr& ult) {
    Ult* u = ult.get();
    if (u->stack == nullptr) {
        u->stack_size = Runtime::k_default_stack_size;
        u->stack = acquire_stack(u->stack_size);
        getcontext(&u->ctx);
        u->ctx.uc_stack.ss_sp = u->stack;
        u->ctx.uc_stack.ss_size = u->stack_size;
        u->ctx.uc_link = nullptr;
        makecontext(&u->ctx, ult_trampoline, 0);
#if MOCHI_TSAN_FIBERS
        u->tsan_fiber = __tsan_create_fiber(0);
#endif
    }
    // Save and restore the scheduling thread-locals: execute_ult must be
    // reentrant because finalize() drains pools inline, possibly from inside
    // a ULT of another runtime (e.g. a handler tearing down a second margo
    // instance).
    Ult* prev_ult = cur_ult_get();
    ucontext_t* prev_sched_ctx = sched_ctx_get();
    ucontext_t sched_ctx;
    sched_ctx_set(&sched_ctx);
    cur_ult_set(u);
    u->state.store(UltState::Running);
#if MOCHI_TSAN_FIBERS
    void* prev_sched_fiber = sched_fiber_get();
    sched_fiber_set(__tsan_get_current_fiber());
    __tsan_switch_to_fiber(u->tsan_fiber, 0);
#endif
    swapcontext(&sched_ctx, &u->ctx);
#if MOCHI_TSAN_FIBERS
    sched_fiber_set(prev_sched_fiber);
#endif
    cur_ult_set(prev_ult);
    sched_ctx_set(prev_sched_ctx);

    switch (u->state.load()) {
    case UltState::Terminated: {
#if MOCHI_TSAN_FIBERS
        if (u->tsan_fiber) {
            __tsan_destroy_fiber(u->tsan_fiber);
            u->tsan_fiber = nullptr;
        }
#endif
        release_stack(u->stack, u->stack_size);
        u->stack = nullptr;
        u->done.store(true);
        if (u->on_terminate) {
            auto fn = std::move(u->on_terminate);
            u->on_terminate = nullptr;
            fn();
        }
        break;
    }
    case UltState::Yielding:
        u->state.store(UltState::Ready);
        u->home_pool->push(ult);
        break;
    case UltState::Blocking: {
        // Park a self-reference so the ULT survives while blocked, then
        // publish the Blocked state. If resume() raced us, requeue.
        u->self_keepalive = ult;
        UltState expected = UltState::Blocking;
        if (!u->state.compare_exchange_strong(expected, UltState::Blocked)) {
            assert(expected == UltState::ResumeRequested);
            u->self_keepalive.reset();
            u->state.store(UltState::Ready);
            u->home_pool->push(ult);
        }
        break;
    }
    case UltState::ResumeRequested:
        // resume() arrived between the ULT's state store and our inspection;
        // treat as a completed suspend/resume pair and requeue.
        u->self_keepalive.reset();
        u->state.store(UltState::Ready);
        u->home_pool->push(ult);
        break;
    default:
        assert(false && "unexpected ULT state after context switch");
    }
}

std::size_t Runtime::drain_pools(const std::vector<std::shared_ptr<Pool>>& pools,
                                 std::size_t budget) {
    std::size_t executed = 0;
    bool progress = true;
    while (progress && executed < budget) {
        progress = false;
        for (const auto& p : pools) {
            while (executed < budget) {
                UltPtr ult = p->pop();
                if (!ult) break;
                execute_ult(ult);
                ++executed;
                progress = true;
            }
        }
    }
    return executed;
}

void Runtime::finalize() {
    std::vector<std::unique_ptr<Xstream>> xstreams;
    std::vector<std::shared_ptr<Pool>> pools;
    {
        std::lock_guard lk{m_mutex};
        if (m_finalized) return;
        m_finalized = true;
        xstreams = std::move(m_xstreams);
        m_xstreams.clear();
        pools = m_pools;
    }
    for (auto& x : xstreams) x->stop_and_join();
    // The streams stopped mid-flight: pools may still hold ULTs that were
    // posted but never ran, or that were resumed while the streams were
    // shutting down. Dropping them would leave every ThreadHandle::join()
    // (and any Eventual their on_terminate would set) hung forever — the
    // teardown dead-end this drain exists to prevent. Run them inline on
    // this thread instead, bounded so a ULT that endlessly reposts work
    // cannot wedge finalize. The timer is still live during the first pass
    // so drained ULTs may sleep/timeout normally.
    constexpr std::size_t k_drain_budget = 100000;
    std::size_t executed = drain_pools(pools, k_drain_budget);
    if (m_timer) m_timer->stop();
    // Timer callbacks that fired during the first pass may have resumed more
    // ULTs; sweep again now that no new wakeups can arrive.
    if (executed < k_drain_budget)
        executed += drain_pools(pools, k_drain_budget - executed);
    // Backstop: anything still queued (budget exhausted) is aborted without
    // running. Its join event still completes; objects alive on a partially
    // executed fiber stack are leaked deliberately. on_terminate may resume
    // further ULTs into any pool, hence the outer fixpoint loop.
    bool aborted = true;
    while (aborted) {
        aborted = false;
        for (const auto& p : pools) {
            while (UltPtr ult = p->pop()) {
                aborted = true;
                Ult* u = ult.get();
#if MOCHI_TSAN_FIBERS
                if (u->tsan_fiber) {
                    __tsan_destroy_fiber(u->tsan_fiber);
                    u->tsan_fiber = nullptr;
                }
#endif
                if (u->stack != nullptr) {
                    release_stack(u->stack, u->stack_size);
                    u->stack = nullptr;
                }
                u->fn = nullptr;
                u->task_payload.reset(); // destroy the un-run task's state
                u->state.store(UltState::Terminated);
                u->done.store(true);
                if (u->on_terminate) {
                    auto fn = std::move(u->on_terminate);
                    u->on_terminate = nullptr;
                    fn();
                }
            }
        }
    }
    std::lock_guard slk{m_stack_mutex};
    for (char* s : m_free_stacks) delete[] s;
    m_free_stacks.clear();
}

char* Runtime::acquire_stack(std::size_t size) {
    if (size == k_default_stack_size) {
        std::lock_guard lk{m_stack_mutex};
        if (!m_free_stacks.empty()) {
            char* s = m_free_stacks.back();
            m_free_stacks.pop_back();
            return s;
        }
    }
    return new char[size];
}

void Runtime::release_stack(char* stack, std::size_t size) {
    constexpr std::size_t k_max_cached = 64;
    if (size == k_default_stack_size) {
        std::lock_guard lk{m_stack_mutex};
        if (m_free_stacks.size() < k_max_cached) {
            m_free_stacks.push_back(stack);
            return;
        }
    }
    delete[] stack;
}

} // namespace mochi::abt
