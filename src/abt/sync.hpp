// ULT-aware synchronization primitives. Every primitive supports *mixed*
// waiters: a ULT blocks by suspending its fiber (freeing the execution
// stream to run other work — the property that makes Margo handlers cheap),
// while a plain OS thread blocks on a condition variable. This mirrors
// Argobots/Margo semantics where e.g. margo_wait() may be called both from
// handler ULTs and from the application's main thread.
#pragma once

#include "abt/runtime.hpp"
#include "abt/timer.hpp"
#include "abt/ult.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace mochi::abt {

namespace detail {

/// One parked waiter. Lives on the waiter's stack; the contract is that a
/// node is only touched (a) under the owning primitive's lock while it is
/// still linked, or (b) by the waiter itself after being woken.
struct WaitNode {
    Ult* ult = nullptr;               ///< nullptr => external-thread waiter
    std::atomic<bool> signaled{false};
    bool timed_out = false;
};

/// Wake a single node: marks it signaled, then resumes the fiber or pokes
/// the external-thread condvar. Call *without* holding the primitive lock;
/// `mtx` is the primitive's internal mutex (the one external waiters sleep
/// on). For an external-thread waiter the signaled flag must be published
/// while holding that mutex: the waiter holds it from predicate check to
/// sleep, so a lock-free store could land in between and the notify would
/// be lost — the waiter then sleeps forever on an already-true predicate.
inline void wake_node(WaitNode* node, std::condition_variable& cv, std::mutex& mtx) {
    Ult* u = node->ult;
    if (u != nullptr) {
        node->signaled.store(true, std::memory_order_release);
        resume(u);
    } else {
        {
            std::lock_guard lk{mtx};
            node->signaled.store(true, std::memory_order_release);
        }
        cv.notify_all();
    }
}

/// Wake every waiter of a one-shot primitive without touching the primitive
/// after its lock drops. Call with the lock held and readiness already
/// published under it. The moment the lock is released, any waiter that
/// observed readiness may return and destroy the primitive (e.g. the
/// stack-local Eventual in Runtime::sleep_for), so external-thread signaling
/// and the condvar broadcast both happen under the lock. Suspended-fiber
/// nodes live on stacks that stay parked until resumed, and resuming
/// touches only the node and runtime structures — never the primitive — so
/// fibers are woken after the unlock, where resume() is safe to run.
inline void wake_all_and_release(std::unique_lock<std::mutex> lk, std::condition_variable& cv,
                                 std::deque<WaitNode*> waiters) {
    // Partition under the lock: an external-thread waiter may wake (via the
    // notify below) and destroy its stack-resident node the moment the lock
    // drops, so no node may be dereferenced after unlock. Fiber waiters stay
    // parked until resume() runs, so their Ult pointers remain valid.
    std::vector<Ult*> fibers;
    for (auto* node : waiters) {
        node->signaled.store(true, std::memory_order_release);
        if (node->ult != nullptr) fibers.push_back(node->ult);
    }
    // External-thread wait_for() blocks on the cv with a readiness predicate
    // without enqueuing a node, so always notify.
    cv.notify_all();
    lk.unlock();
    for (Ult* u : fibers) resume(u);
}

} // namespace detail

/// Eventual<T>: a one-shot value future (Argobots "eventual"). set_value()
/// may be called from any thread; wait() from ULTs or external threads.
template <typename T>
class Eventual {
  public:
    void set_value(T value) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return; // one-shot; extra sets ignored
        m_value.emplace(std::move(value));
        complete(std::move(lk));
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    /// Block until set; returns a reference to the stored value.
    const T& wait() {
        wait_impl();
        return *m_value;
    }

    /// Block up to `timeout`; returns the value if set in time.
    std::optional<T> wait_for(std::chrono::microseconds timeout) {
        if (!wait_for_impl(timeout)) return std::nullopt;
        std::lock_guard lk{m_mutex};
        return m_value;
    }

  private:
    void complete(std::unique_lock<std::mutex> lk) {
        m_ready = true;
        auto waiters = std::move(m_waiters);
        m_waiters.clear();
        detail::wake_all_and_release(std::move(lk), m_cv, std::move(waiters));
    }

    void wait_impl() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for_impl(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            auto it = std::find(m_waiters.begin(), m_waiters.end(), &node);
            if (it == m_waiters.end()) return; // already woken by set_value
            m_waiters.erase(it);
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid); // blocks if the callback is mid-flight
        return !node.timed_out;
    }

    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    std::optional<T> m_value;
    std::deque<detail::WaitNode*> m_waiters;
};

/// Eventual<void>: a one-shot event.
template <>
class Eventual<void> {
  public:
    void set() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        m_ready = true;
        auto waiters = std::move(m_waiters);
        m_waiters.clear();
        detail::wake_all_and_release(std::move(lk), m_cv, std::move(waiters));
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    void wait() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            auto it = std::find(m_waiters.begin(), m_waiters.end(), &node);
            if (it == m_waiters.end()) return;
            m_waiters.erase(it);
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid);
        return !node.timed_out;
    }

  private:
    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    std::deque<detail::WaitNode*> m_waiters;
};

/// ULT-aware mutex with FIFO handoff (no barging, so ULT waiters cannot be
/// starved by external threads). Satisfies Lockable.
class Mutex {
  public:
    void lock();
    bool try_lock();
    void unlock();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_locked = false;
    std::deque<detail::WaitNode*> m_waiters;
};

/// ULT-aware condition variable paired with abt::Mutex.
class CondVar {
  public:
    void wait(Mutex& mtx);
    /// Returns false on timeout. Only callable from ULT or external thread.
    bool wait_for(Mutex& mtx, std::chrono::microseconds timeout);
    void signal_one();
    void signal_all();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    std::deque<detail::WaitNode*> m_waiters;
};

/// Cyclic barrier for a fixed number of participants.
class Barrier {
  public:
    explicit Barrier(std::size_t count) : m_expected(count) {}
    void wait();

  private:
    Mutex m_mutex;
    CondVar m_cv;
    std::size_t m_expected;
    std::size_t m_arrived = 0;
    std::uint64_t m_generation = 0;
};

} // namespace mochi::abt
