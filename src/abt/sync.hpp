// ULT-aware synchronization primitives. Every primitive supports *mixed*
// waiters: a ULT blocks by suspending its fiber (freeing the execution
// stream to run other work — the property that makes Margo handlers cheap),
// while a plain OS thread blocks on a condition variable. This mirrors
// Argobots/Margo semantics where e.g. margo_wait() may be called both from
// handler ULTs and from the application's main thread.
//
// Waiters are linked intrusively through their stack-resident WaitNodes, so
// parking and waking never allocate — a property the RPC hot path depends
// on (every forward waits on an Eventual, and the allocation-count
// regression test asserts the warm path is heap-free).
#pragma once

#include "abt/runtime.hpp"
#include "abt/timer.hpp"
#include "abt/ult.hpp"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

namespace mochi::abt {

namespace detail {

/// One parked waiter. Lives on the waiter's stack; the contract is that a
/// node is only touched (a) under the owning primitive's lock while it is
/// still linked, or (b) by the waiter itself after being woken.
struct WaitNode {
    Ult* ult = nullptr;               ///< nullptr => external-thread waiter
    std::atomic<bool> signaled{false};
    bool timed_out = false;
    WaitNode* next = nullptr;         ///< intrusive FIFO link (see WaitList)
};

/// Intrusive FIFO of WaitNodes. Nodes are stack-resident; the list only
/// stores pointers into them, so linking/unlinking is allocation-free.
/// All operations require the owning primitive's lock.
struct WaitList {
    WaitNode* head = nullptr;
    WaitNode* tail = nullptr;

    [[nodiscard]] bool empty() const noexcept { return head == nullptr; }

    void push_back(WaitNode* n) noexcept {
        n->next = nullptr;
        if (tail)
            tail->next = n;
        else
            head = n;
        tail = n;
    }

    WaitNode* pop_front() noexcept {
        WaitNode* n = head;
        if (n) {
            head = n->next;
            if (!head) tail = nullptr;
            n->next = nullptr;
        }
        return n;
    }

    /// Unlink `target` if present; returns false when it was already
    /// removed (i.e. a waker claimed it).
    bool remove(WaitNode* target) noexcept {
        WaitNode* prev = nullptr;
        for (WaitNode* n = head; n; prev = n, n = n->next) {
            if (n != target) continue;
            if (prev)
                prev->next = n->next;
            else
                head = n->next;
            if (tail == n) tail = prev;
            n->next = nullptr;
            return true;
        }
        return false;
    }

    /// Detach the whole list, leaving this one empty.
    [[nodiscard]] WaitList take() noexcept {
        WaitList out = *this;
        head = tail = nullptr;
        return out;
    }
};

/// Wake a single node: marks it signaled, then resumes the fiber or pokes
/// the external-thread condvar. Call *without* holding the primitive lock;
/// `mtx` is the primitive's internal mutex (the one external waiters sleep
/// on). For an external-thread waiter the signaled flag must be published
/// while holding that mutex: the waiter holds it from predicate check to
/// sleep, so a lock-free store could land in between and the notify would
/// be lost — the waiter then sleeps forever on an already-true predicate.
inline void wake_node(WaitNode* node, std::condition_variable& cv, std::mutex& mtx) {
    Ult* u = node->ult;
    if (u != nullptr) {
        node->signaled.store(true, std::memory_order_release);
        resume(u);
    } else {
        {
            std::lock_guard lk{mtx};
            node->signaled.store(true, std::memory_order_release);
        }
        cv.notify_all();
    }
}

/// Wake every waiter of a one-shot primitive without touching the primitive
/// after its lock drops. Call with the lock held and readiness already
/// published under it. The moment the lock is released, any waiter that
/// observed readiness may return and destroy the primitive (e.g. the
/// stack-local Eventual in Runtime::sleep_for), so external-thread signaling
/// and the condvar broadcast both happen under the lock. Suspended-fiber
/// nodes live on stacks that stay parked until resumed, and resuming
/// touches only the node and runtime structures — never the primitive — so
/// fibers are woken after the unlock, where resume() is safe to run.
inline void wake_all_and_release(std::unique_lock<std::mutex> lk, std::condition_variable& cv,
                                 WaitList waiters) {
    // Partition under the lock: an external-thread waiter may wake (via the
    // notify below) and destroy its stack-resident node the moment the lock
    // drops, so no node — including its `next` link — may be dereferenced
    // after unlock. Fiber waiters stay parked until resume() runs, so they
    // are relinked into a fiber-only chain here (their nodes, and thus the
    // chain, remain valid past the unlock).
    WaitList fibers;
    for (WaitNode* node = waiters.head; node != nullptr;) {
        WaitNode* next = node->next;
        node->signaled.store(true, std::memory_order_release);
        if (node->ult != nullptr) fibers.push_back(node);
        node = next;
    }
    // External-thread wait_for() blocks on the cv with a readiness predicate
    // without enqueuing a node, so always notify.
    cv.notify_all();
    lk.unlock();
    for (WaitNode* node = fibers.head; node != nullptr;) {
        // resume() hands the fiber back to its pool; the node (on the
        // fiber's stack) may be gone the instant it runs, so read the link
        // first.
        WaitNode* next = node->next;
        resume(node->ult);
        node = next;
    }
}

} // namespace detail

/// Eventual<T>: a one-shot value future (Argobots "eventual"). set_value()
/// may be called from any thread; wait() from ULTs or external threads.
template <typename T>
class Eventual {
  public:
    void set_value(T value) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return; // one-shot; extra sets ignored
        m_value.emplace(std::move(value));
        complete(std::move(lk));
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    /// Block until set; returns a reference to the stored value.
    const T& wait() {
        wait_impl();
        return *m_value;
    }

    /// Block up to `timeout`; returns the value if set in time.
    std::optional<T> wait_for(std::chrono::microseconds timeout) {
        if (!wait_for_impl(timeout)) return std::nullopt;
        std::lock_guard lk{m_mutex};
        return m_value;
    }

    /// Like wait_for(), but *moves* the stored value out — for single-waiter
    /// protocols (one pending call, one waiter) where copying the value
    /// (e.g. a Message with a large payload) would defeat the zero-copy
    /// path. After a successful take_for(), other accessors see a
    /// moved-from value.
    std::optional<T> take_for(std::chrono::microseconds timeout) {
        if (!wait_for_impl(timeout)) return std::nullopt;
        std::lock_guard lk{m_mutex};
        return std::move(m_value);
    }

  private:
    void complete(std::unique_lock<std::mutex> lk) {
        m_ready = true;
        detail::wake_all_and_release(std::move(lk), m_cv, m_waiters.take());
    }

    void wait_impl() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for_impl(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            if (!m_waiters.remove(&node)) return; // already woken by set_value
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid); // blocks if the callback is mid-flight
        return !node.timed_out;
    }

    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    std::optional<T> m_value;
    detail::WaitList m_waiters;
};

/// Eventual<void>: a one-shot event.
template <>
class Eventual<void> {
  public:
    void set() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        m_ready = true;
        detail::wake_all_and_release(std::move(lk), m_cv, m_waiters.take());
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    void wait() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            if (!m_waiters.remove(&node)) return;
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid);
        return !node.timed_out;
    }

  private:
    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    detail::WaitList m_waiters;
};

/// ULT-aware mutex with FIFO handoff (no barging, so ULT waiters cannot be
/// starved by external threads). Satisfies Lockable.
class Mutex {
  public:
    void lock();
    bool try_lock();
    void unlock();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_locked = false;
    detail::WaitList m_waiters;
};

/// ULT-aware condition variable paired with abt::Mutex.
class CondVar {
  public:
    void wait(Mutex& mtx);
    /// Returns false on timeout. Only callable from ULT or external thread.
    bool wait_for(Mutex& mtx, std::chrono::microseconds timeout);
    void signal_one();
    void signal_all();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    detail::WaitList m_waiters;
};

/// Cyclic barrier for a fixed number of participants.
class Barrier {
  public:
    explicit Barrier(std::size_t count) : m_expected(count) {}
    void wait();

  private:
    Mutex m_mutex;
    CondVar m_cv;
    std::size_t m_expected;
    std::size_t m_arrived = 0;
    std::uint64_t m_generation = 0;
};

} // namespace mochi::abt
