// ULT-aware synchronization primitives. Every primitive supports *mixed*
// waiters: a ULT blocks by suspending its fiber (freeing the execution
// stream to run other work — the property that makes Margo handlers cheap),
// while a plain OS thread blocks on a condition variable. This mirrors
// Argobots/Margo semantics where e.g. margo_wait() may be called both from
// handler ULTs and from the application's main thread.
#pragma once

#include "abt/runtime.hpp"
#include "abt/timer.hpp"
#include "abt/ult.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace mochi::abt {

namespace detail {

/// One parked waiter. Lives on the waiter's stack; the contract is that a
/// node is only touched (a) under the owning primitive's lock while it is
/// still linked, or (b) by the waiter itself after being woken.
struct WaitNode {
    Ult* ult = nullptr;               ///< nullptr => external-thread waiter
    std::atomic<bool> signaled{false};
    bool timed_out = false;
};

/// Wake a single node: marks it signaled, then resumes the fiber or pokes
/// the external-thread condvar. Call *without* holding the primitive lock.
inline void wake_node(WaitNode* node, std::condition_variable& cv) {
    Ult* u = node->ult;
    node->signaled.store(true, std::memory_order_release);
    if (u != nullptr) {
        resume(u);
    } else {
        cv.notify_all();
    }
}

} // namespace detail

/// Eventual<T>: a one-shot value future (Argobots "eventual"). set_value()
/// may be called from any thread; wait() from ULTs or external threads.
template <typename T>
class Eventual {
  public:
    void set_value(T value) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return; // one-shot; extra sets ignored
        m_value.emplace(std::move(value));
        complete(std::move(lk));
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    /// Block until set; returns a reference to the stored value.
    const T& wait() {
        wait_impl();
        return *m_value;
    }

    /// Block up to `timeout`; returns the value if set in time.
    std::optional<T> wait_for(std::chrono::microseconds timeout) {
        if (!wait_for_impl(timeout)) return std::nullopt;
        std::lock_guard lk{m_mutex};
        return m_value;
    }

  private:
    void complete(std::unique_lock<std::mutex> lk) {
        m_ready = true;
        auto waiters = std::move(m_waiters);
        m_waiters.clear();
        lk.unlock();
        // External-thread wait_for() blocks on m_cv with an m_ready predicate
        // without enqueuing a node, so always notify.
        m_cv.notify_all();
        for (auto* node : waiters) detail::wake_node(node, m_cv);
    }

    void wait_impl() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for_impl(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            auto it = std::find(m_waiters.begin(), m_waiters.end(), &node);
            if (it == m_waiters.end()) return; // already woken by set_value
            m_waiters.erase(it);
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid); // blocks if the callback is mid-flight
        return !node.timed_out;
    }

    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    std::optional<T> m_value;
    std::deque<detail::WaitNode*> m_waiters;
};

/// Eventual<void>: a one-shot event.
template <>
class Eventual<void> {
  public:
    void set() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        m_ready = true;
        auto waiters = std::move(m_waiters);
        m_waiters.clear();
        lk.unlock();
        m_cv.notify_all(); // see Eventual<T>::complete
        for (auto* node : waiters) detail::wake_node(node, m_cv);
    }

    [[nodiscard]] bool test() const {
        std::lock_guard lk{m_mutex};
        return m_ready;
    }

    void wait() {
        std::unique_lock lk{m_mutex};
        if (m_ready) return;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            m_waiters.push_back(&node);
            m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            return;
        }
        m_waiters.push_back(&node);
        lk.unlock();
        suspend_current();
    }

    bool wait_for(std::chrono::microseconds timeout) {
        std::unique_lock lk{m_mutex};
        if (m_ready) return true;
        detail::WaitNode node;
        node.ult = current_ult();
        if (node.ult == nullptr) {
            return m_cv.wait_for(lk, timeout, [&] { return m_ready; });
        }
        m_waiters.push_back(&node);
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk2{m_mutex};
            auto it = std::find(m_waiters.begin(), m_waiters.end(), &node);
            if (it == m_waiters.end()) return;
            m_waiters.erase(it);
            node.timed_out = true;
            Ult* u = node.ult;
            lk2.unlock();
            resume(u);
        });
        lk.unlock();
        suspend_current();
        timer.cancel(tid);
        return !node.timed_out;
    }

  private:
    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_ready = false;
    std::deque<detail::WaitNode*> m_waiters;
};

/// ULT-aware mutex with FIFO handoff (no barging, so ULT waiters cannot be
/// starved by external threads). Satisfies Lockable.
class Mutex {
  public:
    void lock();
    bool try_lock();
    void unlock();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    bool m_locked = false;
    std::deque<detail::WaitNode*> m_waiters;
};

/// ULT-aware condition variable paired with abt::Mutex.
class CondVar {
  public:
    void wait(Mutex& mtx);
    /// Returns false on timeout. Only callable from ULT or external thread.
    bool wait_for(Mutex& mtx, std::chrono::microseconds timeout);
    void signal_one();
    void signal_all();

  private:
    std::mutex m_mutex;
    std::condition_variable m_cv;
    std::deque<detail::WaitNode*> m_waiters;
};

/// Cyclic barrier for a fixed number of participants.
class Barrier {
  public:
    explicit Barrier(std::size_t count) : m_expected(count) {}
    void wait();

  private:
    Mutex m_mutex;
    CondVar m_cv;
    std::size_t m_expected;
    std::size_t m_arrived = 0;
    std::uint64_t m_generation = 0;
};

} // namespace mochi::abt
