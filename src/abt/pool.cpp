#include "abt/pool.hpp"
#include "abt/runtime.hpp"

#include <algorithm>

namespace mochi::abt {

Expected<PoolKind> pool_kind_from_string(std::string_view s) {
    if (s == "fifo") return PoolKind::Fifo;
    if (s == "fifo_wait") return PoolKind::FifoWait;
    if (s == "prio" || s == "prio_wait") return PoolKind::Prio;
    return Error{Error::Code::InvalidArgument, "unknown pool kind: " + std::string(s)};
}

const char* to_string(PoolKind k) noexcept {
    switch (k) {
    case PoolKind::Fifo: return "fifo";
    case PoolKind::FifoWait: return "fifo_wait";
    case PoolKind::Prio: return "prio";
    }
    return "?";
}

Expected<PoolAccess> pool_access_from_string(std::string_view s) {
    if (s == "mpmc") return PoolAccess::Mpmc;
    if (s == "mpsc") return PoolAccess::Mpsc;
    if (s == "spmc") return PoolAccess::Spmc;
    if (s == "spsc") return PoolAccess::Spsc;
    return Error{Error::Code::InvalidArgument, "unknown pool access: " + std::string(s)};
}

const char* to_string(PoolAccess a) noexcept {
    switch (a) {
    case PoolAccess::Mpmc: return "mpmc";
    case PoolAccess::Mpsc: return "mpsc";
    case PoolAccess::Spmc: return "spmc";
    case PoolAccess::Spsc: return "spsc";
    }
    return "?";
}

Pool::Pool(std::string name, PoolKind kind, PoolAccess access)
: m_name(std::move(name)), m_kind(kind), m_access(access) {}

void Pool::push(UltPtr ult, int priority) {
    {
        std::lock_guard lk{m_mutex};
        Item item{std::move(ult), priority, m_seq++};
        ++m_total_pushed;
        if (m_kind == PoolKind::Prio) {
            m_heap.push_back(std::move(item));
            std::push_heap(m_heap.begin(), m_heap.end(), [](const Item& a, const Item& b) {
                if (a.priority != b.priority) return a.priority < b.priority;
                return a.seq > b.seq; // FIFO among equal priorities
            });
        } else {
            m_queue.push_back(std::move(item));
        }
    }
    // Subscribers are notified outside the queue lock (an Xstream's notify
    // takes its own mutex and may issue a futex wake). The shared lock on
    // m_sub_mutex keeps every notified Xstream alive for the duration: see
    // the quiescence contract on m_sub_mutex in pool.hpp.
    std::shared_lock slk{m_sub_mutex};
    for (Xstream* es : m_subscribers) es->notify();
}

UltPtr Pool::pop() {
    std::lock_guard lk{m_mutex};
    if (m_kind == PoolKind::Prio) {
        if (m_heap.empty()) return nullptr;
        std::pop_heap(m_heap.begin(), m_heap.end(), [](const Item& a, const Item& b) {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq;
        });
        UltPtr ult = std::move(m_heap.back().ult);
        m_heap.pop_back();
        return ult;
    }
    if (m_queue.empty()) return nullptr;
    UltPtr ult = std::move(m_queue.front().ult);
    m_queue.pop_front();
    return ult;
}

std::size_t Pool::size() const {
    std::lock_guard lk{m_mutex};
    return m_kind == PoolKind::Prio ? m_heap.size() : m_queue.size();
}

std::uint64_t Pool::total_pushed() const {
    std::lock_guard lk{m_mutex};
    return m_total_pushed;
}

void Pool::subscribe(Xstream* es) {
    std::lock_guard lk{m_sub_mutex};
    m_subscribers.push_back(es);
}

void Pool::unsubscribe(Xstream* es) {
    // Exclusive acquisition drains every pusher currently notifying under a
    // shared lock; afterwards the caller may safely destroy the Xstream.
    std::lock_guard lk{m_sub_mutex};
    std::erase(m_subscribers, es);
}

std::size_t Pool::subscriber_count() const {
    std::shared_lock lk{m_sub_mutex};
    return m_subscribers.size();
}

} // namespace mochi::abt
