#include "abt/executor.hpp"
#include "abt/runtime.hpp"

#include <algorithm>
#include <cassert>

namespace mochi::abt {

namespace {
/// Entry the calling worker thread is currently inside; guards against a ULT
/// trying to quiesce its own carrier thread.
thread_local Executor::Entry* tl_worker_entry = nullptr;
} // namespace

Executor::Executor(std::size_t workers) {
    if (workers == 0) {
        auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
        workers = std::clamp<std::size_t>(hw / 2, 2, 8);
    }
    m_entries = std::make_shared<const std::vector<std::shared_ptr<Entry>>>();
    m_threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        m_threads.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
    m_stop.store(true);
    {
        std::lock_guard lk{m_cv_mutex};
        m_wake_pending = true;
    }
    m_cv.notify_all();
    for (auto& t : m_threads)
        if (t.joinable()) t.join();
#ifndef NDEBUG
    std::lock_guard lk{m_entries_mutex};
    assert(m_entries->empty() && "executor destroyed with registered xstreams");
#endif
}

std::shared_ptr<Executor::Entry> Executor::register_xstream(Xstream* xs) {
    auto entry = std::make_shared<Entry>();
    entry->xs = xs;
    {
        std::lock_guard lk{m_entries_mutex};
        auto next = std::make_shared<std::vector<std::shared_ptr<Entry>>>(*m_entries);
        next->push_back(entry);
        m_entries = std::move(next);
    }
    notify();
    return entry;
}

void Executor::unregister(const std::shared_ptr<Entry>& entry) {
    if (!entry) return;
    assert(tl_worker_entry != entry.get() &&
           "a ULT cannot unregister the virtual xstream carrying it");
    entry->removed.store(true);
    std::unique_lock lk{m_entries_mutex};
    auto next = std::make_shared<std::vector<std::shared_ptr<Entry>>>(*m_entries);
    next->erase(std::remove(next->begin(), next->end(), entry), next->end());
    m_entries = std::move(next);
    // Workers that hold the old snapshot may still enter the entry once,
    // see `removed`, and back out; wait for the active count to drain.
    m_quiesce_cv.wait(lk, [&] { return entry->active.load() == 0; });
}

void Executor::notify() {
    {
        std::lock_guard lk{m_cv_mutex};
        m_wake_pending = true;
    }
    m_cv.notify_all();
}

void Executor::worker_loop() {
    using namespace std::chrono_literals;
    while (!m_stop.load()) {
        bool ran = false;
        std::shared_ptr<const std::vector<std::shared_ptr<Entry>>> entries;
        {
            std::lock_guard lk{m_entries_mutex};
            entries = m_entries;
        }
        for (const auto& e : *entries) {
            e->active.fetch_add(1);
            if (!e->removed.load()) {
                if (UltPtr ult = e->xs->try_pop()) {
                    tl_worker_entry = e.get();
                    // A ULT knows its runtime, so one worker can interleave
                    // fibers from many lightweight instances.
                    ult->runtime->execute_ult(ult);
                    tl_worker_entry = nullptr;
                    e->xs->count_executed();
                    ran = true;
                }
            }
            if (e->active.fetch_sub(1) == 1 && e->removed.load()) {
                std::lock_guard lk{m_entries_mutex};
                m_quiesce_cv.notify_all();
            }
        }
        if (ran) continue;
        std::unique_lock lk{m_cv_mutex};
        // Timed wait bounds the latency of observing stop/new work, exactly
        // like Xstream::scheduler_loop.
        m_cv.wait_for(lk, 500us, [&] { return m_wake_pending || m_stop.load(); });
        m_wake_pending = false;
    }
}

} // namespace mochi::abt
