// Umbrella header for the mochi::abt user-level threading runtime — the
// Argobots substitute described in DESIGN.md §4 (substitutions table).
#pragma once

#include "abt/pool.hpp"
#include "abt/runtime.hpp"
#include "abt/sync.hpp"
#include "abt/timer.hpp"
#include "abt/ult.hpp"
