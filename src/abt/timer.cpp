#include "abt/timer.hpp"

namespace mochi::abt {

Timer::Timer() : m_thread([this] { loop(); }) {}

Timer::Timer(Timer& parent) : m_parent(&parent) {}

Timer::~Timer() { stop(); }

Timer::TimerId Timer::schedule(std::chrono::microseconds delay, std::function<void()> fn) {
    if (m_parent != nullptr) {
        // Child mode: forward to the parent, recording the id so stop() can
        // cancel exactly this child's entries. The wrapper erases the id
        // once the callback ran; it synchronizes on m_child_mutex, which we
        // hold across the parent schedule — the callback cannot observe the
        // id box before it is filled in.
        std::lock_guard lk{m_child_mutex};
        if (m_child_stopped) return 0; // dropped, like a stopped timer
        auto idbox = std::make_shared<TimerId>(0);
        TimerId id = m_parent->schedule(delay, [this, idbox, f = std::move(fn)] {
            f();
            std::lock_guard clk{m_child_mutex};
            m_outstanding.erase(*idbox);
        });
        *idbox = id;
        m_outstanding.insert(id);
        return id;
    }
    std::lock_guard lk{m_mutex};
    TimerId id = m_next_id++;
    auto deadline = Clock::now() + delay;
    m_entries.emplace(deadline, std::make_pair(id, std::move(fn)));
    // Wake the timer thread only if this entry is due before whatever it is
    // currently sleeping toward. The common RPC pattern — schedule a far-out
    // timeout, complete, cancel — then never touches the condvar, saving a
    // futex wake + context switch per call.
    if (deadline < m_wait_deadline) m_cv.notify_one();
    return id;
}

bool Timer::cancel(TimerId id) {
    if (m_parent != nullptr) {
        {
            std::lock_guard lk{m_child_mutex};
            // Not outstanding: never scheduled through this child, already
            // ran (the wrapper erased it), or already cancelled.
            if (m_outstanding.erase(id) == 0) return false;
        }
        // Pending at the parent => prevented; running => this blocks until
        // the callback finishes, preserving the cancel contract.
        return m_parent->cancel(id);
    }
    std::unique_lock lk{m_mutex};
    for (auto it = m_entries.begin(); it != m_entries.end(); ++it) {
        if (it->second.first == id) {
            // No notify: if this was the earliest entry the thread wakes at
            // the stale deadline, finds nothing due, and re-sleeps. That is
            // cheaper than unconditionally waking it now.
            m_entries.erase(it);
            return true;
        }
    }
    // Not pending: either already done, or running right now. Wait out a
    // running callback so the caller may free state the callback captures.
    m_cv.wait(lk, [&] { return m_running_id != id; });
    return false;
}

void Timer::stop() {
    if (m_parent != nullptr) {
        // Cancel everything this child scheduled. Each cancel either removes
        // a pending parent entry or waits out the callback mid-flight, so
        // when this returns none of our callbacks runs or is running — the
        // guarantee Runtime::finalize relies on — while the parent (shared
        // with other lightweight runtimes) keeps running.
        std::set<TimerId> ids;
        {
            std::lock_guard lk{m_child_mutex};
            if (m_child_stopped) return;
            m_child_stopped = true;
            ids.swap(m_outstanding);
        }
        for (TimerId id : ids) m_parent->cancel(id);
        return;
    }
    {
        std::lock_guard lk{m_mutex};
        if (m_stop) return;
        m_stop = true;
        m_entries.clear();
        m_cv.notify_all();
    }
    if (m_thread.joinable()) m_thread.join();
}

void Timer::loop() {
    std::unique_lock lk{m_mutex};
    while (!m_stop) {
        if (m_entries.empty()) {
            m_wait_deadline = Clock::time_point::max();
            m_cv.wait(lk, [&] { return m_stop || !m_entries.empty(); });
            m_wait_deadline = Clock::time_point::min();
            continue;
        }
        auto it = m_entries.begin();
        auto now = Clock::now();
        if (it->first > now) {
            m_wait_deadline = it->first;
            m_cv.wait_until(lk, it->first);
            m_wait_deadline = Clock::time_point::min();
            continue; // re-evaluate: earlier entries / stop may have arrived
        }
        auto [id, fn] = std::move(it->second);
        m_entries.erase(it);
        m_running_id = id;
        lk.unlock();
        fn();
        lk.lock();
        m_running_id = 0;
        m_cv.notify_all(); // unblock cancel() waiting on this callback
    }
}

} // namespace mochi::abt
