#include "abt/timer.hpp"

namespace mochi::abt {

Timer::Timer() : m_thread([this] { loop(); }) {}

Timer::~Timer() { stop(); }

Timer::TimerId Timer::schedule(std::chrono::microseconds delay, std::function<void()> fn) {
    std::lock_guard lk{m_mutex};
    TimerId id = m_next_id++;
    auto deadline = Clock::now() + delay;
    m_entries.emplace(deadline, std::make_pair(id, std::move(fn)));
    // Wake the timer thread only if this entry is due before whatever it is
    // currently sleeping toward. The common RPC pattern — schedule a far-out
    // timeout, complete, cancel — then never touches the condvar, saving a
    // futex wake + context switch per call.
    if (deadline < m_wait_deadline) m_cv.notify_one();
    return id;
}

bool Timer::cancel(TimerId id) {
    std::unique_lock lk{m_mutex};
    for (auto it = m_entries.begin(); it != m_entries.end(); ++it) {
        if (it->second.first == id) {
            // No notify: if this was the earliest entry the thread wakes at
            // the stale deadline, finds nothing due, and re-sleeps. That is
            // cheaper than unconditionally waking it now.
            m_entries.erase(it);
            return true;
        }
    }
    // Not pending: either already done, or running right now. Wait out a
    // running callback so the caller may free state the callback captures.
    m_cv.wait(lk, [&] { return m_running_id != id; });
    return false;
}

void Timer::stop() {
    {
        std::lock_guard lk{m_mutex};
        if (m_stop) return;
        m_stop = true;
        m_entries.clear();
        m_cv.notify_all();
    }
    if (m_thread.joinable()) m_thread.join();
}

void Timer::loop() {
    std::unique_lock lk{m_mutex};
    while (!m_stop) {
        if (m_entries.empty()) {
            m_wait_deadline = Clock::time_point::max();
            m_cv.wait(lk, [&] { return m_stop || !m_entries.empty(); });
            m_wait_deadline = Clock::time_point::min();
            continue;
        }
        auto it = m_entries.begin();
        auto now = Clock::now();
        if (it->first > now) {
            m_wait_deadline = it->first;
            m_cv.wait_until(lk, it->first);
            m_wait_deadline = Clock::time_point::min();
            continue; // re-evaluate: earlier entries / stop may have arrived
        }
        auto [id, fn] = std::move(it->second);
        m_entries.erase(it);
        m_running_id = id;
        lk.unlock();
        fn();
        lk.lock();
        m_running_id = 0;
        m_cv.notify_all(); // unblock cancel() waiting on this callback
    }
}

} // namespace mochi::abt
