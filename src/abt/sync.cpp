#include "abt/sync.hpp"

#include <cassert>

namespace mochi::abt {

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

void Mutex::lock() {
    std::unique_lock lk{m_mutex};
    if (!m_locked && m_waiters.empty()) {
        m_locked = true;
        return;
    }
    detail::WaitNode node;
    node.ult = current_ult();
    m_waiters.push_back(&node);
    if (node.ult != nullptr) {
        lk.unlock();
        suspend_current();
        // Ownership was handed off by unlock() before resuming us.
        return;
    }
    m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
}

bool Mutex::try_lock() {
    std::lock_guard lk{m_mutex};
    if (m_locked || !m_waiters.empty()) return false;
    m_locked = true;
    return true;
}

void Mutex::unlock() {
    std::unique_lock lk{m_mutex};
    assert(m_locked);
    if (m_waiters.empty()) {
        m_locked = false;
        return;
    }
    // FIFO handoff: m_locked stays true; the woken waiter owns the mutex.
    detail::WaitNode* node = m_waiters.pop_front();
    lk.unlock();
    detail::wake_node(node, m_cv, m_mutex);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::wait(Mutex& mtx) {
    detail::WaitNode node;
    node.ult = current_ult();
    {
        std::lock_guard lk{m_mutex};
        m_waiters.push_back(&node);
    }
    mtx.unlock();
    if (node.ult != nullptr) {
        suspend_current();
    } else {
        std::unique_lock lk{m_mutex};
        m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
    }
    mtx.lock();
}

bool CondVar::wait_for(Mutex& mtx, std::chrono::microseconds timeout) {
    detail::WaitNode node;
    node.ult = current_ult();
    {
        std::lock_guard lk{m_mutex};
        m_waiters.push_back(&node);
    }
    mtx.unlock();
    if (node.ult != nullptr) {
        Timer& timer = node.ult->runtime->timer();
        auto tid = timer.schedule(timeout, [this, &node] {
            std::unique_lock lk{m_mutex};
            if (!m_waiters.remove(&node)) return; // already signaled
            node.timed_out = true;
            Ult* u = node.ult;
            lk.unlock();
            resume(u);
        });
        suspend_current();
        timer.cancel(tid);
    } else {
        std::unique_lock lk{m_mutex};
        bool ok = m_cv.wait_for(lk, timeout,
                                [&] { return node.signaled.load(std::memory_order_acquire); });
        if (!ok) {
            if (m_waiters.remove(&node)) {
                node.timed_out = true;
            } else {
                // A signaler already dequeued us; wait until it finishes
                // touching the (stack-allocated) node before returning.
                m_cv.wait(lk, [&] { return node.signaled.load(std::memory_order_acquire); });
            }
        }
    }
    mtx.lock();
    return !node.timed_out;
}

void CondVar::signal_one() {
    detail::WaitNode* node = nullptr;
    {
        std::lock_guard lk{m_mutex};
        node = m_waiters.pop_front();
    }
    if (node != nullptr) detail::wake_node(node, m_cv, m_mutex);
}

void CondVar::signal_all() {
    // Dequeue everything under the lock, then wake outside it. Unlike the
    // one-shot primitives, CondVar waiters re-check a predicate under the
    // paired abt::Mutex, so waking them one at a time is fine — but an
    // external-thread waiter may time out, fail remove(), and then block on
    // `signaled`, so the chain must not be walked after a node is signaled.
    // wake_node touches exactly one node, and the next pointer is read
    // before signaling it.
    detail::WaitList waiters;
    {
        std::lock_guard lk{m_mutex};
        waiters = m_waiters.take();
    }
    for (detail::WaitNode* node = waiters.head; node != nullptr;) {
        detail::WaitNode* next = node->next;
        detail::wake_node(node, m_cv, m_mutex);
        node = next;
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Barrier::wait() {
    m_mutex.lock();
    std::uint64_t gen = m_generation;
    if (++m_arrived == m_expected) {
        m_arrived = 0;
        ++m_generation;
        m_mutex.unlock();
        m_cv.signal_all();
        return;
    }
    while (gen == m_generation) m_cv.wait(m_mutex);
    m_mutex.unlock();
}

} // namespace mochi::abt
