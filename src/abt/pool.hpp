// Work pools: thread-safe queues of ready ULTs. Execution streams subscribe
// to pools and are notified on push. Corresponds to Argobots pools as used
// by Margo (Figure 2 of the paper; "fifo_wait" / "prio_wait" kinds of
// Listing 2).
#pragma once

#include "abt/ult.hpp"
#include "common/expected.hpp"
#include "common/ring_queue.hpp"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace mochi::abt {

class Xstream;

enum class PoolKind { Fifo, FifoWait, Prio };
enum class PoolAccess { Mpmc, Mpsc, Spmc, Spsc };

[[nodiscard]] Expected<PoolKind> pool_kind_from_string(std::string_view s);
[[nodiscard]] const char* to_string(PoolKind k) noexcept;
[[nodiscard]] Expected<PoolAccess> pool_access_from_string(std::string_view s);
[[nodiscard]] const char* to_string(PoolAccess a) noexcept;

/// A queue of runnable ULTs. All kinds are internally MPMC-safe; the access
/// mode is retained for configuration fidelity (Listing 2) and validation.
class Pool {
  public:
    Pool(std::string name, PoolKind kind, PoolAccess access);

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] PoolKind kind() const noexcept { return m_kind; }
    [[nodiscard]] PoolAccess access() const noexcept { return m_access; }

    /// Enqueue a ready ULT and wake one subscribed execution stream.
    void push(UltPtr ult, int priority = 0);

    /// Dequeue the next runnable ULT, or nullptr if empty.
    [[nodiscard]] UltPtr pop();

    /// Number of queued ULTs (the metric Margo's monitoring samples, §4).
    [[nodiscard]] std::size_t size() const;

    /// Total ULTs ever pushed (monotonic counter for monitoring).
    [[nodiscard]] std::uint64_t total_pushed() const;

    // Execution-stream subscription (managed by Xstream attach/detach).
    void subscribe(Xstream* es);
    void unsubscribe(Xstream* es);
    [[nodiscard]] std::size_t subscriber_count() const;

  private:
    struct Item {
        UltPtr ult;
        int priority;
        std::uint64_t seq;
    };

    std::string m_name;
    PoolKind m_kind;
    PoolAccess m_access;

    mutable std::mutex m_mutex;
    RingQueue<Item> m_queue;      // FIFO kinds (steady-state allocation-free)
    std::vector<Item> m_heap;     // Prio kind (max-heap by priority, FIFO ties)
    std::uint64_t m_seq = 0;
    std::uint64_t m_total_pushed = 0;
    /// Subscribers are raw pointers into Runtime-owned Xstreams, so their
    /// lifetime is guarded by quiescence: push() notifies while holding
    /// m_sub_mutex shared, and unsubscribe() takes it exclusively — once
    /// unsubscribe returns, no in-flight notify can still touch the stream
    /// (remove_xstream destroys it right after). Separate from m_mutex so
    /// the queue critical section stays free of condvar/futex work.
    mutable std::shared_mutex m_sub_mutex;
    std::vector<Xstream*> m_subscribers;
};

} // namespace mochi::abt
