// A shared timer thread: schedules callbacks at deadlines. Used for ULT
// sleeps, Eventual timeouts, Margo's periodic monitoring sampler (§4), SWIM
// protocol periods (§7) and RAFT election timeouts.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

namespace mochi::abt {

class Timer {
  public:
    using Clock = std::chrono::steady_clock;
    using TimerId = std::uint64_t;

    Timer();
    ~Timer();
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// Run `fn` once after `delay`. The callback executes on the timer
    /// thread and must be short and non-blocking (typically: resume a ULT).
    TimerId schedule(std::chrono::microseconds delay, std::function<void()> fn);

    /// Cancel a pending timer. Returns true if the callback was prevented
    /// from running. If the callback is currently executing, blocks until it
    /// finishes so that captured state can be destroyed safely afterwards.
    bool cancel(TimerId id);

    /// Stop the timer thread; pending callbacks are dropped.
    void stop();

  private:
    void loop();

    std::mutex m_mutex;
    std::condition_variable m_cv;
    std::multimap<Clock::time_point, std::pair<TimerId, std::function<void()>>> m_entries;
    TimerId m_next_id = 1;
    TimerId m_running_id = 0; ///< id of the callback currently executing
    bool m_stop = false;
    std::thread m_thread;
};

} // namespace mochi::abt
