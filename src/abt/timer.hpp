// A shared timer thread: schedules callbacks at deadlines. Used for ULT
// sleeps, Eventual timeouts, Margo's periodic monitoring sampler (§4), SWIM
// protocol periods (§7) and RAFT election timeouts.
//
// Hot-path notes: every RPC forward schedules (and almost always cancels) a
// timeout entry, so this class is on the allocation- and wakeup-critical
// path. Map nodes come from a free list, and schedule() only pokes the
// timer thread when the new deadline is *earlier* than the one it is
// already sleeping toward — an RPC-timeout entry behind an existing
// deadline costs no context switch.
#pragma once

#include "common/pool_alloc.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

namespace mochi::abt {

class Timer {
  public:
    using Clock = std::chrono::steady_clock;
    using TimerId = std::uint64_t;

    Timer();
    /// Child mode: no thread of its own — entries are multiplexed onto
    /// `parent`'s thread (which must outlive this timer). The child tracks
    /// its outstanding entries so stop() cancels exactly them, preserving
    /// the finalize-safety contract a dedicated timer gives: after stop()
    /// returns, no callback scheduled through *this* timer runs or is
    /// running, while the parent (and its other children) keep ticking.
    /// Lightweight runtimes use this so 100+ nodes share one timer thread.
    explicit Timer(Timer& parent);
    ~Timer();
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// Run `fn` once after `delay`. The callback executes on the timer
    /// thread and must be short and non-blocking (typically: resume a ULT).
    TimerId schedule(std::chrono::microseconds delay, std::function<void()> fn);

    /// Cancel a pending timer. Returns true if the callback was prevented
    /// from running. If the callback is currently executing, blocks until it
    /// finishes so that captured state can be destroyed safely afterwards.
    bool cancel(TimerId id);

    /// Stop the timer thread; pending callbacks are dropped.
    void stop();

  private:
    void loop();

    // -- child mode ----------------------------------------------------------
    Timer* m_parent = nullptr;
    std::mutex m_child_mutex;
    std::set<TimerId> m_outstanding; ///< parent ids scheduled through this child
    bool m_child_stopped = false;

    using Entry = std::pair<TimerId, std::function<void()>>;
    using EntryMap =
        std::multimap<Clock::time_point, Entry, std::less<Clock::time_point>,
                      PoolAllocator<std::pair<const Clock::time_point, Entry>>>;

    std::mutex m_mutex;
    std::condition_variable m_cv;
    std::shared_ptr<FreeList> m_node_pool = std::make_shared<FreeList>();
    EntryMap m_entries{PoolAllocator<std::pair<const Clock::time_point, Entry>>{m_node_pool}};
    TimerId m_next_id = 1;
    TimerId m_running_id = 0; ///< id of the callback currently executing
    /// Deadline the timer thread is currently sleeping toward: max() while
    /// parked with no entries, min() while not blocked in a wait at all.
    /// schedule() compares against it (under m_mutex) to elide notifies.
    Clock::time_point m_wait_deadline = Clock::time_point::min();
    bool m_stop = false;
    std::thread m_thread;
};

} // namespace mochi::abt
