// Internal user-level-thread (ULT) descriptor and the low-level
// suspend/resume protocol shared by the scheduler and the synchronization
// primitives. Mirrors Argobots' execution model: ULTs are cooperatively
// scheduled fibers pulled from pools by execution streams (OS threads).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace mochi::abt {

class Pool;
class Runtime;

/// ULT lifecycle states. Transitions:
///   Created -> Running (first schedule)
///   Running -> Yielding -> Ready (cooperative yield)
///   Running -> Blocking -> Blocked -> Ready (suspend + resume)
///   Running -> Blocking -> ResumeRequested -> Ready (resume raced suspend)
///   Running -> Terminated
enum class UltState : int {
    Created,
    Ready,
    Running,
    Yielding,
    Blocking,
    Blocked,
    ResumeRequested,
    Terminated,
};

struct Ult {
    std::function<void()> fn;
    std::atomic<UltState> state{UltState::Created};
    ucontext_t ctx{};
    char* stack = nullptr;
    std::size_t stack_size = 0;
    Pool* home_pool = nullptr;   ///< pool the ULT returns to when runnable
    Runtime* runtime = nullptr;
    // Join support: filled by the scheduler on termination.
    std::atomic<bool> done{false};
    std::function<void()> on_terminate; ///< runs on the scheduler, after exit
    /// Self-reference parked by the scheduler while the ULT is Blocked so it
    /// stays alive until resume() pushes it back to a pool.
    std::shared_ptr<Ult> self_keepalive;
    /// Opaque per-ULT slot for upper layers. Margo stores the current RPC
    /// context here so nested forwards carry parent RPC/provider ids
    /// (Listing 1's fine-grain analysis) even when the ULT migrates between
    /// execution streams (a thread_local would break then).
    void* user_context = nullptr;
    /// Owned payload for Runtime::post_with_payload: keeps the task's
    /// argument alive for `fn` without a capturing closure (a shared_ptr
    /// capture would defeat std::function's small-buffer optimization and
    /// heap-allocate per task). Cleared when the ULT terminates — including
    /// the finalize/abort path, where `fn` is destroyed un-run.
    std::shared_ptr<void> task_payload;
    /// ThreadSanitizer fiber handle (TSan cannot follow raw ucontext
    /// switches; every swapcontext must be bracketed by
    /// __tsan_switch_to_fiber). Unused outside TSan builds.
    void* tsan_fiber = nullptr;

    Ult() = default;
    Ult(const Ult&) = delete;
    Ult& operator=(const Ult&) = delete;
};

using UltPtr = std::shared_ptr<Ult>;

/// The ULT currently executing on this OS thread (nullptr outside any ULT).
Ult* current_ult() noexcept;

/// True when called from ULT context.
inline bool in_ult() noexcept { return current_ult() != nullptr; }

/// Cooperatively yield the current ULT back to its pool. No-op outside ULTs.
void yield();

/// Suspend the current ULT until some other party calls resume() on it.
/// The caller must have published the Ult* to a waker *before* calling this;
/// the state machine tolerates resume() arriving before the context switch
/// completes. Must be called from ULT context.
void suspend_current();

/// Make a suspended (or about-to-suspend) ULT runnable again by pushing it
/// back to its home pool. Callable from any thread, ULT or not. Each
/// suspend_current() must be paired with exactly one resume().
void resume(Ult* ult);

} // namespace mochi::abt
