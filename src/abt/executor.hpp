// Shared scheduling executor for lightweight runtimes.
//
// A regular Xstream is one OS thread; a process simulating 100+ Margo
// instances would burn hundreds of mostly idle threads. The Executor instead
// owns a small fixed crew of worker threads that service the pools of many
// *virtual* xstreams (one registration per xstream, possibly across many
// Runtimes). This works because execute_ult() is reentrant and ULTs never
// block their carrier thread: an idle progress loop parks as a suspended
// fiber, costing the executor nothing.
//
// Quiescence contract: unregister() returns only when no worker is inside
// the entry — after it, the caller may unsubscribe the xstream's pools and
// finalize its runtime safely (mirrors Xstream::stop_and_join()).
#pragma once

#include "abt/ult.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mochi::abt {

class Xstream;

class Executor {
  public:
    /// One registered virtual xstream. Workers pop from `xs`'s pools while
    /// `removed` is clear; `active` counts workers currently inside the
    /// entry (the quiescence token unregister() waits on).
    struct Entry {
        Xstream* xs = nullptr;
        std::atomic<bool> removed{false};
        std::atomic<int> active{0};
    };

    explicit Executor(std::size_t workers = 0); ///< 0 => a hardware-derived default
    ~Executor();
    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// Register a virtual xstream; workers start servicing its pools.
    std::shared_ptr<Entry> register_xstream(Xstream* xs);

    /// Stop servicing `entry` and wait until no worker touches it.
    /// Must not be called from a worker currently inside `entry` (a ULT
    /// cannot quiesce its own carrier — same rule as an ES joining itself).
    void unregister(const std::shared_ptr<Entry>& entry);

    /// Wake an idle worker (called from Pool::push via Xstream::notify).
    void notify();

    [[nodiscard]] std::size_t worker_count() const noexcept { return m_threads.size(); }

  private:
    void worker_loop();

    std::mutex m_entries_mutex;
    /// Copy-on-write snapshot: workers copy the shared_ptr once per sweep,
    /// so registration churn never blocks a sweep mid-iteration.
    std::shared_ptr<const std::vector<std::shared_ptr<Entry>>> m_entries;
    std::condition_variable m_quiesce_cv; ///< waits on Entry::active, under m_entries_mutex

    std::mutex m_cv_mutex;
    std::condition_variable m_cv;
    bool m_wake_pending = false;
    std::atomic<bool> m_stop{false};
    std::vector<std::thread> m_threads;
};

} // namespace mochi::abt
