// The simulated network fabric: the stand-in for Mercury's NA transport
// layer (DESIGN.md §4, substitutions). Endpoints attach under a string
// address; messages are delivered to the target's callback after a delay
// computed from a per-link cost model (latency + size/bandwidth with link
// serialization). Fault injection supports the paper's resilience scenarios:
// crashed endpoints (§7), network partitions and silent message loss (SWIM,
// RAFT elections).
#pragma once

#include "abt/executor.hpp"
#include "abt/timer.hpp"
#include "common/expected.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

namespace mochi::mercury {

/// One network message. `kind` disambiguates the RPC protocol implemented by
/// Margo on top of this layer.
struct Message {
    enum class Kind : std::uint8_t { Request, Response };

    Kind kind = Kind::Request;
    std::uint64_t rpc_id = 0;
    std::uint16_t provider_id = 0;
    std::string rpc_name;             ///< full RPC name; guards against rpc_id
                                      ///< (32-bit hash) collisions at dispatch
    std::uint64_t seq = 0;            ///< correlation id (request <-> response)
    std::string source;               ///< sender address
    std::string payload;
    // Monitoring context propagated with the call (§4, Listing 1).
    std::uint64_t parent_rpc_id = 0;
    std::uint16_t parent_provider_id = 0;
    // Distributed-tracing context propagated with the call: the trace this
    // request belongs to and the origin-side (forward) span that sent it.
    // 0 = untraced. The target's handler span links to `span_id` as parent,
    // which is what stitches nested forwards, migrations, and replication
    // into one cross-process trace.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    /// Multi-tenant QoS identity propagated with the call (carried like the
    /// tracing context above). 0 = untenanted (legacy clients): the target
    /// dispatches it at default priority and applies no quotas.
    std::uint32_t tenant_id = 0;
    /// Response status: 0 = ok; otherwise an Error::Code cast to int.
    std::int32_t status = 0;
};

/// Cost model of one directional link, including fault-injection knobs for
/// the lifecycle stress scenarios (drops, delay jitter, duplication).
struct LinkModel {
    double latency_us = 0.0;            ///< propagation + per-message overhead
    double bandwidth_bytes_per_us = 0.0; ///< 0 => infinite
    double loss_probability = 0.0;       ///< silent drops
    double duplicate_probability = 0.0;  ///< deliver a second, delayed copy
    double jitter_us = 0.0;              ///< uniform [0, jitter_us) extra delay;
                                         ///< deliveries are clamped so jitter
                                         ///< never reorders a link's messages

    [[nodiscard]] double transfer_us(std::size_t bytes) const noexcept {
        if (bandwidth_bytes_per_us <= 0.0) return 0.0;
        return static_cast<double>(bytes) / bandwidth_bytes_per_us;
    }
};

/// Registered RDMA-exposed memory region (Mercury bulk handle).
struct BulkRegion {
    char* data = nullptr;
    std::size_t size = 0;
    bool writable = false;
};

/// A remotely usable bulk handle descriptor (what gets sent inside RPC
/// arguments, as in REMI's migration protocol).
struct BulkHandle {
    std::string address;   ///< owner endpoint
    std::uint64_t id = 0;  ///< region id at the owner
    std::uint64_t size = 0;

    template <typename A>
    void serialize(A& ar) {
        ar& address& id& size;
    }
};

class Fabric;

/// Bounded lock-free message ring (Vyukov's bounded MPMC queue, used here
/// multi-producer / single-consumer: any number of sender ULTs push, the
/// receiving endpoint's progress loop is the only popper). Backs the fabric
/// fast path: fault-free links enqueue here instead of going through the
/// timer + shared_mutex delivery machinery.
///
/// Memory-ordering contract: each cell carries a sequence number. Producers
/// claim a slot by CAS on the enqueue cursor, write the message, then
/// publish with a release store of the cell sequence; the consumer's
/// acquire load of the same sequence is what makes the message contents
/// visible. Cursor loads are relaxed — they only feed the claim CAS, which
/// re-validates via the cell sequence.
class MsgRing {
  public:
    /// `capacity` must be a power of two.
    explicit MsgRing(std::size_t capacity = 1024);

    /// Returns false when the ring is full (caller falls back to the slow
    /// delivery path; messages are never dropped on overflow).
    bool push(Message&& m);

    /// Single-consumer pop. Returns false when empty.
    bool pop(Message& out);

    [[nodiscard]] bool empty() const noexcept;

  private:
    struct Cell {
        std::atomic<std::size_t> seq;
        Message msg;
    };

    std::unique_ptr<Cell[]> m_cells;
    std::size_t m_mask;
    std::atomic<std::size_t> m_enqueue{0};
    std::atomic<std::size_t> m_dequeue{0};
};

/// An attached communication endpoint: one per simulated service process.
class Endpoint {
  public:
    using MessageHandler = std::function<void(Message)>;

    ~Endpoint();
    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;

    [[nodiscard]] const std::string& address() const noexcept { return m_address; }

    /// Send a message; returns Unreachable if the target is not attached
    /// (crashed/never existed). Partitioned or lossy links drop silently.
    Status send(const std::string& dst, Message msg);

    /// Expose a memory region for remote bulk access; returns its handle.
    BulkHandle expose(char* data, std::size_t size, bool writable);
    void unexpose(std::uint64_t id);

    /// RDMA-like transfer between a local buffer and a remote exposed
    /// region. `pull` copies remote->local; otherwise local->remote (the
    /// remote region must be writable). Returns the modeled transfer
    /// duration in microseconds; the caller is responsible for realizing it
    /// (Margo sleeps ULT-aware so the execution stream stays usable).
    Expected<double> bulk_pull(const BulkHandle& remote, std::size_t remote_offset, char* local,
                               std::size_t size);
    Expected<double> bulk_push(const BulkHandle& remote, std::size_t remote_offset,
                               const char* local, std::size_t size);

    void detach();

    // -- lock-free fast inbox (opt-in) ---------------------------------------
    //
    // A consumer that actively polls (margo's progress loop) can enable a
    // fast inbox: messages on fault-free links are pushed straight into an
    // MPSC ring, bypassing the timer thread and this endpoint's
    // m_deliver_mutex/handler path entirely. `wakeup` is invoked after every
    // push (from the sender's thread) so a parked consumer can be poked; it
    // must be cheap, non-blocking, and safe for the endpoint's whole
    // lifetime. There must be exactly ONE polling thread.

    /// Enable the fast inbox. Call once, before the endpoint receives
    /// traffic (margo does so at create()).
    void enable_fast_inbox(std::function<void()> wakeup);

    /// Pop one fast-inbox message. Counts toward
    /// Fabric::messages_delivered(), like a handler delivery.
    bool poll_fast(Message& out);

    /// Approximate emptiness check for the consumer's idle protocol.
    [[nodiscard]] bool fast_inbox_empty() const noexcept;

  private:
    friend class Fabric;
    Endpoint(std::shared_ptr<Fabric> fabric, std::string address, MessageHandler handler);

    std::shared_ptr<Fabric> m_fabric;
    std::string m_address;
    MessageHandler m_handler;
    std::shared_ptr<MsgRing> m_fast_ring;       ///< non-null once enabled
    std::function<void()> m_fast_wakeup;
    std::atomic<bool> m_fast_enabled{false};
    /// Held shared around every handler invocation; detach() takes it
    /// exclusively after flipping m_attached, so once detach() returns no
    /// delivery is running and none will start. Without this, a
    /// timer-scheduled delivery could race the m_attached check and call
    /// into a handler whose owner is already being destroyed.
    std::shared_mutex m_deliver_mutex;
    std::mutex m_regions_mutex;
    std::map<std::uint64_t, BulkRegion> m_regions;
    std::atomic<std::uint64_t> m_next_region_id{1};
    std::atomic<bool> m_attached{false};
};

/// The fabric shared by all simulated processes of one test/benchmark.
class Fabric : public std::enable_shared_from_this<Fabric> {
  public:
    static std::shared_ptr<Fabric> create(LinkModel default_link = {}, std::uint64_t seed = 1);
    ~Fabric();

    /// Attach an endpoint. Fails if the address is taken.
    Expected<std::shared_ptr<Endpoint>> attach(std::string address,
                                               Endpoint::MessageHandler handler);

    // -- fault injection -----------------------------------------------------

    /// Partition: cut both directions between a and b. Idempotent.
    void cut(const std::string& a, const std::string& b);
    /// Heal a previously cut pair.
    void heal(const std::string& a, const std::string& b);
    /// Heal everything.
    void heal_all();
    /// Override the model for one directional link.
    void set_link(const std::string& src, const std::string& dst, LinkModel model);
    /// Change the default model for links without an override.
    void set_default_link(LinkModel model);
    /// Globally enable/disable the lock-free fast path (default: enabled).
    /// Benchmarks use this for before/after ablations; links fall back to
    /// the timer/shared_mutex delivery path when disabled.
    void set_fast_path_enabled(bool enabled);

    /// Addresses currently attached.
    [[nodiscard]] std::vector<std::string> attached() const;
    [[nodiscard]] bool is_attached(const std::string& addr) const;

    // -- shared execution for lightweight nodes ------------------------------
    //
    // Lazily-created resources backing "lightweight" margo instances: one
    // worker crew and one timer thread shared by every such instance on this
    // fabric, instead of one ES thread + one timer thread per node. The
    // fabric is the natural owner — it is the one object all simulated
    // processes of a test already share and outlive. Instances must be shut
    // down before the fabric is destroyed (Cluster guarantees this).

    /// The shared scheduling executor (created on first use).
    [[nodiscard]] abt::Executor& lite_executor();
    /// The shared parent timer for lightweight runtimes' child timers.
    [[nodiscard]] abt::Timer& lite_timer();

    /// Total messages delivered (for tests and monitoring cross-checks).
    ///
    /// Ordering contract: m_delivered is a statistics counter, not a
    /// synchronization point. Increments (one per handler invocation or
    /// fast-inbox pop) and this load are all `memory_order_relaxed`: the
    /// count is monotonically exact, but reading it implies nothing about
    /// the visibility of any message's side effects. Tests that compare it
    /// against per-message effects must establish their own
    /// happens-before (e.g. join the RPC first).
    [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
        return m_delivered.load(std::memory_order_relaxed);
    }

  private:
    friend class Endpoint;
    explicit Fabric(LinkModel default_link, std::uint64_t seed);

    Status send_from(const std::string& src, const std::string& dst, Message msg);
    Expected<double> bulk_op(const std::string& src, const BulkHandle& remote,
                             std::size_t remote_offset, char* local, std::size_t size, bool pull);
    void do_detach(const std::string& addr);

    /// Compute the modeled completion delay for `bytes` on link src->dst and
    /// advance the link's busy horizon (serializes transfers per link).
    [[nodiscard]] double reserve_link_us(const std::string& src, const std::string& dst,
                                         std::size_t bytes);
    /// Clamp a computed delivery delay so it lands at or after the last
    /// delivery scheduled on the same directional link. Jitter (and mid-run
    /// model changes) must not break per-link FIFO ordering — the rest of
    /// the stack, and FabricModel.MessagesDeliveredInOrderPerLink, rely on
    /// it. Caller must hold m_mutex.
    [[nodiscard]] double enforce_link_fifo(const std::string& src, const std::string& dst,
                                           double delay_us);
    [[nodiscard]] bool link_blocked(const std::string& src, const std::string& dst) const;
    [[nodiscard]] LinkModel link_model(const std::string& src, const std::string& dst) const;

    // -- fast path -----------------------------------------------------------

    /// Per-thread cached verdict for one (fabric, src, dst) triple, so the
    /// sender's hot path touches neither m_mutex nor the endpoint map. A
    /// cached entry is valid only while its epoch matches m_epoch; every
    /// topology/model mutation bumps the epoch, forcing revalidation.
    struct FastSendCacheEntry {
        std::uint64_t fabric_uid = 0;
        std::uint64_t epoch = 0;
        bool eligible = false;
        std::string src, dst;
        std::weak_ptr<Endpoint> target;
    };

    /// Recompute `entry` under m_mutex. Returns entry.eligible.
    bool validate_fast_entry(const std::string& src, const std::string& dst,
                             FastSendCacheEntry& entry);
    /// Try to deliver via the target's fast inbox; false => use slow path.
    bool try_fast_send(const std::string& src, const std::string& dst, Message& msg);
    /// Bump m_epoch; call with m_mutex held, after any mutation that could
    /// change a cached fast-path verdict.
    void bump_epoch_locked() noexcept {
        m_topology_epoch.fetch_add(1, std::memory_order_release);
    }

    mutable std::mutex m_mutex;
    LinkModel m_default_link;
    std::map<std::string, std::weak_ptr<Endpoint>> m_endpoints;
    std::set<std::pair<std::string, std::string>> m_cuts; ///< directional
    std::map<std::pair<std::string, std::string>, LinkModel> m_links;
    std::map<std::pair<std::string, std::string>, double> m_link_busy_until_us;
    std::map<std::pair<std::string, std::string>, double> m_link_last_delivery_us;
    std::mt19937_64 m_rng;
    std::atomic<std::uint64_t> m_delivered{0};
    abt::Timer m_timer; ///< delayed message delivery
    /// Lightweight-node resources (see lite_executor/lite_timer). Kept
    /// separate from m_timer so node-side callbacks (samplers, RPC
    /// timeouts) never add jitter to modeled message delivery times.
    std::once_flag m_lite_once;
    std::unique_ptr<abt::Executor> m_lite_executor;
    std::unique_ptr<abt::Timer> m_lite_timer;
    std::chrono::steady_clock::time_point m_epoch;
    /// Distinguishes this fabric in the thread-local send caches (a new
    /// fabric may reuse a destroyed one's address).
    const std::uint64_t m_uid;
    /// Generation counter for cached fast-path verdicts (see
    /// FastSendCacheEntry). Mutated under m_mutex only.
    std::atomic<std::uint64_t> m_topology_epoch{1};
    std::atomic<bool> m_fast_path_enabled{true};

    [[nodiscard]] double now_us() const;
};

} // namespace mochi::mercury
