#include "mercury/fabric.hpp"
#include "common/logging.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <thread>

namespace mochi::mercury {

// ---------------------------------------------------------------------------
// MsgRing
// ---------------------------------------------------------------------------

MsgRing::MsgRing(std::size_t capacity)
: m_cells(new Cell[capacity]), m_mask(capacity - 1) {
    assert((capacity & m_mask) == 0 && "MsgRing capacity must be a power of two");
    for (std::size_t i = 0; i < capacity; ++i)
        m_cells[i].seq.store(i, std::memory_order_relaxed);
}

bool MsgRing::push(Message&& m) {
    std::size_t pos = m_enqueue.load(std::memory_order_relaxed);
    for (;;) {
        Cell& cell = m_cells[pos & m_mask];
        std::size_t seq = cell.seq.load(std::memory_order_acquire);
        auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
        if (dif == 0) {
            if (m_enqueue.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
                cell.msg = std::move(m);
                cell.seq.store(pos + 1, std::memory_order_release);
                return true;
            }
            // CAS failure reloaded pos; retry with it.
        } else if (dif < 0) {
            return false; // full: slot still occupied by an unread message
        } else {
            pos = m_enqueue.load(std::memory_order_relaxed);
        }
    }
}

bool MsgRing::pop(Message& out) {
    std::size_t pos = m_dequeue.load(std::memory_order_relaxed);
    for (;;) {
        Cell& cell = m_cells[pos & m_mask];
        std::size_t seq = cell.seq.load(std::memory_order_acquire);
        auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
        if (dif == 0) {
            // Single consumer: the plain store cannot race another popper.
            m_dequeue.store(pos + 1, std::memory_order_relaxed);
            out = std::move(cell.msg);
            // Release the slot for producers, one full lap ahead.
            cell.seq.store(pos + m_mask + 1, std::memory_order_release);
            return true;
        }
        if (dif < 0) return false; // empty (or producer mid-publish)
        pos = m_dequeue.load(std::memory_order_relaxed);
    }
}

bool MsgRing::empty() const noexcept {
    return m_dequeue.load(std::memory_order_acquire) ==
           m_enqueue.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

Endpoint::Endpoint(std::shared_ptr<Fabric> fabric, std::string address, MessageHandler handler)
: m_fabric(std::move(fabric)), m_address(std::move(address)), m_handler(std::move(handler)) {
    m_attached.store(true);
}

Endpoint::~Endpoint() { detach(); }

void Endpoint::detach() {
    bool was = m_attached.exchange(false);
    if (was) {
        m_fabric->do_detach(m_address);
        // Quiesce: deliveries hold m_deliver_mutex shared while invoking the
        // handler, so acquiring it exclusively waits out any invocation that
        // passed the m_attached check before the exchange above.
        std::unique_lock lk{m_deliver_mutex};
    }
}

Status Endpoint::send(const std::string& dst, Message msg) {
    if (!m_attached.load())
        return Error{Error::Code::InvalidState, "endpoint is detached"};
    msg.source = m_address;
    return m_fabric->send_from(m_address, dst, std::move(msg));
}

BulkHandle Endpoint::expose(char* data, std::size_t size, bool writable) {
    std::uint64_t id = m_next_region_id.fetch_add(1);
    {
        std::lock_guard lk{m_regions_mutex};
        m_regions[id] = BulkRegion{data, size, writable};
    }
    return BulkHandle{m_address, id, size};
}

void Endpoint::unexpose(std::uint64_t id) {
    std::lock_guard lk{m_regions_mutex};
    m_regions.erase(id);
}

Expected<double> Endpoint::bulk_pull(const BulkHandle& remote, std::size_t remote_offset,
                                     char* local, std::size_t size) {
    return m_fabric->bulk_op(m_address, remote, remote_offset, local, size, /*pull=*/true);
}

Expected<double> Endpoint::bulk_push(const BulkHandle& remote, std::size_t remote_offset,
                                     const char* local, std::size_t size) {
    return m_fabric->bulk_op(m_address, remote, remote_offset, const_cast<char*>(local), size,
                             /*pull=*/false);
}

void Endpoint::enable_fast_inbox(std::function<void()> wakeup) {
    m_fast_ring = std::make_shared<MsgRing>();
    m_fast_wakeup = std::move(wakeup);
    // Publish last: senders gate on this flag (under the fabric mutex when
    // validating, so the release pairs with that acquire).
    m_fast_enabled.store(true, std::memory_order_release);
}

bool Endpoint::poll_fast(Message& out) {
    if (!m_fast_ring || !m_fast_ring->pop(out)) return false;
    // Statistics only — see the messages_delivered() ordering contract.
    m_fabric->m_delivered.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool Endpoint::fast_inbox_empty() const noexcept {
    return !m_fast_ring || m_fast_ring->empty();
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_fabric_uid{1};
} // namespace

Fabric::Fabric(LinkModel default_link, std::uint64_t seed)
: m_default_link(default_link), m_rng(seed), m_epoch(std::chrono::steady_clock::now()),
  m_uid(g_fabric_uid.fetch_add(1, std::memory_order_relaxed)) {}

std::shared_ptr<Fabric> Fabric::create(LinkModel default_link, std::uint64_t seed) {
    return std::shared_ptr<Fabric>(new Fabric(default_link, seed));
}

Fabric::~Fabric() {
    // Lightweight instances were shut down before the fabric goes: their
    // runtimes unregistered from the executor and cancelled their child
    // timer entries, so stopping the shared resources here is quiescent.
    m_lite_executor.reset();
    if (m_lite_timer) m_lite_timer->stop();
    m_timer.stop();
}

abt::Executor& Fabric::lite_executor() {
    std::call_once(m_lite_once, [this] {
        m_lite_executor = std::make_unique<abt::Executor>();
        m_lite_timer = std::make_unique<abt::Timer>();
    });
    return *m_lite_executor;
}

abt::Timer& Fabric::lite_timer() {
    (void)lite_executor(); // both are created together
    return *m_lite_timer;
}

double Fabric::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - m_epoch)
        .count();
}

Expected<std::shared_ptr<Endpoint>> Fabric::attach(std::string address,
                                                   Endpoint::MessageHandler handler) {
    std::lock_guard lk{m_mutex};
    auto it = m_endpoints.find(address);
    if (it != m_endpoints.end() && !it->second.expired())
        return Error{Error::Code::AlreadyExists, "address already attached: " + address};
    auto ep = std::shared_ptr<Endpoint>(
        new Endpoint(shared_from_this(), address, std::move(handler)));
    m_endpoints[ep->address()] = ep;
    bump_epoch_locked();
    return ep;
}

void Fabric::do_detach(const std::string& addr) {
    std::lock_guard lk{m_mutex};
    m_endpoints.erase(addr);
    bump_epoch_locked();
}

void Fabric::cut(const std::string& a, const std::string& b) {
    std::lock_guard lk{m_mutex};
    m_cuts.insert({a, b});
    m_cuts.insert({b, a});
    bump_epoch_locked();
}

void Fabric::heal(const std::string& a, const std::string& b) {
    std::lock_guard lk{m_mutex};
    m_cuts.erase({a, b});
    m_cuts.erase({b, a});
    bump_epoch_locked();
}

void Fabric::heal_all() {
    std::lock_guard lk{m_mutex};
    m_cuts.clear();
    bump_epoch_locked();
}

void Fabric::set_link(const std::string& src, const std::string& dst, LinkModel model) {
    std::lock_guard lk{m_mutex};
    m_links[{src, dst}] = model;
    bump_epoch_locked();
}

void Fabric::set_default_link(LinkModel model) {
    std::lock_guard lk{m_mutex};
    m_default_link = model;
    bump_epoch_locked();
}

void Fabric::set_fast_path_enabled(bool enabled) {
    std::lock_guard lk{m_mutex};
    m_fast_path_enabled.store(enabled, std::memory_order_relaxed);
    bump_epoch_locked();
}

std::vector<std::string> Fabric::attached() const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> out;
    for (const auto& [addr, wp] : m_endpoints)
        if (!wp.expired()) out.push_back(addr);
    return out;
}

bool Fabric::is_attached(const std::string& addr) const {
    std::lock_guard lk{m_mutex};
    auto it = m_endpoints.find(addr);
    return it != m_endpoints.end() && !it->second.expired();
}

bool Fabric::link_blocked(const std::string& src, const std::string& dst) const {
    return m_cuts.count({src, dst}) > 0;
}

LinkModel Fabric::link_model(const std::string& src, const std::string& dst) const {
    auto it = m_links.find({src, dst});
    return it == m_links.end() ? m_default_link : it->second;
}

double Fabric::reserve_link_us(const std::string& src, const std::string& dst,
                               std::size_t bytes) {
    // Serialize transfers sharing a directional link: a transfer starts when
    // the link frees up and occupies it for size/bandwidth.
    LinkModel model = link_model(src, dst);
    double now = now_us();
    double transfer = model.transfer_us(bytes);
    double& busy_until = m_link_busy_until_us[{src, dst}];
    double start = std::max(now, busy_until);
    busy_until = start + transfer;
    double completion = start + transfer + model.latency_us;
    return completion - now;
}

double Fabric::enforce_link_fifo(const std::string& src, const std::string& dst,
                                 double delay_us) {
    double now = now_us();
    double& last = m_link_last_delivery_us[{src, dst}];
    double delivery = std::max(now + delay_us, last);
    last = delivery;
    return delivery - now;
}

bool Fabric::validate_fast_entry(const std::string& src, const std::string& dst,
                                 FastSendCacheEntry& entry) {
    std::lock_guard lk{m_mutex};
    entry.fabric_uid = m_uid;
    entry.epoch = m_topology_epoch.load(std::memory_order_relaxed);
    entry.src = src;
    entry.dst = dst;
    entry.eligible = false;
    entry.target.reset();
    if (!m_fast_path_enabled.load(std::memory_order_relaxed)) return false;
    auto it = m_endpoints.find(dst);
    std::shared_ptr<Endpoint> target;
    if (it == m_endpoints.end() || !(target = it->second.lock())) return false;
    if (!target->m_fast_enabled.load(std::memory_order_acquire)) return false;
    if (link_blocked(src, dst)) return false;
    // Eligible only when the model would have delivered inline anyway
    // (latency below the timer's 1 µs scheduling threshold, no bandwidth
    // serialization) and no fault knob needs the per-message RNG roll — so
    // the fast path changes the delivery mechanism, not the timing model.
    LinkModel model = link_model(src, dst);
    if (model.loss_probability > 0.0 || model.duplicate_probability > 0.0 ||
        model.jitter_us > 0.0 || model.bandwidth_bytes_per_us > 0.0 || model.latency_us >= 1.0)
        return false;
    entry.target = target;
    entry.eligible = true;
    return true;
}

bool Fabric::try_fast_send(const std::string& src, const std::string& dst, Message& msg) {
    // Per-thread cache of recent (fabric, src, dst) verdicts. Entries hold
    // weak_ptrs only, so a long-lived idle thread cannot pin endpoints.
    constexpr std::size_t k_cache_slots = 8;
    thread_local std::array<FastSendCacheEntry, k_cache_slots> tl_cache;
    thread_local std::size_t tl_evict = 0;

    FastSendCacheEntry* entry = nullptr;
    for (auto& e : tl_cache) {
        if (e.fabric_uid == m_uid && e.src == src && e.dst == dst) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr) {
        entry = &tl_cache[tl_evict];
        tl_evict = (tl_evict + 1) % k_cache_slots;
        validate_fast_entry(src, dst, *entry);
    } else if (entry->epoch != m_topology_epoch.load(std::memory_order_acquire)) {
        validate_fast_entry(src, dst, *entry);
    }
    if (!entry->eligible) return false;
    std::shared_ptr<Endpoint> target = entry->target.lock();
    if (!target) {
        entry->eligible = false;
        return false; // let the slow path produce Unreachable
    }
    // The push + wakeup must hold m_deliver_mutex shared, exactly like the
    // slow path's deliver(): Endpoint::detach() quiesces by taking it
    // exclusively after clearing m_attached, and the receiving instance
    // only finalizes its runtime after detach() returns. Without the lock,
    // m_fast_wakeup() could still be signaling into the receiver's
    // scheduler while that runtime is being torn down.
    std::shared_lock deliver_lk{target->m_deliver_mutex};
    if (!target->m_attached.load(std::memory_order_acquire)) {
        entry->eligible = false;
        return false;
    }
    if (!target->m_fast_ring->push(std::move(msg))) return false; // ring full
    target->m_fast_wakeup();
    return true;
}

Status Fabric::send_from(const std::string& src, const std::string& dst, Message msg) {
    if (m_fast_path_enabled.load(std::memory_order_relaxed) &&
        try_fast_send(src, dst, msg))
        return {};
    std::shared_ptr<Endpoint> target;
    double delay_us = 0;
    double dup_delay_us = -1.0; ///< >= 0: deliver a duplicate copy after this
    {
        std::lock_guard lk{m_mutex};
        auto it = m_endpoints.find(dst);
        if (it == m_endpoints.end() || !(target = it->second.lock()))
            return Error{Error::Code::Unreachable, "no endpoint at address " + dst};
        if (link_blocked(src, dst))
            return {}; // partition: silent drop (sender sees a timeout)
        LinkModel model = link_model(src, dst);
        std::uniform_real_distribution<double> dist{0.0, 1.0};
        if (model.loss_probability > 0.0 && dist(m_rng) < model.loss_probability) return {};
        delay_us = reserve_link_us(src, dst, msg.payload.size());
        if (model.jitter_us > 0.0) delay_us += dist(m_rng) * model.jitter_us;
        delay_us = enforce_link_fifo(src, dst, delay_us);
        if (model.duplicate_probability > 0.0 && dist(m_rng) < model.duplicate_probability) {
            // The duplicate occupies the link like a real retransmission and
            // gets its own jitter, so it arrives after the original (per-link
            // FIFO still holds; the redundant copy may land mid-handling).
            dup_delay_us = reserve_link_us(src, dst, msg.payload.size());
            if (model.jitter_us > 0.0) dup_delay_us += dist(m_rng) * model.jitter_us;
            dup_delay_us = enforce_link_fifo(src, dst, dup_delay_us);
        }
    }
    auto dispatch = [this](std::shared_ptr<Endpoint> ep, Message m, double after_us) {
        auto deliver = [this, ep = std::move(ep), m = std::move(m)]() mutable {
            std::shared_lock lk{ep->m_deliver_mutex};
            if (!ep->m_attached.load()) return; // crashed meanwhile
            m_delivered.fetch_add(1, std::memory_order_relaxed);
            ep->m_handler(std::move(m));
        };
        if (after_us < 1.0) {
            deliver();
        } else {
            m_timer.schedule(std::chrono::microseconds(static_cast<std::int64_t>(after_us)),
                             std::move(deliver));
        }
    };
    if (dup_delay_us >= 0.0) dispatch(target, msg, dup_delay_us);
    dispatch(std::move(target), std::move(msg), delay_us);
    return {};
}

Expected<double> Fabric::bulk_op(const std::string& src, const BulkHandle& remote,
                                 std::size_t remote_offset, char* local, std::size_t size,
                                 bool pull) {
    std::shared_ptr<Endpoint> target;
    double delay_us = 0;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_endpoints.find(remote.address);
        if (it == m_endpoints.end() || !(target = it->second.lock()))
            return Error{Error::Code::Unreachable, "no endpoint at address " + remote.address};
        if (link_blocked(src, remote.address))
            return Error{Error::Code::Timeout, "bulk transfer timed out (link cut)"};
        // RDMA flows data over the link in the data direction.
        delay_us = pull ? reserve_link_us(remote.address, src, size)
                        : reserve_link_us(src, remote.address, size);
    }
    {
        std::lock_guard rlk{target->m_regions_mutex};
        auto rit = target->m_regions.find(remote.id);
        if (rit == target->m_regions.end())
            return Error{Error::Code::NotFound, "bulk region not exposed"};
        const BulkRegion& region = rit->second;
        if (remote_offset + size > region.size)
            return Error{Error::Code::InvalidArgument, "bulk transfer out of bounds"};
        if (!pull && !region.writable)
            return Error{Error::Code::PermissionDenied, "bulk region is read-only"};
        if (pull)
            std::memcpy(local, region.data + remote_offset, size);
        else
            std::memcpy(region.data + remote_offset, local, size);
    }
    return delay_us;
}

} // namespace mochi::mercury
