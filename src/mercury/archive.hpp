// Serialization archives for RPC argument/response payloads, in the spirit
// of Mercury's proc functions (and the Boost/cereal operator& convention:
// one `serialize` function describes both directions).
//
// Wire format: little-endian fixed-width primitives, length-prefixed strings
// and containers. No versioning — both sides are always the same build, as
// in a Mochi service deployment.
#pragma once

#include "common/expected.hpp"

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace mochi::mercury {

class OutputArchive {
  public:
    static constexpr bool is_saving = true;

    OutputArchive() : m_out(&m_owned) {}

    /// Serialize into a caller-supplied buffer instead of an internal one.
    /// The buffer is cleared but keeps its capacity, so a reused buffer
    /// makes repeated serialization allocation-free once warm (the reply
    /// path of every provider relies on this). The archive holds a pointer
    /// to `external`: it must outlive the archive.
    explicit OutputArchive(std::string& external) : m_out(&external) { external.clear(); }

    [[nodiscard]] std::string& buffer() noexcept { return *m_out; }
    [[nodiscard]] std::string take() { return std::move(*m_out); }

    template <typename T>
    OutputArchive& operator&(const T& v) {
        save(v);
        return *this;
    }

  private:
    template <typename T>
    void save(const T& v) {
        if constexpr (std::is_enum_v<T>) {
            save(static_cast<std::underlying_type_t<T>>(v));
        } else if constexpr (std::is_arithmetic_v<T>) {
            const char* p = reinterpret_cast<const char*>(&v);
            m_out->append(p, sizeof v);
        } else {
            // User type: member serialize(Archive&). const_cast is safe: the
            // saving path only reads.
            const_cast<T&>(v).serialize(*this);
        }
    }
    void save(const std::string& s) {
        save(static_cast<std::uint64_t>(s.size()));
        m_out->append(s);
    }
    void save(std::string_view s) {
        save(static_cast<std::uint64_t>(s.size()));
        m_out->append(s);
    }
    void save(const char* s) { save(std::string_view{s}); }
    template <typename T>
    void save(const std::vector<T>& v) {
        save(static_cast<std::uint64_t>(v.size()));
        for (const auto& e : v) save(e);
    }
    template <typename K, typename V>
    void save(const std::map<K, V>& m) {
        save(static_cast<std::uint64_t>(m.size()));
        for (const auto& [k, v] : m) {
            save(k);
            save(v);
        }
    }
    template <typename A, typename B>
    void save(const std::pair<A, B>& p) {
        save(p.first);
        save(p.second);
    }
    template <typename T>
    void save(const std::optional<T>& o) {
        save(static_cast<std::uint8_t>(o.has_value() ? 1 : 0));
        if (o) save(*o);
    }

    std::string m_owned;
    std::string* m_out;
};

class InputArchive {
  public:
    static constexpr bool is_saving = false;

    explicit InputArchive(std::string_view data) : m_data(data) {}

    [[nodiscard]] bool failed() const noexcept { return m_failed; }
    [[nodiscard]] std::size_t remaining() const noexcept { return m_data.size() - m_pos; }

    template <typename T>
    InputArchive& operator&(T& v) {
        load(v);
        return *this;
    }

  private:
    bool take(void* dst, std::size_t n) {
        if (m_failed || m_data.size() - m_pos < n) {
            m_failed = true;
            return false;
        }
        std::memcpy(dst, m_data.data() + m_pos, n);
        m_pos += n;
        return true;
    }

    template <typename T>
    void load(T& v) {
        if constexpr (std::is_enum_v<T>) {
            std::underlying_type_t<T> u{};
            load(u);
            v = static_cast<T>(u);
        } else if constexpr (std::is_arithmetic_v<T>) {
            take(&v, sizeof v);
        } else {
            v.serialize(*this);
        }
    }
    void load(std::string& s) {
        std::uint64_t n = 0;
        if (!take(&n, sizeof n)) return;
        if (m_data.size() - m_pos < n) {
            m_failed = true;
            return;
        }
        s.assign(m_data.data() + m_pos, n);
        m_pos += n;
    }
    /// Zero-copy string decode: the view aliases the archive's underlying
    /// buffer, which must outlive it (a Request keeps its Message payload
    /// alive for the handler's duration, which is what makes this safe for
    /// provider argument structs). Fails closed: a corrupt length leaves
    /// the view empty and marks the archive failed, never reading out of
    /// bounds.
    void load(std::string_view& s) {
        std::uint64_t n = 0;
        s = {};
        if (!take(&n, sizeof n)) return;
        if (m_data.size() - m_pos < n) {
            m_failed = true;
            return;
        }
        s = m_data.substr(m_pos, static_cast<std::size_t>(n));
        m_pos += static_cast<std::size_t>(n);
    }
    template <typename T>
    void load(std::vector<T>& v) {
        std::uint64_t n = 0;
        if (!take(&n, sizeof n)) return;
        // Guard against corrupt lengths: each element needs at least one
        // byte, so n can never exceed the remaining payload. This also caps
        // the reserve below so a corrupt header cannot trigger a huge
        // allocation.
        if (n > m_data.size() - m_pos) {
            m_failed = true;
            return;
        }
        v.clear();
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && !m_failed; ++i) {
            v.emplace_back();
            load(v.back());
        }
    }
    template <typename K, typename V>
    void load(std::map<K, V>& m) {
        std::uint64_t n = 0;
        if (!take(&n, sizeof n)) return;
        m.clear();
        for (std::uint64_t i = 0; i < n && !m_failed; ++i) {
            K k{};
            V v{};
            load(k);
            load(v);
            m.emplace(std::move(k), std::move(v));
        }
    }
    template <typename A, typename B>
    void load(std::pair<A, B>& p) {
        load(p.first);
        load(p.second);
    }
    template <typename T>
    void load(std::optional<T>& o) {
        std::uint8_t has = 0;
        load(has);
        if (m_failed) return;
        if (has) {
            o.emplace();
            load(*o);
        } else {
            o.reset();
        }
    }

    std::string_view m_data;
    std::size_t m_pos = 0;
    bool m_failed = false;
};

/// Serialize a value pack into a payload string.
template <typename... Ts>
[[nodiscard]] std::string pack(const Ts&... values) {
    OutputArchive ar;
    (ar & ... & values);
    return ar.take();
}

/// Serialize a value pack into a caller-owned buffer, reusing its capacity
/// (allocation-free once the buffer has grown to the working-set size).
template <typename... Ts>
void pack_into(std::string& out, const Ts&... values) {
    OutputArchive ar{out};
    (ar & ... & values);
}

/// Deserialize a payload string into a value pack. Returns false on
/// malformed/truncated input. Targets may be std::string_view (directly or
/// inside a serialize() method): those decode as zero-copy slices of
/// `payload`, which must then outlive them.
template <typename... Ts>
[[nodiscard]] bool unpack(std::string_view payload, Ts&... values) {
    InputArchive ar{payload};
    (ar & ... & values);
    return !ar.failed();
}

// ---------------------------------------------------------------------------
// Vectored payloads
// ---------------------------------------------------------------------------
//
// A batched RPC carries N independently-serialized per-op payloads in one
// buffer: a u64 segment count, then per segment a u64 length prefix and the
// raw bytes. The receiver addresses every segment as a zero-copy view into
// the buffer, so a vectored handler can hand sub-ranges to different ULTs
// without re-copying — the format behind yokan/warabi's *_multi bulk paths
// and the client-side auto-batcher.

/// Incrementally accumulates segments (the auto-batcher appends one per
/// queued op); take() finalizes the buffer and resets the builder.
class SegmentBuilder {
  public:
    void add(std::string_view segment) {
        std::uint64_t len = segment.size();
        m_body.append(reinterpret_cast<const char*>(&len), sizeof len);
        m_body.append(segment);
        ++m_count;
    }

    [[nodiscard]] std::size_t count() const noexcept { return m_count; }
    /// Size of the finalized buffer take() would currently produce.
    [[nodiscard]] std::size_t bytes() const noexcept {
        return sizeof(std::uint64_t) + m_body.size();
    }

    [[nodiscard]] std::string take() {
        std::uint64_t n = m_count;
        std::string out;
        out.reserve(sizeof n + m_body.size());
        out.append(reinterpret_cast<const char*>(&n), sizeof n);
        out.append(m_body);
        m_body.clear();
        m_count = 0;
        return out;
    }

  private:
    std::string m_body;
    std::size_t m_count = 0;
};

[[nodiscard]] inline std::string pack_segments(const std::vector<std::string>& segments) {
    SegmentBuilder b;
    for (const auto& s : segments) b.add(s);
    return b.take();
}

/// Zero-copy decode of a vectored payload: the returned views alias
/// `payload`, which must outlive them. Strict framing — truncated input,
/// corrupt counts, and trailing bytes all return false (a segment buffer
/// travels alone, so every byte must be accounted for).
[[nodiscard]] inline bool unpack_segments(std::string_view payload,
                                          std::vector<std::string_view>& out) {
    out.clear();
    std::size_t pos = 0;
    auto read_u64 = [&](std::uint64_t& v) {
        if (payload.size() - pos < sizeof v) return false;
        std::memcpy(&v, payload.data() + pos, sizeof v);
        pos += sizeof v;
        return true;
    };
    std::uint64_t count = 0;
    if (!read_u64(count)) return false;
    // Each segment needs at least its length prefix, so a count exceeding
    // remaining/8 is corrupt — this also caps the reserve below.
    if (count > (payload.size() - pos) / sizeof(std::uint64_t)) return false;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!read_u64(len)) return false;
        if (payload.size() - pos < len) return false;
        out.emplace_back(payload.data() + pos, static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
    }
    return pos == payload.size();
}

} // namespace mochi::mercury
