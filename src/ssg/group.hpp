// SSG: scalable service groups (§6 Obs. 7, §7 Obs. 12).
//
// Maintains a dynamic view of the processes making up a service, lets client
// applications retrieve it, and detects member failures using the SWIM
// gossip protocol [Das et al. 2002]: periodic random direct pings, indirect
// ping-reqs through k proxies, a suspicion period before declaring death,
// and piggybacked dissemination of membership updates. The view carries a
// version and a hash so services can implement the Colza-style protocol
// (clients attach the hash to RPCs; a mismatch tells either side its view is
// stale).
#pragma once

#include "common/expected.hpp"
#include "margo/instance.hpp"

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

namespace mochi::ssg {

/// Snapshot of a group's membership.
struct GroupView {
    std::vector<std::string> members; ///< sorted addresses (alive + suspected)
    std::uint64_t version = 0;        ///< bumps on every membership change

    /// Stable digest of the member list; what Colza-style clients attach to
    /// their RPCs. Version-independent so members whose views converged
    /// agree on it regardless of how many transitions each one witnessed.
    [[nodiscard]] std::uint64_t digest() const noexcept;
};

enum class MembershipEvent { Joined, Left, Died };

[[nodiscard]] const char* to_string(MembershipEvent e) noexcept;

using MembershipCallback =
    std::function<void(const std::string& address, MembershipEvent event)>;

/// Fired when a newer group payload is adopted (published locally or pulled
/// from a peer). Called from SSG ULTs; must not block long.
using PayloadCallback =
    std::function<void(std::uint64_t version, const std::string& payload)>;

struct GroupConfig {
    std::chrono::milliseconds swim_period{100};  ///< SWIM protocol period
    std::chrono::milliseconds ping_timeout{40};  ///< direct/indirect ack wait
    int suspicion_periods = 3; ///< periods a suspect survives before death
    int ping_req_fanout = 2;   ///< k proxies for indirect pings
    int gossip_transmissions = 8; ///< piggyback retransmissions per update
    bool enable_swim = true;   ///< false: membership changes only via join/leave
};

/// One member's handle on a group. Every process of the service creates one
/// (bootstrapped from the same initial address list, the paper's third
/// bootstrap option) or joins later through any existing member.
class Group : public std::enable_shared_from_this<Group> {
  public:
    /// Bootstrap: `initial_members` must contain this process's address.
    static Expected<std::shared_ptr<Group>> create(margo::InstancePtr instance,
                                                   std::string group_name,
                                                   std::vector<std::string> initial_members,
                                                   GroupConfig config = {});

    /// Dynamic join through `seed_address` (an existing member).
    static Expected<std::shared_ptr<Group>> join(margo::InstancePtr instance,
                                                 std::string group_name,
                                                 const std::string& seed_address,
                                                 GroupConfig config = {});

    ~Group();

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] const std::string& self() const noexcept;

    /// Current view (alive + suspected members), eventually consistent.
    [[nodiscard]] GroupView view() const;
    [[nodiscard]] std::uint64_t view_digest() const { return view().digest(); }
    /// Number of completed SWIM protocol periods — a liveness diagnostic:
    /// a frozen counter means the protocol loop stopped rescheduling.
    [[nodiscard]] std::uint64_t periods() const;

    /// Register a callback fired on membership changes (fault notification
    /// mechanism of §7 Obs. 12). Called from SSG ULTs; must not block long.
    void on_membership_change(MembershipCallback cb);

    // -- payload dissemination -------------------------------------------------
    //
    // A group can carry one opaque versioned blob (the elastic service's
    // layout). Only the payload *version* rides on SWIM traffic — every ping
    // and gossip message piggybacks it — and a member seeing a newer version
    // anywhere pulls the blob once via "ssg/get_payload" (anti-entropy), so
    // dissemination costs O(1) extra bytes per protocol message plus one
    // pull per member per update.

    /// Adopt (and start disseminating) `payload` if `version` is newer than
    /// what this member holds.
    void publish_payload(std::uint64_t version, std::string payload);
    /// Currently-held payload (version 0, empty = none yet).
    [[nodiscard]] std::pair<std::uint64_t, std::string> payload() const;
    /// Register a callback fired whenever a newer payload is adopted.
    void on_payload(PayloadCallback cb);

    /// Fetch a group's payload from a member, as a detached client would
    /// (no membership, no gossip — one explicit RPC).
    static Expected<std::pair<std::uint64_t, std::string>>
    fetch_payload(const margo::InstancePtr& instance, const std::string& group_name,
                  const std::string& member_address);

    /// Gracefully leave and stop. Idempotent.
    void leave();

    /// Fetch a group's view from a member, as a non-member client would
    /// ("an explicit function that the application needs to call").
    static Expected<GroupView> fetch_view(const margo::InstancePtr& instance,
                                          const std::string& group_name,
                                          const std::string& member_address);

    /// Provider id SSG RPCs of `group_name` are registered under.
    [[nodiscard]] static std::uint16_t provider_id_for(std::string_view group_name) noexcept;

    /// A disseminated membership update (piggybacked on protocol messages).
    struct Update {
        std::string address;
        std::uint8_t state = 0; ///< MemberState
        std::uint64_t incarnation = 0;

        template <typename A>
        void serialize(A& ar) {
            ar& address& state& incarnation;
        }
    };

  private:
    Group(margo::InstancePtr instance, std::string group_name, GroupConfig config);

    // Per-member SWIM state.
    enum class MemberState { Alive, Suspect, Dead, Left };
    struct MemberInfo {
        MemberState state = MemberState::Alive;
        std::uint64_t incarnation = 0;
        std::uint64_t suspect_since_period = 0;
    };

    void register_rpcs();
    void start_protocol_loop();
    void protocol_period();
    /// Apply a received update; returns true if it changed local state.
    bool apply_update(const Update& u);
    /// Updates to piggyback (consumes transmission budget).
    std::vector<Update> collect_gossip();
    /// collect_gossip() plus, when we hold `peer` Dead/Left, an entry with
    /// that status — the peer is evidently alive and must get a chance to
    /// refute (and thereby rejoin) even after the death gossip's
    /// transmission budget is exhausted.
    std::vector<Update> collect_gossip_for(const std::string& peer);
    void enqueue_gossip(Update u);
    /// Ping `target` directly; true if an ack arrived in time.
    bool direct_ping(const std::string& target);
    void mark_suspect(const std::string& address);
    void mark_dead(const std::string& address, std::uint64_t incarnation,
                   bool graceful);
    void bump_version_and_notify(const std::string& address, MembershipEvent ev);
    GroupView view_locked() const;
    json::Value snapshot_payload() const;
    /// Adopt a payload if newer; fires payload callbacks when it was.
    bool adopt_payload(std::uint64_t version, std::string payload);
    /// Anti-entropy: when a protocol message shows `peer` holds a newer
    /// payload version, pull the blob from it on a fresh ULT.
    void maybe_pull_payload(const std::string& peer, std::uint64_t remote_version);
    std::uint64_t payload_version() const;

    margo::InstancePtr m_instance;
    std::string m_name;
    GroupConfig m_config;
    std::uint16_t m_provider_id;

    mutable std::mutex m_mutex;
    std::map<std::string, MemberInfo> m_members; ///< includes self
    std::uint64_t m_version = 0;
    std::uint64_t m_self_incarnation = 0;
    std::uint64_t m_period_counter = 0;
    std::vector<std::string> m_ping_order; ///< SWIM round-robin permutation
    std::size_t m_ping_cursor = 0;
    std::deque<std::pair<Update, int>> m_gossip; ///< update + remaining sends
    std::vector<MembershipCallback> m_callbacks;
    std::uint64_t m_payload_version = 0;
    std::string m_payload;
    std::vector<PayloadCallback> m_payload_callbacks;
    bool m_payload_pull_inflight = false;
    std::mt19937_64 m_rng;
    std::atomic<bool> m_stopped{false};
};

} // namespace mochi::ssg
