#include "ssg/group.hpp"
#include "common/logging.hpp"

#include <algorithm>

namespace mochi::ssg {

std::uint64_t GroupView::digest() const noexcept {
    // Deliberately hashes the member list only, not the version: the version
    // is a per-process change counter, and two members that witnessed a
    // different number of intermediate transitions (e.g. one saw a false
    // death + rejoin, the other saw nothing) must still agree on the digest
    // once their member lists converge — that agreement is what the
    // Colza-style staleness check needs.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&](std::string_view s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ULL;
        }
        h ^= 0xFF;
        h *= 1099511628211ULL;
    };
    for (const auto& m : members) mix(m);
    return h;
}

const char* to_string(MembershipEvent e) noexcept {
    switch (e) {
    case MembershipEvent::Joined: return "joined";
    case MembershipEvent::Left: return "left";
    case MembershipEvent::Died: return "died";
    }
    return "?";
}

std::uint16_t Group::provider_id_for(std::string_view group_name) noexcept {
    std::uint32_t h = 2166136261u;
    for (unsigned char c : group_name) {
        h ^= c;
        h *= 16777619u;
    }
    // Avoid the default provider id.
    auto id = static_cast<std::uint16_t>(h % 65534);
    return id;
}

Group::Group(margo::InstancePtr instance, std::string group_name, GroupConfig config)
: m_instance(std::move(instance)), m_name(std::move(group_name)), m_config(config),
  m_provider_id(provider_id_for(m_name)),
  m_rng(std::hash<std::string>{}(m_instance->address() + m_name)) {}

const std::string& Group::self() const noexcept { return m_instance->address(); }

Expected<std::shared_ptr<Group>> Group::create(margo::InstancePtr instance,
                                               std::string group_name,
                                               std::vector<std::string> initial_members,
                                               GroupConfig config) {
    if (std::find(initial_members.begin(), initial_members.end(), instance->address()) ==
        initial_members.end())
        return Error{Error::Code::InvalidArgument,
                     "initial member list must contain this process's address"};
    auto group =
        std::shared_ptr<Group>(new Group(std::move(instance), std::move(group_name), config));
    {
        std::lock_guard lk{group->m_mutex};
        for (auto& m : initial_members) group->m_members[m] = MemberInfo{};
        group->m_version = 1;
    }
    group->register_rpcs();
    group->start_protocol_loop();
    return group;
}

Expected<std::shared_ptr<Group>> Group::join(margo::InstancePtr instance,
                                             std::string group_name,
                                             const std::string& seed_address,
                                             GroupConfig config) {
    auto group =
        std::shared_ptr<Group>(new Group(std::move(instance), std::move(group_name), config));
    margo::ForwardOptions opts;
    opts.provider_id = group->m_provider_id;
    auto r = group->m_instance->call<std::vector<std::string>, std::uint64_t>(
        seed_address, "ssg/join", opts, group->m_name, group->self());
    if (!r) return std::move(r).error();
    auto [members, version] = *r;
    {
        std::lock_guard lk{group->m_mutex};
        for (auto& m : members) group->m_members[m] = MemberInfo{};
        group->m_members[group->self()] = MemberInfo{};
        group->m_version = version;
    }
    group->register_rpcs();
    group->start_protocol_loop();
    return group;
}

Group::~Group() { leave(); }

void Group::leave() {
    bool was = m_stopped.exchange(true);
    if (was) return;
    // Gossip a graceful departure to a few members (best effort).
    std::vector<std::string> peers;
    std::uint64_t inc;
    {
        std::lock_guard lk{m_mutex};
        inc = ++m_self_incarnation;
        for (const auto& [addr, info] : m_members)
            if (addr != self() && info.state == MemberState::Alive) peers.push_back(addr);
        // Random recipients, not the first 3 in map (i.e. address-sort)
        // order: with many groups the same low-sorting members would absorb
        // every departure announcement, and members sorting last would only
        // learn of departures second-hand through gossip convergence.
        std::shuffle(peers.begin(), peers.end(), m_rng);
    }
    margo::ForwardOptions opts;
    opts.provider_id = m_provider_id;
    opts.timeout = std::chrono::milliseconds(200);
    std::uint8_t left_state = static_cast<std::uint8_t>(MemberState::Left);
    for (std::size_t i = 0; i < std::min<std::size_t>(peers.size(), 3); ++i) {
        std::vector<Update> gossip{{self(), left_state, inc}};
        (void)m_instance->forward(peers[i], "ssg/gossip",
                                  mercury::pack(m_name, self(), gossip, payload_version()),
                                  opts);
    }
    if (!m_instance->is_shutdown()) {
        m_instance->deregister_rpc("ssg/ping", m_provider_id);
        m_instance->deregister_rpc("ssg/ping_req", m_provider_id);
        m_instance->deregister_rpc("ssg/gossip", m_provider_id);
        m_instance->deregister_rpc("ssg/join", m_provider_id);
        m_instance->deregister_rpc("ssg/get_view", m_provider_id);
        m_instance->deregister_rpc("ssg/get_payload", m_provider_id);
    }
}

GroupView Group::view() const {
    std::lock_guard lk{m_mutex};
    return view_locked();
}

std::uint64_t Group::periods() const {
    std::lock_guard lk{m_mutex};
    return m_period_counter;
}

GroupView Group::view_locked() const {
    GroupView v;
    for (const auto& [addr, info] : m_members)
        if (info.state == MemberState::Alive || info.state == MemberState::Suspect)
            v.members.push_back(addr);
    v.version = m_version;
    return v;
}

void Group::on_membership_change(MembershipCallback cb) {
    std::lock_guard lk{m_mutex};
    m_callbacks.push_back(std::move(cb));
}

Expected<GroupView> Group::fetch_view(const margo::InstancePtr& instance,
                                      const std::string& group_name,
                                      const std::string& member_address) {
    margo::ForwardOptions opts;
    opts.provider_id = provider_id_for(group_name);
    auto r = instance->call<std::vector<std::string>, std::uint64_t>(
        member_address, "ssg/get_view", opts, group_name);
    if (!r) return std::move(r).error();
    GroupView v;
    v.members = std::move(std::get<0>(*r));
    v.version = std::get<1>(*r);
    return v;
}

// ---------------------------------------------------------------------------
// RPC handlers
// ---------------------------------------------------------------------------

void Group::register_rpcs() {
    auto weak = weak_from_this();
    auto guard = [weak](const margo::Request& req,
                        auto fn) { // resolve the group or fail the RPC
        auto g = weak.lock();
        if (!g || g->m_stopped.load()) {
            req.respond_error(Error{Error::Code::InvalidState, "group is gone"});
            return;
        }
        fn(*g);
    };

    (void)m_instance->register_rpc(
        "ssg/ping", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group, sender;
                std::vector<Update> gossip;
                std::uint64_t remote_pv = 0;
                if (!req.unpack(group, sender, gossip, remote_pv)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                for (const auto& u : gossip) g.apply_update(u);
                // Ack carries our own gossip back, plus the sender's own
                // status if we (wrongly) hold it Dead/Left so it can refute.
                auto mine = g.collect_gossip_for(sender);
                req.respond(mercury::pack(mine, g.payload_version()));
                g.maybe_pull_payload(sender, remote_pv);
            });
        });

    (void)m_instance->register_rpc(
        "ssg/ping_req", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group, sender, target;
                if (!req.unpack(group, sender, target)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                bool ok = g.direct_ping(target);
                req.respond_values(ok);
            });
        });

    (void)m_instance->register_rpc(
        "ssg/gossip", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group, sender;
                std::vector<Update> gossip;
                std::uint64_t remote_pv = 0;
                if (!req.unpack(group, sender, gossip, remote_pv)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                for (const auto& u : gossip) g.apply_update(u);
                // Reply with our own gossip: a suspected member's refutation
                // (Alive, incarnation+1) returns on this fast path. Include
                // the sender's own status if we hold it Dead/Left.
                req.respond(mercury::pack(g.collect_gossip_for(sender), g.payload_version()));
                g.maybe_pull_payload(sender, remote_pv);
            });
        });

    (void)m_instance->register_rpc(
        "ssg/join", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group, joiner;
                if (!req.unpack(group, joiner)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                g.apply_update(Update{joiner, static_cast<std::uint8_t>(MemberState::Alive),
                                      /*incarnation=*/0});
                auto v = g.view();
                req.respond_values(v.members, v.version);
            });
        });

    (void)m_instance->register_rpc(
        "ssg/get_view", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group;
                if (!req.unpack(group)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                auto v = g.view();
                req.respond_values(v.members, v.version);
            });
        });

    (void)m_instance->register_rpc(
        "ssg/get_payload", m_provider_id, [guard](const margo::Request& req) {
            guard(req, [&](Group& g) {
                std::string group;
                if (!req.unpack(group)) {
                    req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
                    return;
                }
                auto [version, blob] = g.payload();
                req.respond_values(version, blob);
            });
        });
}

// ---------------------------------------------------------------------------
// SWIM protocol
// ---------------------------------------------------------------------------

void Group::start_protocol_loop() {
    if (!m_config.enable_swim) return;
    auto weak = weak_from_this();
    auto period_us = std::chrono::duration_cast<std::chrono::microseconds>(
        m_config.swim_period);
    m_instance->runtime()->timer().schedule(period_us, [weak] {
        auto g = weak.lock();
        if (!g || g->m_stopped.load() || g->m_instance->is_shutdown()) return;
        // Run the period on a ULT (it blocks on pings).
        auto rt = g->m_instance->runtime();
        rt->post(rt->primary_pool(), [weak] {
            auto g2 = weak.lock();
            if (!g2 || g2->m_stopped.load()) return;
            g2->protocol_period();
            g2->start_protocol_loop(); // reschedule after the period's work
        });
    });
}

void Group::protocol_period() {
    // 1. Advance suspicion timers; collect currently suspected members so
    // we can (re-)notify them directly — the refutation fast path. Without
    // it, a suspected-but-alive member only learns of its suspicion through
    // gossip, which may not beat the suspicion timeout on a lossy network.
    std::vector<std::pair<std::string, std::uint64_t>> expired;
    std::vector<std::pair<std::string, std::uint64_t>> suspected;
    std::string target;
    {
        std::lock_guard lk{m_mutex};
        ++m_period_counter;
        for (auto& [addr, info] : m_members) {
            if (info.state == MemberState::Suspect &&
                m_period_counter - info.suspect_since_period >=
                    static_cast<std::uint64_t>(m_config.suspicion_periods))
                expired.emplace_back(addr, info.incarnation);
            else if (info.state == MemberState::Suspect)
                suspected.emplace_back(addr, info.incarnation);
        }
        // 2. Pick the next ping target (round-robin over a shuffled list —
        // SWIM's deterministic-coverage refinement).
        if (m_ping_cursor >= m_ping_order.size()) {
            m_ping_order.clear();
            for (const auto& [addr, info] : m_members)
                if (addr != self() &&
                    (info.state == MemberState::Alive || info.state == MemberState::Suspect))
                    m_ping_order.push_back(addr);
            std::shuffle(m_ping_order.begin(), m_ping_order.end(), m_rng);
            m_ping_cursor = 0;
        }
        if (m_ping_cursor < m_ping_order.size()) target = m_ping_order[m_ping_cursor++];
    }
    for (auto& [addr, inc] : expired) mark_dead(addr, inc, /*graceful=*/false);
    // Tell each suspect about its suspicion so it can refute (best effort,
    // repeated every period while the suspicion lasts).
    if (!suspected.empty()) {
        margo::ForwardOptions opts;
        opts.provider_id = m_provider_id;
        opts.timeout = std::chrono::duration_cast<std::chrono::milliseconds>(
            m_config.ping_timeout);
        for (auto& [addr, inc] : suspected) {
            std::vector<Update> gossip{
                {addr, static_cast<std::uint8_t>(MemberState::Suspect), inc}};
            auto r = m_instance->forward(
                addr, "ssg/gossip", mercury::pack(m_name, self(), gossip, payload_version()),
                opts);
            if (r) {
                std::vector<Update> reply;
                std::uint64_t remote_pv = 0;
                if (mercury::unpack(*r, reply, remote_pv)) {
                    for (const auto& u : reply) apply_update(u);
                    maybe_pull_payload(addr, remote_pv);
                }
            }
        }
    }
    if (target.empty()) return;
    {
        // Skip targets that died since the order was built.
        std::lock_guard lk{m_mutex};
        auto it = m_members.find(target);
        if (it == m_members.end() || it->second.state == MemberState::Dead ||
            it->second.state == MemberState::Left)
            return;
    }

    // 3. Direct ping.
    if (direct_ping(target)) return;

    // 4. Indirect pings through k proxies.
    std::vector<std::string> proxies;
    {
        std::lock_guard lk{m_mutex};
        for (const auto& [addr, info] : m_members)
            if (addr != self() && addr != target && info.state == MemberState::Alive)
                proxies.push_back(addr);
        std::shuffle(proxies.begin(), proxies.end(), m_rng);
        if (proxies.size() > static_cast<std::size_t>(m_config.ping_req_fanout))
            proxies.resize(static_cast<std::size_t>(m_config.ping_req_fanout));
    }
    margo::ForwardOptions opts;
    opts.provider_id = m_provider_id;
    opts.timeout = std::chrono::duration_cast<std::chrono::milliseconds>(
        2 * m_config.ping_timeout);
    for (const auto& proxy : proxies) {
        auto r = m_instance->call<bool>(proxy, "ssg/ping_req", opts, m_name, self(), target);
        if (r && std::get<0>(*r)) return; // somebody reached it
    }
    mark_suspect(target);
}

bool Group::direct_ping(const std::string& target) {
    margo::ForwardOptions opts;
    opts.provider_id = m_provider_id;
    opts.timeout =
        std::chrono::duration_cast<std::chrono::milliseconds>(m_config.ping_timeout);
    m_instance->metrics()->counter("ssg_pings_total").inc();
    auto gossip = collect_gossip();
    auto r = m_instance->forward(
        target, "ssg/ping", mercury::pack(m_name, self(), gossip, payload_version()), opts);
    if (!r) return false;
    std::vector<Update> reply;
    std::uint64_t remote_pv = 0;
    if (mercury::unpack(*r, reply, remote_pv)) {
        for (const auto& u : reply) apply_update(u);
        maybe_pull_payload(target, remote_pv);
    }
    return true;
}

bool Group::apply_update(const Update& u) {
    MembershipEvent event{};
    bool notify = false;
    {
        std::lock_guard lk{m_mutex};
        auto state = static_cast<MemberState>(u.state);
        // Refutation: if someone suspects *us*, bump our incarnation past
        // theirs and gossip aliveness (SWIM's mechanism against false
        // positives). Even a *stale* suspicion (older incarnation) must be
        // answered by re-announcing the current aliveness: another member
        // may still be running a suspicion timer on that old incarnation.
        if (u.address == self()) {
            if (state == MemberState::Suspect || state == MemberState::Dead) {
                if (u.incarnation >= m_self_incarnation)
                    m_self_incarnation = u.incarnation + 1;
                // Deduplicate: one refutation entry, always newest first.
                for (auto it = m_gossip.begin(); it != m_gossip.end();) {
                    if (it->first.address == self())
                        it = m_gossip.erase(it);
                    else
                        ++it;
                }
                m_gossip.emplace_front(
                    Update{self(), static_cast<std::uint8_t>(MemberState::Alive),
                           m_self_incarnation},
                    m_config.gossip_transmissions);
            }
            return false;
        }
        auto it = m_members.find(u.address);
        if (it == m_members.end()) {
            if (state == MemberState::Alive) {
                m_members[u.address] = MemberInfo{MemberState::Alive, u.incarnation, 0};
                ++m_version;
                notify = true;
                event = MembershipEvent::Joined;
                m_gossip.emplace_back(u, m_config.gossip_transmissions);
            }
        } else {
            MemberInfo& info = it->second;
            bool changed = false;
            switch (state) {
            case MemberState::Alive:
                if (u.incarnation > info.incarnation &&
                    (info.state == MemberState::Suspect || info.state == MemberState::Alive)) {
                    changed = info.state != MemberState::Alive;
                    info.state = MemberState::Alive;
                    info.incarnation = u.incarnation;
                } else if (u.incarnation > info.incarnation &&
                           (info.state == MemberState::Dead ||
                            info.state == MemberState::Left)) {
                    // Rejoin: a member we declared dead (possibly falsely)
                    // refuted with a strictly higher incarnation. Dead/Left
                    // is no longer a terminal state — readmit it so a SWIM
                    // false positive heals instead of permanently splitting
                    // the views.
                    info.state = MemberState::Alive;
                    info.incarnation = u.incarnation;
                    info.suspect_since_period = 0;
                    ++m_version;
                    notify = true;
                    event = MembershipEvent::Joined;
                    changed = true;
                }
                break;
            case MemberState::Suspect:
                if (info.state == MemberState::Alive && u.incarnation >= info.incarnation) {
                    info.state = MemberState::Suspect;
                    info.incarnation = u.incarnation;
                    info.suspect_since_period = m_period_counter;
                    changed = true;
                }
                break;
            case MemberState::Dead:
            case MemberState::Left:
                // The incarnation guard is what makes rejoin converge: once a
                // falsely-accused member refuted with incarnation I+1 and we
                // readmitted it, a stale Dead{I} still circulating in gossip
                // (or a suspicion timer that expired after the refutation)
                // must not re-kill it — otherwise the views oscillate
                // dead/alive once per period and never agree.
                if (info.state != MemberState::Dead && info.state != MemberState::Left &&
                    u.incarnation >= info.incarnation) {
                    info.state = state;
                    info.incarnation = std::max(info.incarnation, u.incarnation);
                    ++m_version;
                    notify = true;
                    event = state == MemberState::Left ? MembershipEvent::Left
                                                        : MembershipEvent::Died;
                    changed = true;
                }
                break;
            }
            if (changed) m_gossip.emplace_back(u, m_config.gossip_transmissions);
            if (!notify) return changed;
        }
    }
    if (notify) {
        std::vector<MembershipCallback> cbs;
        {
            std::lock_guard lk{m_mutex};
            cbs = m_callbacks;
        }
        for (auto& cb : cbs) cb(u.address, event);
    }
    return true;
}

std::vector<Group::Update> Group::collect_gossip() {
    std::lock_guard lk{m_mutex};
    std::vector<Update> out;
    for (auto it = m_gossip.begin(); it != m_gossip.end();) {
        out.push_back(it->first);
        if (--it->second <= 0)
            it = m_gossip.erase(it);
        else
            ++it;
        if (out.size() >= 16) break; // bounded piggyback size
    }
    return out;
}

std::vector<Group::Update> Group::collect_gossip_for(const std::string& peer) {
    auto out = collect_gossip();
    // If we believe the peer talking to us is Dead/Left, it evidently is not:
    // tell it what we think, so it can refute with a higher incarnation and
    // trigger the rejoin path on every member still holding the stale state.
    // Without this, a falsely-declared-dead member whose death gossip has
    // exhausted its transmission budget never learns it was written off.
    std::lock_guard lk{m_mutex};
    auto it = m_members.find(peer);
    if (it != m_members.end() &&
        (it->second.state == MemberState::Dead || it->second.state == MemberState::Left))
        out.push_back(Update{peer, static_cast<std::uint8_t>(it->second.state),
                             it->second.incarnation});
    return out;
}

void Group::enqueue_gossip(Update u) {
    std::lock_guard lk{m_mutex};
    m_gossip.emplace_back(std::move(u), m_config.gossip_transmissions);
}

void Group::mark_suspect(const std::string& address) {
    std::uint64_t inc = 0;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_members.find(address);
        if (it == m_members.end() || it->second.state != MemberState::Alive) return;
        it->second.state = MemberState::Suspect;
        it->second.suspect_since_period = m_period_counter;
        inc = it->second.incarnation;
    }
    log::debug("ssg", "%s suspects %s", self().c_str(), address.c_str());
    m_instance->metrics()->counter("ssg_suspicions_total").inc();
    enqueue_gossip(Update{address, static_cast<std::uint8_t>(MemberState::Suspect), inc});
}

void Group::mark_dead(const std::string& address, std::uint64_t incarnation, bool graceful) {
    if (!graceful) m_instance->metrics()->counter("ssg_deaths_total").inc();
    apply_update(Update{address,
                        static_cast<std::uint8_t>(graceful ? MemberState::Left
                                                            : MemberState::Dead),
                        incarnation});
}

void Group::bump_version_and_notify(const std::string&, MembershipEvent) {}

json::Value Group::snapshot_payload() const { return json::Value::object(); }

// ---------------------------------------------------------------------------
// Payload dissemination
// ---------------------------------------------------------------------------

void Group::publish_payload(std::uint64_t version, std::string payload) {
    (void)adopt_payload(version, std::move(payload));
}

std::pair<std::uint64_t, std::string> Group::payload() const {
    std::lock_guard lk{m_mutex};
    return {m_payload_version, m_payload};
}

std::uint64_t Group::payload_version() const {
    std::lock_guard lk{m_mutex};
    return m_payload_version;
}

void Group::on_payload(PayloadCallback cb) {
    std::lock_guard lk{m_mutex};
    m_payload_callbacks.push_back(std::move(cb));
}

bool Group::adopt_payload(std::uint64_t version, std::string payload) {
    std::vector<PayloadCallback> cbs;
    {
        std::lock_guard lk{m_mutex};
        if (version <= m_payload_version) return false;
        m_payload_version = version;
        m_payload = std::move(payload);
        cbs = m_payload_callbacks;
    }
    // Callbacks run outside the lock: they may call back into the group
    // (e.g. to read the view) or into providers that take their own locks.
    auto [v, p] = this->payload();
    for (auto& cb : cbs) cb(v, p);
    return true;
}

void Group::maybe_pull_payload(const std::string& peer, std::uint64_t remote_version) {
    {
        std::lock_guard lk{m_mutex};
        if (remote_version <= m_payload_version || m_payload_pull_inflight) return;
        m_payload_pull_inflight = true;
    }
    // Pull on a fresh ULT: this runs inside ping/gossip handlers and must
    // not block the ack on a round trip back to the peer.
    auto weak = weak_from_this();
    auto rt = m_instance->runtime();
    rt->post(rt->primary_pool(), [weak, peer] {
        auto g = weak.lock();
        if (!g || g->m_stopped.load()) return;
        margo::ForwardOptions opts;
        opts.provider_id = g->m_provider_id;
        auto r = g->m_instance->call<std::uint64_t, std::string>(peer, "ssg/get_payload",
                                                                 opts, g->m_name);
        {
            std::lock_guard lk{g->m_mutex};
            g->m_payload_pull_inflight = false;
        }
        if (!r) return;
        g->m_instance->metrics()->counter("ssg_payload_pulls_total").inc();
        g->adopt_payload(std::get<0>(*r), std::move(std::get<1>(*r)));
    });
}

Expected<std::pair<std::uint64_t, std::string>>
Group::fetch_payload(const margo::InstancePtr& instance, const std::string& group_name,
                     const std::string& member_address) {
    margo::ForwardOptions opts;
    opts.provider_id = provider_id_for(group_name);
    auto r = instance->call<std::uint64_t, std::string>(member_address, "ssg/get_payload",
                                                        opts, group_name);
    if (!r) return std::move(r).error();
    return std::make_pair(std::get<0>(*r), std::move(std::get<1>(*r)));
}

} // namespace mochi::ssg
