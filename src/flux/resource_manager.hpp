// A Flux-like resource manager (§2.3: "we expect elastic data services to
// pair well with high-level HPC resource managers such as Flux [6] that
// support the elastic allocation of cluster resources"; §8.1 discusses the
// same role for cloud/workflow schedulers).
//
// This is the allocation side of the simulation: a fixed node inventory,
// jobs that hold allocations, FIFO-queued grant requests that block until
// nodes free up, and *elastic grow/shrink* of a running job's allocation —
// the capability an elastic Mochi service consumes when it scales.
#pragma once

#include "abt/sync.hpp"
#include "common/expected.hpp"

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace mochi::flux {

using JobId = std::uint64_t;

struct JobInfo {
    JobId id = 0;
    std::vector<std::string> nodes;
};

class ResourceManager {
  public:
    explicit ResourceManager(std::vector<std::string> inventory);

    [[nodiscard]] std::size_t total_nodes() const;
    [[nodiscard]] std::size_t free_nodes() const;
    [[nodiscard]] std::size_t running_jobs() const;

    /// Allocate `n` nodes for a new job. If fewer than `n` are free the call
    /// blocks (ULT-aware) until the allocation can be satisfied, up to
    /// `timeout` (0 = fail immediately when not satisfiable).
    Expected<JobInfo> submit(std::size_t n,
                             std::chrono::milliseconds timeout = std::chrono::milliseconds(0));

    /// Elastic grow: add `n` nodes to a running job (same blocking rules).
    Expected<std::vector<std::string>> grow(JobId job, std::size_t n,
                                            std::chrono::milliseconds timeout =
                                                std::chrono::milliseconds(0));

    /// Elastic shrink: return specific nodes of a job to the free pool.
    Status shrink(JobId job, const std::vector<std::string>& nodes);

    /// Terminate a job, releasing all of its nodes.
    Status release(JobId job);

    [[nodiscard]] Expected<JobInfo> info(JobId job) const;

  private:
    struct Waiter {
        std::size_t wanted = 0;
        std::vector<std::string> granted;
        abt::Eventual<bool> ready;
    };

    /// Grant free nodes to the longest-waiting requests (FIFO). Call with
    /// the lock held; wakes satisfied waiters after releasing it.
    void drain_queue_locked(std::vector<std::shared_ptr<Waiter>>& to_wake);
    Expected<std::vector<std::string>> acquire(std::size_t n,
                                               std::chrono::milliseconds timeout);
    [[nodiscard]] std::size_t total_nodes_locked() const;

    mutable std::mutex m_mutex;
    std::set<std::string> m_free;
    std::map<JobId, JobInfo> m_jobs;
    std::deque<std::shared_ptr<Waiter>> m_queue;
    JobId m_next_job = 1;
};

} // namespace mochi::flux
