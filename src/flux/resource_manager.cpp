#include "flux/resource_manager.hpp"

#include <algorithm>

namespace mochi::flux {

ResourceManager::ResourceManager(std::vector<std::string> inventory) {
    for (auto& n : inventory) m_free.insert(std::move(n));
}

std::size_t ResourceManager::total_nodes() const {
    std::lock_guard lk{m_mutex};
    std::size_t used = 0;
    for (const auto& [id, j] : m_jobs) used += j.nodes.size();
    return m_free.size() + used;
}

std::size_t ResourceManager::free_nodes() const {
    std::lock_guard lk{m_mutex};
    return m_free.size();
}

std::size_t ResourceManager::running_jobs() const {
    std::lock_guard lk{m_mutex};
    return m_jobs.size();
}

void ResourceManager::drain_queue_locked(std::vector<std::shared_ptr<Waiter>>& to_wake) {
    // Strict FIFO: the head waiter blocks later (possibly smaller) requests,
    // preventing starvation of large allocations.
    while (!m_queue.empty() && m_free.size() >= m_queue.front()->wanted) {
        auto waiter = m_queue.front();
        m_queue.pop_front();
        for (std::size_t i = 0; i < waiter->wanted; ++i) {
            waiter->granted.push_back(*m_free.begin());
            m_free.erase(m_free.begin());
        }
        to_wake.push_back(std::move(waiter));
    }
}

Expected<std::vector<std::string>> ResourceManager::acquire(
    std::size_t n, std::chrono::milliseconds timeout) {
    if (n == 0) return std::vector<std::string>{};
    std::shared_ptr<Waiter> waiter;
    {
        std::lock_guard lk{m_mutex};
        if (m_queue.empty() && m_free.size() >= n) {
            std::vector<std::string> granted;
            for (std::size_t i = 0; i < n; ++i) {
                granted.push_back(*m_free.begin());
                m_free.erase(m_free.begin());
            }
            return granted;
        }
        if (n > total_nodes_locked())
            return Error{Error::Code::InvalidArgument,
                         "allocation exceeds the cluster inventory"};
        if (timeout.count() == 0)
            return Error{Error::Code::InvalidState, "not enough free nodes"};
        waiter = std::make_shared<Waiter>();
        waiter->wanted = n;
        m_queue.push_back(waiter);
    }
    bool granted = waiter->ready
                       .wait_for(std::chrono::duration_cast<std::chrono::microseconds>(timeout))
                       .has_value();
    std::lock_guard lk{m_mutex};
    if (!granted && waiter->granted.empty()) {
        // Timed out while still queued: withdraw the request.
        std::erase(m_queue, waiter);
        return Error{Error::Code::Timeout, "allocation not satisfied in time"};
    }
    return std::move(waiter->granted);
}

// The header declares no total_nodes_locked; keep it file-local via a
// member-like helper.
std::size_t ResourceManager::total_nodes_locked() const {
    std::size_t used = 0;
    for (const auto& [id, j] : m_jobs) used += j.nodes.size();
    return m_free.size() + used;
}

Expected<JobInfo> ResourceManager::submit(std::size_t n, std::chrono::milliseconds timeout) {
    if (n == 0) return Error{Error::Code::InvalidArgument, "a job needs at least one node"};
    auto nodes = acquire(n, timeout);
    if (!nodes) return nodes.error();
    std::lock_guard lk{m_mutex};
    JobInfo job;
    job.id = m_next_job++;
    job.nodes = std::move(*nodes);
    m_jobs[job.id] = job;
    return job;
}

Expected<std::vector<std::string>> ResourceManager::grow(JobId job, std::size_t n,
                                                         std::chrono::milliseconds timeout) {
    {
        std::lock_guard lk{m_mutex};
        if (!m_jobs.count(job)) return Error{Error::Code::NotFound, "no such job"};
    }
    auto nodes = acquire(n, timeout);
    if (!nodes) return nodes.error();
    std::lock_guard lk{m_mutex};
    auto it = m_jobs.find(job);
    if (it == m_jobs.end()) {
        // Job released while we waited: return the grant to the pool.
        std::vector<std::shared_ptr<Waiter>> to_wake;
        for (auto& node : *nodes) m_free.insert(node);
        drain_queue_locked(to_wake);
        for (auto& w : to_wake) w->ready.set_value(true);
        return Error{Error::Code::NotFound, "job released during grow"};
    }
    for (const auto& node : *nodes) it->second.nodes.push_back(node);
    return nodes;
}

Status ResourceManager::shrink(JobId job, const std::vector<std::string>& nodes) {
    std::vector<std::shared_ptr<Waiter>> to_wake;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_jobs.find(job);
        if (it == m_jobs.end()) return Error{Error::Code::NotFound, "no such job"};
        for (const auto& node : nodes) {
            auto pos = std::find(it->second.nodes.begin(), it->second.nodes.end(), node);
            if (pos == it->second.nodes.end())
                return Error{Error::Code::InvalidArgument,
                             "node " + node + " is not allocated to this job"};
        }
        if (nodes.size() >= it->second.nodes.size())
            return Error{Error::Code::InvalidArgument,
                         "shrink would leave the job without nodes; use release()"};
        for (const auto& node : nodes) {
            std::erase(it->second.nodes, node);
            m_free.insert(node);
        }
        drain_queue_locked(to_wake);
    }
    for (auto& w : to_wake) w->ready.set_value(true);
    return {};
}

Status ResourceManager::release(JobId job) {
    std::vector<std::shared_ptr<Waiter>> to_wake;
    {
        std::lock_guard lk{m_mutex};
        auto it = m_jobs.find(job);
        if (it == m_jobs.end()) return Error{Error::Code::NotFound, "no such job"};
        for (const auto& node : it->second.nodes) m_free.insert(node);
        m_jobs.erase(it);
        drain_queue_locked(to_wake);
    }
    for (auto& w : to_wake) w->ready.set_value(true);
    return {};
}

Expected<JobInfo> ResourceManager::info(JobId job) const {
    std::lock_guard lk{m_mutex};
    auto it = m_jobs.find(job);
    if (it == m_jobs.end()) return Error{Error::Code::NotFound, "no such job"};
    return it->second;
}

} // namespace mochi::flux
