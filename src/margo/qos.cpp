#include "margo/qos.hpp"

#include <algorithm>
#include <cstdlib>

namespace mochi::margo {

namespace {

/// One WFQ cost unit per request plus one per 4 KiB of payload: small ops
/// meter by count, bulk ops by volume, without a separate code path.
constexpr double k_bytes_per_cost_unit = 4096.0;

TenantSpec spec_from_json(const json::Value& v, const TenantSpec& base) {
    TenantSpec spec = base;
    spec.weight = v.get_real("weight", spec.weight);
    spec.ops_per_sec = v.get_real("ops_per_sec", spec.ops_per_sec);
    spec.bytes_per_sec = v.get_real("bytes_per_sec", spec.bytes_per_sec);
    spec.burst_ops = v.get_real("burst_ops", spec.burst_ops);
    spec.burst_bytes = v.get_real("burst_bytes", spec.burst_bytes);
    if (spec.weight <= 0) spec.weight = 1.0;
    return spec;
}

} // namespace

void QosManager::configure(const json::Value& config) {
    if (!config.is_object()) return;
    std::lock_guard lk{m_mutex};
    if (config.contains("default")) m_default = spec_from_json(config["default"], TenantSpec{});
    if (!config.contains("tenants")) return;
    for (const auto& [id_str, spec_json] : config["tenants"].as_object()) {
        char* end = nullptr;
        unsigned long id = std::strtoul(id_str.c_str(), &end, 10);
        if (end == id_str.c_str() || *end != '\0' || id == 0) continue;
        Tenant& t = tenant_locked(static_cast<std::uint32_t>(id));
        t.spec = spec_from_json(spec_json, m_default);
        t.primed = false; // re-prime buckets under the new quota
    }
}

void QosManager::set_tenant(std::uint32_t tenant_id, TenantSpec spec) {
    if (tenant_id == 0) return;
    if (spec.weight <= 0) spec.weight = 1.0;
    std::lock_guard lk{m_mutex};
    Tenant& t = tenant_locked(tenant_id);
    t.spec = spec;
    t.primed = false;
}

TenantSpec QosManager::tenant(std::uint32_t tenant_id) const {
    std::lock_guard lk{m_mutex};
    auto it = m_tenants.find(tenant_id);
    return it == m_tenants.end() ? m_default : it->second.spec;
}

QosManager::Tenant& QosManager::tenant_locked(std::uint32_t tenant_id) {
    auto it = m_tenants.find(tenant_id);
    if (it != m_tenants.end()) return it->second;
    Tenant t;
    t.spec = m_default;
    // A late joiner starts at the current minimum, not 0: otherwise it would
    // outrank every established tenant until it burned through their entire
    // history.
    t.vtime = m_min_vtime;
    const std::string prefix = "tenant_" + std::to_string(tenant_id);
    t.ops = &m_metrics->counter(prefix + "_ops_total");
    t.bytes = &m_metrics->counter(prefix + "_bytes_total");
    t.shed = &m_metrics->counter(prefix + "_shed_total");
    return m_tenants.emplace(tenant_id, std::move(t)).first->second;
}

int QosManager::charge(std::uint32_t tenant_id, std::size_t bytes) {
    if (tenant_id == 0) return 0; // untenanted: default priority, no account
    std::lock_guard lk{m_mutex};
    Tenant& t = tenant_locked(tenant_id);
    t.ops->inc();
    t.bytes->inc(bytes);
    const double cost =
        (1.0 + static_cast<double>(bytes) / k_bytes_per_cost_unit) / t.spec.weight;
    t.vtime = std::max(t.vtime, m_min_vtime) + cost;
    double min_vtime = t.vtime;
    for (const auto& [id, other] : m_tenants) min_vtime = std::min(min_vtime, other.vtime);
    m_min_vtime = min_vtime;
    // Deficit -> priority: the least-served tenant dispatches at 0 (level
    // with untenanted traffic); tenants ahead of their fair share sink below
    // it, one step per cost unit of lag, clamped so a runaway tenant cannot
    // underflow the priority heap's int.
    const double lag = t.vtime - m_min_vtime;
    return -static_cast<int>(std::min(lag, 1024.0));
}

void QosManager::refill_locked(Tenant& t, Clock::time_point now) {
    const double burst_ops =
        t.spec.burst_ops > 0 ? t.spec.burst_ops : std::max(t.spec.ops_per_sec, 1.0);
    const double burst_bytes = t.spec.burst_bytes > 0
                                   ? t.spec.burst_bytes
                                   : std::max(t.spec.bytes_per_sec, k_bytes_per_cost_unit);
    if (!t.primed) {
        t.op_tokens = burst_ops;
        t.byte_tokens = burst_bytes;
        t.last_refill = now;
        t.primed = true;
        return;
    }
    const double elapsed_s =
        std::chrono::duration<double>(now - t.last_refill).count();
    if (elapsed_s <= 0) return;
    t.op_tokens = std::min(burst_ops, t.op_tokens + elapsed_s * t.spec.ops_per_sec);
    t.byte_tokens = std::min(burst_bytes, t.byte_tokens + elapsed_s * t.spec.bytes_per_sec);
    t.last_refill = now;
}

Status QosManager::admit(std::uint32_t tenant_id, std::size_t bytes, Clock::time_point now) {
    if (tenant_id == 0) return {}; // legacy/untenanted traffic is never shed
    std::lock_guard lk{m_mutex};
    Tenant& t = tenant_locked(tenant_id);
    if (t.spec.ops_per_sec <= 0 && t.spec.bytes_per_sec <= 0) return {};
    refill_locked(t, now);
    const bool op_starved = t.spec.ops_per_sec > 0 && t.op_tokens < 1.0;
    const bool byte_starved =
        t.spec.bytes_per_sec > 0 && t.byte_tokens < static_cast<double>(bytes);
    if (op_starved || byte_starved) {
        t.shed->inc();
        return Error{Error::Code::Backpressure,
                     "tenant " + std::to_string(tenant_id) + " over " +
                         (op_starved ? "op" : "byte") + " quota, retry with backoff"};
    }
    if (t.spec.ops_per_sec > 0) t.op_tokens -= 1.0;
    if (t.spec.bytes_per_sec > 0) t.byte_tokens -= static_cast<double>(bytes);
    return {};
}

std::uint64_t QosManager::shed_total(std::uint32_t tenant_id) const {
    std::lock_guard lk{m_mutex};
    auto it = m_tenants.find(tenant_id);
    return it == m_tenants.end() ? 0 : it->second.shed->value();
}

} // namespace mochi::margo
