// Metrics export: a process-wide registry of named counters, gauges, and
// exponential-bucket histograms, fed from two directions:
//
//  - the runtime itself, via MetricsMonitor (a Monitor implementation that
//    counts RPCs, failures, latency and queue-delay histograms, bulk bytes,
//    in-flight gauges and pool depths) — every component gets these "at no
//    engineering cost", like the §4 statistics;
//  - component-level instrumentation (yokan puts, warabi bytes, remi chunks,
//    raft appends, ssg pings, ...) through Instance::metrics().
//
// The registry renders to JSON; Bedrock exposes it remotely through the
// "bedrock/get_metrics" RPC and as the $__metrics__ variable of Jx9 queries,
// so an operator or rebalancer can scrape any process (see
// docs/OBSERVABILITY.md for the naming scheme and a worked example).
#pragma once

#include "margo/monitoring.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mochi::margo {

/// Monotonically increasing event count.
class Counter {
  public:
    void inc(std::uint64_t n = 1) noexcept { m_value.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return m_value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> m_value{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
  public:
    void set(double v) noexcept { m_value.store(v, std::memory_order_relaxed); }
    void add(double d) noexcept {
        double cur = m_value.load(std::memory_order_relaxed);
        while (!m_value.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {}
    }
    [[nodiscard]] double value() const noexcept {
        return m_value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> m_value{0};
};

/// Exponential histogram buckets: bucket i counts observations
/// <= start * growth^i; the last bucket is +inf (overflow).
struct HistogramOptions {
    double start = 1.0;   ///< upper bound of the first bucket
    double growth = 2.0;  ///< bound ratio between consecutive buckets
    int buckets = 24;     ///< finite buckets (an +inf bucket is added)
};

class Histogram {
  public:
    explicit Histogram(HistogramOptions opts = {});

    void observe(double v) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return m_count.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return m_sum.load(std::memory_order_relaxed); }
    /// Upper bounds of the finite buckets.
    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return m_bounds; }
    /// Per-bucket counts (bounds().size() + 1 entries; last = overflow).
    [[nodiscard]] std::vector<std::uint64_t> counts() const;
    /// Bucket-resolution quantile estimate (q in [0,1]): the upper bound of
    /// the bucket containing the q-th observation.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] json::Value to_json() const;

  private:
    std::vector<double> m_bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> m_buckets;
    std::atomic<std::uint64_t> m_count{0};
    std::atomic<double> m_sum{0};
};

/// Named metrics of one process. Lookups create on first use and return
/// stable references; the hot path (inc/observe) is lock-free.
class MetricsRegistry {
  public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name, HistogramOptions opts = {});

    /// {"counters": {name: n}, "gauges": {name: v},
    ///  "histograms": {name: {"count","sum","avg","le","buckets","p50","p99"}}}
    [[nodiscard]] json::Value to_json() const;

    void reset();

  private:
    mutable std::mutex m_mutex;
    std::map<std::string, std::unique_ptr<Counter>> m_counters;
    std::map<std::string, std::unique_ptr<Gauge>> m_gauges;
    std::map<std::string, std::unique_ptr<Histogram>> m_histograms;
};

/// The runtime-fed half of the registry: translates Monitor callbacks into
/// the margo_* metrics (see docs/OBSERVABILITY.md). Installed by every
/// Instance next to the StatisticsMonitor.
class MetricsMonitor : public Monitor {
  public:
    explicit MetricsMonitor(std::shared_ptr<MetricsRegistry> registry);

    void on_forward_start(const CallContext& ctx) override;
    void on_forward_complete(const CallContext& ctx, bool ok) override;
    void on_handler_start(const CallContext& ctx) override;
    void on_handler_complete(const CallContext& ctx) override;
    void on_bulk_complete(const CallContext& ctx, std::size_t bytes,
                          double duration_us) override;
    void on_batch_op(const CallContext& ctx, bool ok) override;
    void on_progress_sample(std::size_t in_flight_rpcs,
                            const std::map<std::string, std::size_t>& pool_sizes) override;

  private:
    std::shared_ptr<MetricsRegistry> m_registry;
    // Cached hot-path handles (resolved once; the registry keeps them alive).
    Counter& m_forwards;
    Counter& m_forward_failures;
    Counter& m_handled;
    Counter& m_bulk_transfers;
    Counter& m_bulk_bytes;
    Counter& m_batch_ops;
    Counter& m_batch_op_failures;
    Histogram& m_forward_latency;
    Histogram& m_handler_duration;
    Histogram& m_queue_delay;
    Gauge& m_in_flight;
};

} // namespace mochi::margo
