// Figure 1 anatomy helpers: the server-library Provider base (registers RPC
// callbacks, forwards them to a Resource, configured from JSON) and the
// client-library ResourceHandle base (maps to a remote resource by
// encapsulating address + provider id).
//
// Concrete Mochi components (Yokan, Warabi, REMI, ...) derive from these.
#pragma once

#include "margo/instance.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

namespace mochi::margo {

/// Base class for component providers. RPC names are namespaced by the
/// component type ("yokan/put"), and each registration is bound to this
/// provider's id so multiple providers of the same type coexist in one
/// process (Figure 1: "uniquely identified by a provider ID").
class Provider {
  public:
    virtual ~Provider() { deregister_all(); }
    Provider(const Provider&) = delete;
    Provider& operator=(const Provider&) = delete;

    [[nodiscard]] std::uint16_t provider_id() const noexcept { return m_provider_id; }
    [[nodiscard]] const std::string& type() const noexcept { return m_type; }
    [[nodiscard]] const InstancePtr& instance() const noexcept { return m_instance; }

    /// Current JSON configuration of the provider and its resource.
    [[nodiscard]] virtual json::Value get_config() const { return json::Value::object(); }

  protected:
    Provider(InstancePtr instance, std::uint16_t provider_id, std::string type,
             std::shared_ptr<abt::Pool> pool = nullptr)
    : m_instance(std::move(instance)), m_provider_id(provider_id), m_type(std::move(type)),
      m_pool(std::move(pool)) {}

    /// Deregister every RPC this provider defined and wait until no handler
    /// invocation is still running (deregister_rpc drains in-flight ULTs).
    /// Idempotent. Derived providers whose handlers capture `this` MUST call
    /// this first thing in their destructor: derived members are destroyed
    /// before the base destructor below runs, so relying on the base to
    /// deregister leaves a window where a live handler touches dead members.
    void deregister_all() {
        for (const auto& name : m_rpc_names) m_instance->deregister_rpc(name, m_provider_id);
        m_rpc_names.clear();
    }

    /// Register an RPC "<type>/<op>" handled by `handler` on this
    /// provider's pool.
    void define(const std::string& op, Handler handler) {
        std::string rpc = m_type + "/" + op;
        auto r = m_instance->register_rpc(rpc, m_provider_id, std::move(handler), m_pool);
        assert(r.has_value());
        (void)r;
        m_rpc_names.push_back(std::move(rpc));
    }

    [[nodiscard]] const std::shared_ptr<abt::Pool>& pool() const noexcept { return m_pool; }

    /// Tenant quota gate for data handlers: charge `cost_bytes` (default:
    /// the request payload size) against the sender's token buckets. On a
    /// depleted bucket this responds the retryable Backpressure error for
    /// the caller and returns false — the handler must return without
    /// touching its backend, mirroring the check_epoch() idiom:
    ///
    ///   if (!check_epoch(req, epoch)) return;
    ///   if (!admit(req)) return;
    ///
    /// Untenanted requests (tenant 0) are always admitted.
    bool admit(const Request& req, std::size_t cost_bytes = 0) const {
        auto st = m_instance->qos().admit(
            req.tenant_id(), cost_bytes > 0 ? cost_bytes : req.payload().size());
        if (st.ok()) return true;
        req.respond_error(st.error());
        return false;
    }

    /// Vectored-handler helper: run fn(i) for every i in [0, n) across up
    /// to `ways` ULTs of this provider's pool, the calling (handler) ULT
    /// executing one share inline. The ambient RPC/trace context propagates
    /// into the spawned workers (so per-op spans emitted inside fn chain
    /// under the enclosing handler span), and the join is ULT-aware — on a
    /// single execution stream the blocked handler yields to its workers.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                      std::size_t ways = 4) const {
        if (n == 0) return;
        ways = std::min(std::max<std::size_t>(ways, 1), n);
        if (ways == 1) {
            for (std::size_t i = 0; i < n; ++i) fn(i);
            return;
        }
        auto ctx = current_rpc_context();
        const auto& pool = m_pool ? m_pool : m_instance->handler_pool();
        struct Join {
            std::atomic<std::size_t> remaining;
            abt::Eventual<void> done;
        };
        auto join = std::make_shared<Join>();
        join->remaining.store(ways - 1);
        // Block partition: worker w owns [w*n/ways, (w+1)*n/ways). fn is
        // borrowed by reference — safe, the caller blocks on the join below.
        for (std::size_t w = 1; w < ways; ++w) {
            std::size_t lo = w * n / ways;
            std::size_t hi = (w + 1) * n / ways;
            m_instance->runtime()->post(pool, [join, ctx, &fn, lo, hi] {
                ContextScope scope{ctx};
                for (std::size_t i = lo; i < hi; ++i) fn(i);
                if (join->remaining.fetch_sub(1) == 1) join->done.set();
            });
        }
        for (std::size_t i = 0; i < n / ways; ++i) fn(i);
        join->done.wait();
    }

  private:
    InstancePtr m_instance;
    std::uint16_t m_provider_id;
    std::string m_type;
    std::shared_ptr<abt::Pool> m_pool;
    std::vector<std::string> m_rpc_names;
};

/// Base class for client-side handles: "maps to a remote resource by
/// encapsulating the address and provider ID of the provider holding that
/// resource" (Figure 1).
class ResourceHandle {
  public:
    ResourceHandle(InstancePtr instance, std::string address, std::uint16_t provider_id,
                   std::string type)
    : m_instance(std::move(instance)), m_address(std::move(address)),
      m_provider_id(provider_id), m_type(std::move(type)) {}

    [[nodiscard]] const std::string& address() const noexcept { return m_address; }
    [[nodiscard]] std::uint16_t provider_id() const noexcept { return m_provider_id; }
    [[nodiscard]] const InstancePtr& instance() const noexcept { return m_instance; }

  protected:
    /// Typed RPC to the remote provider: packs inputs, unpacks outputs.
    template <typename... Outs, typename... Ins>
    Expected<std::tuple<Outs...>> call(std::string_view op, const Ins&... ins) const {
        ForwardOptions opts;
        opts.provider_id = m_provider_id;
        return m_instance->call<Outs...>(m_address, m_type + "/" + std::string(op), opts,
                                         ins...);
    }

    /// Fire the RPC without waiting for the reply: returns a handle whose
    /// wait_unpack<Outs...>() yields the typed result. Batched clients use
    /// this to overlap round trips to several providers.
    template <typename... Ins>
    [[nodiscard]] AsyncRequest async_call(std::string_view op, const Ins&... ins) const {
        ForwardOptions opts;
        opts.provider_id = m_provider_id;
        return m_instance->forward_async(m_address, m_type + "/" + std::string(op),
                                         mercury::pack(ins...), opts);
    }

    /// As `call`, but with an explicit timeout.
    template <typename... Outs, typename... Ins>
    Expected<std::tuple<Outs...>> call_with_timeout(std::string_view op,
                                                    std::chrono::milliseconds timeout,
                                                    const Ins&... ins) const {
        ForwardOptions opts;
        opts.provider_id = m_provider_id;
        opts.timeout = timeout;
        return m_instance->call<Outs...>(m_address, m_type + "/" + std::string(op), opts,
                                         ins...);
    }

  private:
    InstancePtr m_instance;
    std::string m_address;
    std::uint16_t m_provider_id;
    std::string m_type;
};

} // namespace mochi::margo
