#include "margo/instance.hpp"
#include "common/logging.hpp"

#include <thread>

namespace mochi::margo {

std::uint64_t rpc_name_to_id(std::string_view name) noexcept {
    // 32-bit FNV-1a, like Mercury's hashing of RPC names.
    std::uint32_t h = 2166136261u;
    for (unsigned char c : name) {
        h ^= c;
        h *= 16777619u;
    }
    return h;
}

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

void Request::respond(std::string payload) const {
    mercury::Message resp;
    resp.kind = mercury::Message::Kind::Response;
    resp.rpc_id = m_msg.rpc_id;
    resp.provider_id = m_msg.provider_id;
    resp.seq = m_msg.seq;
    resp.payload = std::move(payload);
    resp.status = 0;
    (void)m_instance->m_endpoint->send(m_msg.source, std::move(resp));
}

void Request::respond_error(const Error& err) const {
    mercury::Message resp;
    resp.kind = mercury::Message::Kind::Response;
    resp.rpc_id = m_msg.rpc_id;
    resp.provider_id = m_msg.provider_id;
    resp.seq = m_msg.seq;
    resp.payload = err.message;
    resp.status = static_cast<std::int32_t>(err.code) + 1; // 0 reserved for ok
    (void)m_instance->m_endpoint->send(m_msg.source, std::move(resp));
}

// ---------------------------------------------------------------------------
// Instance lifecycle
// ---------------------------------------------------------------------------

Expected<InstancePtr> Instance::create(std::shared_ptr<mercury::Fabric> fabric,
                                       std::string address, const json::Value& config) {
    auto inst = InstancePtr(new Instance());
    inst->m_fabric = std::move(fabric);
    inst->m_address = std::move(address);
    inst->m_epoch = std::chrono::steady_clock::now();

    // Lightweight mode: no dedicated OS threads for this instance — ESs are
    // virtual (serviced by the fabric's shared worker crew) and the timer is
    // a child of the fabric's shared timer. This is what makes 100+
    // simulated nodes per process affordable.
    abt::SharedExecution shared;
    if (config.get_bool("lightweight", false)) {
        shared.executor = &inst->m_fabric->lite_executor();
        shared.parent_timer = &inst->m_fabric->lite_timer();
    }
    auto rt = abt::Runtime::create(config["argobots"], shared);
    if (!rt) return rt.error();
    inst->m_runtime = std::move(rt).value();

    // Resolve progress/handler pools (default: first pool).
    auto resolve = [&](const char* key) -> Expected<std::shared_ptr<abt::Pool>> {
        std::string name = config.get_string(key);
        if (name.empty()) return inst->m_runtime->primary_pool();
        return inst->m_runtime->find_pool(name);
    };
    auto progress = resolve("progress_pool");
    if (!progress) return progress.error();
    inst->m_progress_pool = std::move(progress).value();
    auto handler = resolve("handler_pool");
    if (!handler) return handler.error();
    inst->m_handler_pool = std::move(handler).value();

    if (auto t = config.get_integer("rpc_timeout_ms", 0); t > 0)
        inst->m_default_timeout = std::chrono::milliseconds(t);

    inst->m_stats = std::make_shared<StatisticsMonitor>();
    inst->m_monitors.push_back(inst->m_stats);
    inst->m_metrics = std::make_shared<MetricsRegistry>();
    inst->m_monitors.push_back(std::make_shared<MetricsMonitor>(inst->m_metrics));
    inst->m_qos = std::make_unique<QosManager>(inst->m_metrics);
    inst->m_qos->configure(config["qos"]);
    const auto& mon = config["monitoring"];
    inst->m_monitoring_enabled = mon.get_bool("enable", true);
    if (auto p = mon.get_integer("sampling_period_ms", 0); p > 0)
        inst->m_sampling_period = std::chrono::milliseconds(p);

    auto ep = inst->m_fabric->attach(inst->m_address, [w = std::weak_ptr<Instance>(inst)](
                                                          mercury::Message msg) {
        if (auto self = w.lock()) self->on_network_message(std::move(msg));
    });
    if (!ep) return ep.error();
    inst->m_endpoint = std::move(ep).value();
    // Fast-path inbox: clean links deliver straight into the endpoint's
    // SPSC ring (no timer, no fabric shared_mutex); the wakeup only has to
    // unpark the progress loop when it has actually gone idle.
    inst->m_endpoint->enable_fast_inbox([w = std::weak_ptr<Instance>(inst)] {
        if (auto self = w.lock()) self->wake_progress_loop();
    });
    // Register the recycle counter up front so it shows up (at zero) in
    // metrics snapshots taken before the first sync.
    inst->m_metrics->counter("margo_pool_recycled_total");

    // Start the network progress loop on its pool (Figure 2).
    inst->m_runtime->post(inst->m_progress_pool,
                          [w = std::weak_ptr<Instance>(inst)] {
                              if (auto self = w.lock()) self->progress_loop();
                          });
    inst->start_sampler();
    return inst;
}

Instance::~Instance() { shutdown(); }

void Instance::shutdown() {
    bool was = m_stopping.exchange(true);
    if (was) return;
    // Stop the periodic sampler by marking inactive (timer self-reschedules).
    m_sampler_active.store(false);
    // Let monitors quiesce background work (e.g. autoscaler decision
    // threads) while the runtime is still fully alive. Copied out so a
    // monitor joining a thread never holds m_monitors_mutex.
    {
        std::vector<std::shared_ptr<Monitor>> monitors;
        {
            std::lock_guard lk{m_monitors_mutex};
            monitors = m_monitors;
        }
        for (auto& m : monitors) m->on_shutdown();
    }
    // Wake the progress loop and wait for it to drain.
    m_queue_cv.signal_all();
    m_progress_done.wait();
    // Close the pending-call registry and cancel everything registered so
    // far. Bumping the generation under the lock makes the race with
    // forward() deterministic: a forward that registered before this sweep
    // is cancelled right here; one arriving after sees the closed registry
    // and fails fast without ever blocking.
    PendingMap pending{PendingMap::key_compare{}, PendingMap::allocator_type{m_pending_node_pool}};
    {
        std::lock_guard lk{m_pending_mutex};
        ++m_pending_generation;
        pending = std::move(m_pending); // same allocator: node steal, no copies
        m_pending.clear();
    }
    for (auto& [seq, call] : pending) {
        call->cancelled.store(true);
        mercury::Message m;
        m.status = static_cast<std::int32_t>(Error::Code::Canceled) + 1;
        m.payload = "instance shut down";
        call->response.set_value(std::move(m));
    }
    // Condition-based drain: the last in-flight forward signals on its way
    // out (its guard observes m_stopping). If a forward's decrement to zero
    // predates the m_stopping store in the seq_cst order, its guard may skip
    // the signal — but then the load below is ordered after that decrement
    // and reads zero, so exactly one side always sets the eventual.
    if (m_active_forwards.load() == 0) m_forwards_drained.set();
    m_forwards_drained.wait();
    m_endpoint->detach();
    m_runtime->finalize();
    // "The default implementation of this monitoring system captures
    // statistics and outputs them as JSON when shutting down the service."
    if (m_monitoring_dump_sink) m_monitoring_dump_sink(m_stats->to_json());
    m_stopped.store(true);
}

double Instance::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - m_epoch)
        .count();
}

// ---------------------------------------------------------------------------
// RPC registration
// ---------------------------------------------------------------------------

Expected<std::uint64_t> Instance::register_rpc(std::string name, std::uint16_t provider_id,
                                               Handler handler,
                                               std::shared_ptr<abt::Pool> pool) {
    std::uint64_t id = rpc_name_to_id(name);
    std::lock_guard lk{m_rpc_mutex};
    auto key = std::make_pair(id, provider_id);
    if (auto it = m_rpcs.find(key); it != m_rpcs.end()) {
        // Distinguish a true duplicate from a 32-bit hash collision between
        // different names: the latter would silently alias two RPCs.
        if (it->second->name != name)
            return Error{Error::Code::Conflict,
                         "RPC id collision: '" + name + "' and '" + it->second->name +
                             "' hash to the same 32-bit id " + std::to_string(id) +
                             " (provider " + std::to_string(provider_id) + ")"};
        return Error{Error::Code::AlreadyExists,
                     "RPC '" + name + "' already registered for provider " +
                         std::to_string(provider_id)};
    }
    auto entry = std::make_shared<RpcEntry>();
    entry->name = std::move(name);
    entry->handler = std::move(handler);
    entry->pool = pool ? std::move(pool) : m_handler_pool;
    m_rpcs[key] = std::move(entry);
    return id;
}

namespace {
/// Wait until no handler ULT for an erased registration is still running.
/// ULT-aware: abt::yield() lets sibling ULTs proceed when called from one,
/// and degrades to a thread yield (plus a short sleep so a single-core host
/// is not starved) elsewhere. Handlers finish on their own and the erased
/// map entry guarantees no new invocation starts, but a handler stuck on a
/// long forward timeout stalls this wait for the full duration — returning
/// early would let the caller destroy state the handler still uses, so the
/// wait stays unbounded and instead logs its progress once per second.
void drain_handlers(const std::shared_ptr<std::atomic<int>>& inflight) {
    auto next_warn = std::chrono::steady_clock::now() + std::chrono::seconds(1);
    int waited_s = 0;
    while (inflight->load(std::memory_order_acquire) != 0) {
        abt::yield();
        if (!abt::current_ult())
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        if (std::chrono::steady_clock::now() >= next_warn) {
            ++waited_s;
            log::warn("margo",
                      "deregister: still waiting on %d in-flight handler(s) after %d s",
                      inflight->load(std::memory_order_relaxed), waited_s);
            next_warn += std::chrono::seconds(1);
        }
    }
}
} // namespace

Status Instance::deregister_rpc(std::string_view name, std::uint16_t provider_id) {
    std::shared_ptr<std::atomic<int>> inflight;
    {
        std::lock_guard lk{m_rpc_mutex};
        auto key = std::make_pair(rpc_name_to_id(name), provider_id);
        auto it = m_rpcs.find(key);
        if (it == m_rpcs.end())
            return Error{Error::Code::NotFound,
                         "RPC '" + std::string(name) + "' not registered for provider " +
                             std::to_string(provider_id)};
        if (it->second->name != name)
            return Error{Error::Code::Conflict,
                         "deregister_rpc('" + std::string(name) + "') would remove '" +
                             it->second->name + "': the names collide on 32-bit id " +
                             std::to_string(key.first)};
        inflight = it->second->inflight;
        m_rpcs.erase(it);
    }
    drain_handlers(inflight);
    return {};
}

void Instance::deregister_provider(std::uint16_t provider_id) {
    std::vector<std::shared_ptr<std::atomic<int>>> inflight;
    {
        std::lock_guard lk{m_rpc_mutex};
        for (auto it = m_rpcs.begin(); it != m_rpcs.end();) {
            if (it->first.second == provider_id) {
                inflight.push_back(it->second->inflight);
                it = m_rpcs.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto& c : inflight) drain_handlers(c);
}

// ---------------------------------------------------------------------------
// Forward / dispatch
// ---------------------------------------------------------------------------

namespace detail {

/// Shared state behind AsyncRequest handles. Created by forward_async()
/// after the request is on the wire (or failed to get there — then
/// `completed` is already true and `result` holds the send error).
struct AsyncForwardState {
    InstancePtr instance;
    std::shared_ptr<Instance::PendingCall> call;
    std::uint64_t seq = 0;
    std::uint64_t generation = 0;
    std::chrono::milliseconds timeout{0};
    CallContext mctx;
    double t0 = 0;
    // Completion is resolved exactly once (first waiter, or the destructor
    // for an abandoned call); the mutex orders concurrent waiters on copies
    // of the handle. It is never held across a blocking wait.
    std::mutex mutex;
    bool completed = false;
    std::optional<Expected<std::string>> result;

    ~AsyncForwardState() {
        if (completed || !instance) return;
        // Abandoned without wait(): release the registry slot so
        // dispatch_response() drops a late reply, and close the forward
        // span as failed so every on_forward_start stays paired.
        {
            std::lock_guard lk{instance->m_pending_mutex};
            if (instance->m_pending_generation == generation)
                instance->m_pending.erase(seq);
        }
        mctx.duration_us = instance->now_us() - t0;
        instance->emit([&](Monitor& m) { m.on_forward_complete(mctx, false); });
    }
};

} // namespace detail

Expected<std::string> Instance::forward(const std::string& address, std::string_view rpc_name,
                                        std::string payload, ForwardOptions options) {
    // Track in-progress forwards so shutdown() can drain them after failing
    // their pending calls (their ULTs must run to completion before the
    // execution streams are stopped). Held across send *and* wait so the
    // synchronous path counts as one uninterrupted in-flight section.
    ForwardGuard guard{this};
    return forward_async(address, rpc_name, std::move(payload), options).wait();
}

AsyncRequest Instance::forward_async(const std::string& address, std::string_view rpc_name,
                                     std::string payload, ForwardOptions options) {
    // Pooled: the control block + state live in one recycled block, so a
    // warm forward does not touch the heap for its bookkeeping.
    auto state = std::allocate_shared<detail::AsyncForwardState>(
        PoolAllocator<detail::AsyncForwardState>{m_async_state_pool});
    state->instance = shared_from_this();
    state->timeout = options.timeout.count() > 0 ? options.timeout : m_default_timeout;
    auto fail_now = [&](Error e) {
        state->completed = true;
        state->result.emplace(std::move(e));
        return AsyncRequest{std::move(state)};
    };
    if (m_stopping.load())
        return fail_now(Error{Error::Code::InvalidState, "instance is shutting down"});
    // Cover the registration/send window; a blocked waiter re-enters the
    // guard inside AsyncRequest::wait().
    ForwardGuard guard{this};

    mercury::Message msg;
    msg.kind = mercury::Message::Kind::Request;
    msg.rpc_id = rpc_name_to_id(rpc_name);
    msg.rpc_name = std::string(rpc_name);
    msg.provider_id = options.provider_id;
    msg.seq = m_next_seq.fetch_add(1);
    msg.payload = std::move(payload);
    // Parent RPC context (Listing 1): inherited from the ambient RpcContext
    // if the caller is itself serving an RPC (handler ULTs carry it; worker
    // ULTs inherit it via ContextScope).
    RpcContext ambient = current_rpc_context();
    msg.parent_rpc_id = ambient.rpc_id;
    msg.parent_provider_id = ambient.provider_id;
    // Tenant identity rides the envelope like the trace: set by TenantScope
    // on clients, inherited by handler ULTs on servers, so multi-hop fan-out
    // bills to the originating tenant.
    msg.tenant_id = ambient.tenant.id;
    // Forward span: continue the ambient trace, or root a fresh one so every
    // client-side call is traceable end to end. The envelope carries the
    // span id; the target's handler span becomes its child.
    TraceContext span;
    span.trace_id = ambient.trace.active() ? ambient.trace.trace_id : next_trace_id();
    span.parent_span_id = ambient.trace.active() ? ambient.trace.span_id : 0;
    span.span_id = next_span_id();
    msg.trace_id = span.trace_id;
    msg.span_id = span.span_id;

    CallContext& mctx = state->mctx;
    mctx.rpc_id = msg.rpc_id;
    mctx.provider_id = msg.provider_id;
    mctx.parent_rpc_id = msg.parent_rpc_id;
    mctx.parent_provider_id = msg.parent_provider_id;
    mctx.name = std::string(rpc_name);
    mctx.peer = address;
    mctx.self = m_address;
    mctx.payload_size = msg.payload.size();
    mctx.trace_id = span.trace_id;
    mctx.span_id = span.span_id;
    mctx.parent_span_id = span.parent_span_id;

    auto call = std::allocate_shared<PendingCall>(PoolAllocator<PendingCall>{m_pending_call_pool});
    {
        std::lock_guard lk{m_pending_mutex};
        if (m_pending_generation != 0) {
            // shutdown() already swept the registry; registering now would
            // park this call forever since nobody will cancel it again.
            return fail_now(Error{Error::Code::Canceled, "RPC '" + std::string(rpc_name) +
                                                             "' canceled: instance shut down"});
        }
        state->generation = m_pending_generation;
        m_pending[msg.seq] = call;
    }
    state->call = call;
    state->seq = msg.seq;
    state->t0 = now_us();
    emit([&](Monitor& m) { m.on_forward_start(mctx); });

    if (auto st = m_endpoint->send(address, std::move(msg)); !st.ok()) {
        {
            std::lock_guard lk{m_pending_mutex};
            if (m_pending_generation == state->generation) m_pending.erase(state->seq);
        }
        emit([&](Monitor& m) { m.on_forward_complete(mctx, false); });
        return fail_now(st.error());
    }
    return AsyncRequest{std::move(state)};
}

bool AsyncRequest::test() const {
    if (!m_state) return false;
    std::lock_guard lk{m_state->mutex};
    if (m_state->completed) return true;
    return m_state->call && m_state->call->response.test();
}

Expected<std::string> AsyncRequest::wait() {
    if (!m_state)
        return Error{Error::Code::InvalidState, "wait() on an empty AsyncRequest"};
    detail::AsyncForwardState& st = *m_state;
    {
        std::lock_guard lk{st.mutex};
        if (st.completed) return *st.result;
    }
    Instance* inst = st.instance.get();
    // A blocked waiter counts toward the shutdown drain, exactly like a
    // synchronous forward; shutdown()'s sweep sets the eventual, so this
    // never outlives the drain by more than the wakeup.
    Instance::ForwardGuard guard{inst};
    // take_for moves the response Message out of the eventual: the single
    // logical consumer of a pending call never copies the payload. (A
    // concurrent waiter on a copied handle observes `completed` below and
    // reads the cached result instead.)
    auto response = st.call->response.take_for(
        std::chrono::duration_cast<std::chrono::microseconds>(st.timeout));
    std::lock_guard lk{st.mutex};
    if (st.completed) return *st.result; // a concurrent waiter resolved it
    {
        std::lock_guard plk{inst->m_pending_mutex};
        // If the generation moved, shutdown's sweep already emptied the map
        // (and a different call could in principle reuse the slot); only the
        // registering generation may erase.
        if (inst->m_pending_generation == st.generation) inst->m_pending.erase(st.seq);
    }
    st.mctx.duration_us = inst->now_us() - st.t0;
    const std::string& rpc_name = st.mctx.name;
    if (!response) {
        inst->emit([&](Monitor& m) { m.on_forward_complete(st.mctx, false); });
        if (st.call->cancelled.load())
            st.result.emplace(Error{Error::Code::Canceled,
                                    "RPC '" + rpc_name + "' canceled: instance shut down"});
        else
            st.result.emplace(Error{Error::Code::Timeout,
                                    "RPC '" + rpc_name + "' to " + st.mctx.peer +
                                        " timed out"});
    } else if (response->status != 0) {
        inst->emit([&](Monitor& m) { m.on_forward_complete(st.mctx, false); });
        auto code = static_cast<Error::Code>(response->status - 1);
        st.result.emplace(Error{
            code, response->payload.empty() ? "remote error" : response->payload});
    } else {
        inst->emit([&](Monitor& m) { m.on_forward_complete(st.mctx, true); });
        st.result.emplace(std::move(response->payload));
    }
    st.completed = true;
    return *st.result;
}

void Instance::on_network_message(mercury::Message msg) {
    // Called from arbitrary threads (fabric slow path). Enqueue for the
    // progress ULT. The CondVar enqueues waiters before releasing the held
    // mutex, so signaling after the push can never be lost.
    m_queue_mutex.lock();
    m_queue.push_back(std::move(msg));
    m_queue_mutex.unlock();
    m_queue_cv.signal_one();
}

void Instance::wake_progress_loop() {
    // Fast-path producer side of the idle protocol. The push into the SPSC
    // ring already happened; the fence orders it before the idle-flag read
    // (pairing with the consumer's store-then-fence-then-recheck), so either
    // we observe the consumer going idle, or the consumer's recheck observes
    // our message — never neither.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!m_progress_idle.load(std::memory_order_relaxed)) return;
    // The consumer may be between its recheck and the CondVar park. It still
    // holds m_queue_mutex there, and CondVar::wait_for registers the waiter
    // before releasing the mutex — so this lock/unlock serializes with the
    // park and the signal below cannot fall into the gap.
    m_queue_mutex.lock();
    m_queue_mutex.unlock();
    m_queue_cv.signal_one();
}

void Instance::progress_loop() {
    using namespace std::chrono_literals;
    mercury::Endpoint* ep = m_endpoint.get();
    mercury::Message msg;
    for (;;) {
        // Drain the lock-free fast inbox first: the common steady-state
        // source. Each message is dispatched immediately (no handoff through
        // m_queue), which is what removes the timer hop + fabric lock from
        // the clean-link round trip.
        bool did_work = false;
        while (ep->poll_fast(msg)) {
            did_work = true;
            if (msg.kind == mercury::Message::Kind::Request)
                dispatch_request(std::move(msg));
            else
                dispatch_response(std::move(msg));
        }
        // Then batch-drain the slow queue, dropping the lock around each
        // dispatch so producers never block behind handler bookkeeping.
        m_queue_mutex.lock();
        while (!m_queue.empty()) {
            msg = m_queue.pop_front();
            m_queue_mutex.unlock();
            did_work = true;
            if (msg.kind == mercury::Message::Kind::Request)
                dispatch_request(std::move(msg));
            else
                dispatch_response(std::move(msg));
            m_queue_mutex.lock();
        }
        if (m_stopping.load()) {
            m_queue_mutex.unlock();
            break;
        }
        if (did_work) {
            // New work may have arrived while dispatching; re-poll before
            // considering the park.
            m_queue_mutex.unlock();
            continue;
        }
        // Idle protocol (consumer side): publish the flag, fence, recheck
        // the fast ring. A producer that pushed before our fence is seen by
        // the recheck; one that pushed after it sees the flag and signals.
        m_progress_idle.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (!ep->fast_inbox_empty() || !m_queue.empty()) {
            m_progress_idle.store(false, std::memory_order_relaxed);
            m_queue_mutex.unlock();
            continue;
        }
        m_queue_cv.wait_for(m_queue_mutex, 50ms);
        m_progress_idle.store(false, std::memory_order_relaxed);
        m_queue_mutex.unlock();
    }
    m_progress_idle.store(false, std::memory_order_relaxed);
    // Shutdown: discard whatever is still in the fast ring, mirroring the
    // slow queue (pending calls complete as Canceled via the sweep; request
    // senders observe their timeout, as with any message lost to teardown).
    while (ep->poll_fast(msg)) {}
    m_progress_done.set();
}

namespace detail {

/// Per-request dispatch state. Pooled (allocate_shared over the instance's
/// dispatch free list) and carried to the handler ULT in Ult::task_payload,
/// so a warm dispatch allocates nothing. The destructor owns the counter
/// decrements — Runtime::finalize()'s abort backstop destroys queued ULTs
/// without running them, and only a destructor fires on that path, which
/// keeps drain_handlers() from spinning forever on a dispatch discarded
/// un-run.
struct DispatchCtx {
    InstancePtr self;
    std::shared_ptr<const Instance::RpcEntry> entry;
    mercury::Message msg;
    CallContext mctx;
    double t_received = 0;

    ~DispatchCtx() {
        self->m_in_flight.fetch_sub(1);
        entry->inflight->fetch_sub(1, std::memory_order_release);
    }

    /// ULT entry point (function pointer: the posting closure stays within
    /// std::function's small-buffer optimization).
    static void run(void* p) {
        auto* ctx = static_cast<DispatchCtx*>(p);
        Instance* self = ctx->self.get();
        double t_start = self->now_us();
        ctx->mctx.queue_delay_us = t_start - ctx->t_received;
        self->emit([&](Monitor& m) { m.on_handler_start(ctx->mctx); });
        {
            // Ambient context for the handler: nested forwards report this
            // RPC as their parent and extend this handler's span.
            ContextScope scope{RpcContext{
                ctx->msg.rpc_id, ctx->msg.provider_id,
                TraceContext{ctx->mctx.trace_id, ctx->mctx.span_id, ctx->mctx.parent_span_id},
                TenantContext{ctx->msg.tenant_id}}};
            Request req{self, std::move(ctx->msg)};
            ctx->entry->handler(req);
        }
        ctx->mctx.duration_us = self->now_us() - t_start;
        self->emit([&](Monitor& m) { m.on_handler_complete(ctx->mctx); });
    }
};

} // namespace detail

void Instance::dispatch_request(mercury::Message msg) {
    std::shared_ptr<const RpcEntry> entry;
    {
        std::lock_guard lk{m_rpc_mutex};
        auto it = m_rpcs.find({msg.rpc_id, msg.provider_id});
        if (it == m_rpcs.end()) {
            Request req{this, std::move(msg)};
            req.respond_error(Error{Error::Code::NoSuchRpc,
                                    "no such RPC (id " + std::to_string(req.rpc_id()) +
                                        ", provider " + std::to_string(req.provider_id()) + ")"});
            return;
        }
        if (!msg.rpc_name.empty() && msg.rpc_name != it->second->name) {
            // Hash collision across processes: the caller's name maps to the
            // same 32-bit id as a different RPC registered here. Running the
            // wrong handler would silently corrupt both protocols.
            std::string local_name = it->second->name;
            Request req{this, std::move(msg)};
            req.respond_error(Error{Error::Code::Conflict,
                                    "RPC id " + std::to_string(req.rpc_id()) +
                                        " names '" + local_name + "' here but '" +
                                        req.rpc_name() + "' at the caller (hash collision)"});
            return;
        }
        // Pin the registration with a refcount instead of copying it (a
        // Handler copy would re-allocate its captures on every request).
        entry = it->second;
        // Claimed under m_rpc_mutex, so a concurrent deregister either sees
        // this invocation and drains it, or already erased the entry and we
        // would not be here.
        entry->inflight->fetch_add(1, std::memory_order_relaxed);
    }
    m_in_flight.fetch_add(1);

    // From here on, ctx's destructor releases both counters claimed above.
    auto ctx = std::allocate_shared<detail::DispatchCtx>(
        PoolAllocator<detail::DispatchCtx>{m_dispatch_pool});
    ctx->self = shared_from_this();
    CallContext& mctx = ctx->mctx;
    mctx.rpc_id = msg.rpc_id;
    mctx.provider_id = msg.provider_id;
    mctx.parent_rpc_id = msg.parent_rpc_id;
    mctx.parent_provider_id = msg.parent_provider_id;
    mctx.name = entry->name;
    mctx.peer = msg.source;
    mctx.self = m_address;
    mctx.payload_size = msg.payload.size();
    // Handler span: child of the caller's forward span carried in the
    // envelope. Allocated here so received/start/complete callbacks all
    // correlate under one span id.
    if (msg.trace_id != 0) {
        mctx.trace_id = msg.trace_id;
        mctx.parent_span_id = msg.span_id;
        mctx.span_id = next_span_id();
    }
    ctx->t_received = now_us();
    emit([&](Monitor& m) { m.on_request_received(mctx); });

    // Weighted admission: charge the request to its tenant's WFQ account and
    // dispatch at the resulting deficit priority. Tenants behind their fair
    // share overtake over-consumers inside a prio handler pool; untenanted
    // traffic (tenant 0) skips the QoS lock entirely and dispatches at 0.
    const int priority = m_qos->charge(msg.tenant_id, msg.payload.size());

    auto pool = entry->pool; // keep alive across the move below
    ctx->entry = std::move(entry);
    ctx->msg = std::move(msg);
    m_runtime->post_with_payload(pool, std::move(ctx), &detail::DispatchCtx::run, priority);
}

void Instance::dispatch_response(mercury::Message msg) {
    std::shared_ptr<PendingCall> call;
    {
        std::lock_guard lk{m_pending_mutex};
        auto it = m_pending.find(msg.seq);
        if (it == m_pending.end()) return; // caller timed out; drop
        call = it->second;
        m_pending.erase(it);
    }
    call->response.set_value(std::move(msg));
}

// ---------------------------------------------------------------------------
// Bulk
// ---------------------------------------------------------------------------

CallContext Instance::bulk_call_context(const std::string& peer) const {
    // Attribute the transfer to the RPC whose handler drives it (REMI's
    // fetch_rdma, warabi reads, ...) and open a bulk child span so RDMA
    // phases show up inside the handler span in a trace.
    CallContext mctx;
    mctx.name = "__bulk__";
    mctx.peer = peer;
    mctx.self = m_address;
    RpcContext ambient = current_rpc_context();
    mctx.rpc_id = ambient.rpc_id;
    mctx.provider_id = ambient.provider_id;
    if (ambient.trace.active()) {
        mctx.trace_id = ambient.trace.trace_id;
        mctx.parent_span_id = ambient.trace.span_id;
        mctx.span_id = next_span_id();
    }
    return mctx;
}

mercury::BulkHandle Instance::expose(char* data, std::size_t size, bool writable) {
    return m_endpoint->expose(data, size, writable);
}

void Instance::unexpose(std::uint64_t id) { m_endpoint->unexpose(id); }

Status Instance::bulk_pull(const mercury::BulkHandle& remote, std::size_t remote_offset,
                           char* local, std::size_t size) {
    double t0 = now_us();
    auto delay = m_endpoint->bulk_pull(remote, remote_offset, local, size);
    if (!delay) return delay.error();
    if (*delay >= 1.0)
        m_runtime->sleep_for(std::chrono::microseconds(static_cast<std::int64_t>(*delay)));
    CallContext mctx = bulk_call_context(remote.address);
    emit([&](Monitor& m) { m.on_bulk_complete(mctx, size, now_us() - t0); });
    return {};
}

Status Instance::bulk_push(const mercury::BulkHandle& remote, std::size_t remote_offset,
                           const char* local, std::size_t size) {
    double t0 = now_us();
    auto delay = m_endpoint->bulk_push(remote, remote_offset, local, size);
    if (!delay) return delay.error();
    if (*delay >= 1.0)
        m_runtime->sleep_for(std::chrono::microseconds(static_cast<std::int64_t>(*delay)));
    CallContext mctx = bulk_call_context(remote.address);
    emit([&](Monitor& m) { m.on_bulk_complete(mctx, size, now_us() - t0); });
    return {};
}

// ---------------------------------------------------------------------------
// Monitoring plumbing
// ---------------------------------------------------------------------------

void Instance::sync_pool_metrics() const {
    // The free lists count recycles monotonically; fold the delta since the
    // last export into the counter. exchange() makes concurrent snapshots
    // count each delta exactly once (a stale total simply contributes zero).
    std::uint64_t total = m_pending_call_pool->recycled() + m_pending_node_pool->recycled() +
                          m_async_state_pool->recycled() + m_dispatch_pool->recycled() +
                          m_runtime->ult_pool_recycled();
    std::uint64_t last = m_pool_recycled_exported.exchange(total, std::memory_order_relaxed);
    if (total > last) m_metrics->counter("margo_pool_recycled_total").inc(total - last);
}

void Instance::add_monitor(std::shared_ptr<Monitor> monitor) {
    std::lock_guard lk{m_monitors_mutex};
    m_monitors.push_back(std::move(monitor));
}

void Instance::notify_batch_op(std::string_view op_name, std::size_t payload_size,
                               double duration_us, bool ok) {
    // Attribute the op to the enclosing batched RPC (the ambient handler
    // context) and open a child span under the handler span, mirroring how
    // bulk transfers report themselves.
    RpcContext ambient = current_rpc_context();
    CallContext mctx;
    mctx.rpc_id = rpc_name_to_id(op_name);
    mctx.provider_id = ambient.provider_id;
    mctx.parent_rpc_id = ambient.rpc_id;
    mctx.parent_provider_id = ambient.provider_id;
    mctx.name = std::string(op_name);
    mctx.peer = m_address;
    mctx.self = m_address;
    mctx.payload_size = payload_size;
    mctx.duration_us = duration_us;
    if (ambient.trace.active()) {
        mctx.trace_id = ambient.trace.trace_id;
        mctx.parent_span_id = ambient.trace.span_id;
        mctx.span_id = next_span_id();
    }
    emit([&](Monitor& m) { m.on_batch_op(mctx, ok); });
}

void Instance::start_sampler() {
    m_sampler_active.store(true);
    auto w = std::weak_ptr<Instance>(shared_from_this());
    m_runtime->timer().schedule(
        std::chrono::duration_cast<std::chrono::microseconds>(m_sampling_period), [w] {
            if (auto self = w.lock()) self->sampler_tick();
        });
}

void Instance::sampler_tick() {
    if (!m_sampler_active.load() || m_stopping.load()) return;
    std::map<std::string, std::size_t> pool_sizes;
    for (const auto& name : m_runtime->pool_names()) {
        if (auto p = m_runtime->find_pool(name)) pool_sizes[name] = (*p)->size();
    }
    emit([&](Monitor& m) { m.on_progress_sample(m_in_flight.load(), pool_sizes); });
    auto w = std::weak_ptr<Instance>(shared_from_this());
    m_runtime->timer().schedule(
        std::chrono::duration_cast<std::chrono::microseconds>(m_sampling_period), [w] {
            if (auto self = w.lock()) self->sampler_tick();
        });
}

// ---------------------------------------------------------------------------
// Configuration & reconfiguration
// ---------------------------------------------------------------------------

json::Value Instance::config() const {
    auto cfg = json::Value::object();
    cfg["address"] = m_address;
    cfg["argobots"] = m_runtime->config();
    cfg["progress_pool"] = m_progress_pool->name();
    cfg["handler_pool"] = m_handler_pool->name();
    cfg["rpc_timeout_ms"] = static_cast<std::int64_t>(m_default_timeout.count());
    cfg["monitoring"]["enable"] = m_monitoring_enabled.load();
    cfg["monitoring"]["sampling_period_ms"] =
        static_cast<std::int64_t>(m_sampling_period.count());
    return cfg;
}

Expected<std::shared_ptr<abt::Pool>> Instance::find_pool_by_name(std::string_view name) const {
    return m_runtime->find_pool(name);
}

Expected<std::shared_ptr<abt::Pool>> Instance::add_pool_from_json(const json::Value& pool_config) {
    return m_runtime->add_pool(pool_config);
}

Status Instance::remove_pool(std::string_view name) {
    // Margo-level checks first (§5: "Margo ensures that the changes are
    // always valid").
    if (m_progress_pool->name() == name)
        return Error{Error::Code::InvalidState, "cannot remove the progress pool"};
    if (m_handler_pool->name() == name)
        return Error{Error::Code::InvalidState, "cannot remove the default handler pool"};
    {
        std::lock_guard lk{m_rpc_mutex};
        for (const auto& [key, entry] : m_rpcs) {
            if (entry->pool->name() == name)
                return Error{Error::Code::InvalidState,
                             "pool '" + std::string(name) + "' is in use by RPC '" + entry->name +
                                 "'"};
        }
    }
    return m_runtime->remove_pool(name);
}

Status Instance::add_xstream_from_json(const json::Value& xstream_config) {
    return m_runtime->add_xstream(xstream_config);
}

Status Instance::remove_xstream(std::string_view name) {
    return m_runtime->remove_xstream(name);
}

} // namespace mochi::margo
