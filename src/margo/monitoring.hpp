// Margo's customizable monitoring infrastructure (§4 of the paper).
//
// The runtime invokes Monitor callbacks at every step of an RPC's lifetime
// (forward start/completion at the origin; reception, ULT scheduling,
// handler execution at the target; bulk transfers) and periodically samples
// runtime-wide gauges (in-flight RPCs, pool depths). Any component built on
// Margo gets this "at no engineering cost".
//
// StatisticsMonitor is the default implementation: it aggregates statistics
// keyed by (parent_rpc_id:parent_provider_id:rpc_id:provider_id) and peer
// address, and dumps them as JSON in the shape of the paper's Listing 1.
#pragma once

#include "common/json.hpp"

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

namespace mochi::margo {

/// Provider id used for RPCs not addressed to a specific provider; matches
/// Margo's MARGO_DEFAULT_PROVIDER_ID shown as 65535 in Listing 1.
inline constexpr std::uint16_t k_default_provider_id = 65535;

/// Sentinel for the 64-bit parent_rpc_id fields (CallContext,
/// mercury::Message) when an RPC has no parent, i.e. it is a root operation
/// issued outside any handler. Listing 1 renders the "no parent" slots of
/// the statistics key with the default provider id (65535), so the sentinel
/// is kept numerically equal to k_default_provider_id — but it is a
/// distinct, properly 64-bit-typed constant: parent_rpc_id holds *RPC ids*
/// (32-bit name hashes widened to 64 bits), not provider ids.
inline constexpr std::uint64_t k_no_parent_rpc_id = 65535;

/// Identity and timing context of one RPC operation, passed to callbacks.
struct CallContext {
    std::uint64_t rpc_id = 0;
    std::uint16_t provider_id = k_default_provider_id;
    std::uint64_t parent_rpc_id = k_no_parent_rpc_id; // see k_no_parent_rpc_id
    std::uint16_t parent_provider_id = k_default_provider_id;
    std::string name;        ///< RPC name, e.g. "echo"
    std::string peer;        ///< target address (origin side) / source (target side)
    std::string self;        ///< address of the process invoking the callback
    std::size_t payload_size = 0;
    // Durations in microseconds, filled per callback (see each callback doc).
    double duration_us = 0;
    double queue_delay_us = 0; ///< reception -> handler ULT start
    // Distributed-tracing identity (0 = untraced). On the origin side,
    // span_id is the forward span; on the target side it is the handler
    // span and parent_span_id is the originating forward span.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
};

/// Callback interface. All methods have empty defaults so custom monitors
/// override only what they need ("lets users inject callbacks ... at various
/// points in the lifetime of an RPC").
class Monitor {
  public:
    virtual ~Monitor() = default;

    /// Origin: forward() is about to send the request.
    virtual void on_forward_start(const CallContext&) {}
    /// Origin: response received (duration_us = full round trip) or failed.
    virtual void on_forward_complete(const CallContext&, bool ok) { (void)ok; }
    /// Target: request arrived at the progress loop.
    virtual void on_request_received(const CallContext&) {}
    /// Target: handler ULT started (queue_delay_us set).
    virtual void on_handler_start(const CallContext&) {}
    /// Target: handler ULT finished (duration_us = execution time).
    virtual void on_handler_complete(const CallContext&) {}
    /// Either side: bulk (RDMA) transfer completed.
    virtual void on_bulk_complete(const CallContext&, std::size_t bytes, double duration_us) {
        (void)bytes;
        (void)duration_us;
    }
    /// Target: one logical operation inside a *batched* RPC finished.
    /// Vectored handlers coalesce N client operations into a single RPC, so
    /// the fabric-level callbacks above only see the enclosing request; they
    /// call Instance::notify_batch_op() per operation so traces and metrics
    /// keep per-op resolution (ctx carries a child span of the handler span,
    /// duration_us = that op's execution time).
    virtual void on_batch_op(const CallContext&, bool ok) { (void)ok; }
    /// Periodic runtime sample: in-flight RPC count and pool depths (§4:
    /// "periodically tracks the number of in-flight RPCs and the sizes of
    /// user-level thread pools").
    virtual void on_progress_sample(std::size_t in_flight_rpcs,
                                    const std::map<std::string, std::size_t>& pool_sizes) {
        (void)in_flight_rpcs;
        (void)pool_sizes;
    }
    /// Instance::shutdown() is beginning. Monitors that drive background
    /// work (decision threads, timers) must stop issuing runtime operations
    /// and join in-flight work before returning — the ULT runtime is
    /// finalized right after the drain, so work that escapes this hook races
    /// teardown.
    virtual void on_shutdown() {}
};

/// Simple streaming statistics accumulator (num/avg/min/max/sum/var).
struct Statistics {
    std::uint64_t num = 0;
    double sum = 0, sum_sq = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void add(double x) noexcept {
        ++num;
        sum += x;
        sum_sq += x * x;
        if (x < min) min = x;
        if (x > max) max = x;
    }
    [[nodiscard]] double avg() const noexcept { return num ? sum / static_cast<double>(num) : 0; }
    [[nodiscard]] double variance() const noexcept {
        if (num < 2) return 0;
        double a = avg();
        return sum_sq / static_cast<double>(num) - a * a;
    }
    [[nodiscard]] json::Value to_json() const;
};

/// Default monitor: aggregates per-RPC statistics and runtime gauges, and
/// renders them in the Listing 1 JSON schema.
class StatisticsMonitor : public Monitor {
  public:
    void on_forward_start(const CallContext& ctx) override;
    void on_forward_complete(const CallContext& ctx, bool ok) override;
    void on_request_received(const CallContext& ctx) override;
    void on_handler_start(const CallContext& ctx) override;
    void on_handler_complete(const CallContext& ctx) override;
    void on_bulk_complete(const CallContext& ctx, std::size_t bytes, double duration_us) override;
    void on_progress_sample(std::size_t in_flight_rpcs,
                            const std::map<std::string, std::size_t>& pool_sizes) override;

    /// Render all statistics as JSON (the runtime API of §4; the same
    /// document Margo would write out at shutdown).
    [[nodiscard]] json::Value to_json() const;

    void reset();

  private:
    struct PeerOriginStats {
        Statistics forward_duration;
        Statistics request_size;
        std::uint64_t failures = 0;
    };
    struct PeerTargetStats {
        Statistics ult_queue_delay;
        Statistics handler_duration;
        Statistics request_size;
    };
    struct RpcStats {
        std::uint64_t rpc_id = 0;
        std::uint16_t provider_id = 0;
        std::uint64_t parent_rpc_id = 0;
        std::uint16_t parent_provider_id = 0;
        std::string name;
        // Keyed by the plain peer address; the "sent to "/"received from "
        // prefixes of Listing 1 are applied only when rendering, so the hot
        // path never builds a prefixed key string per event.
        std::map<std::string, PeerOriginStats> origin; ///< by target address
        std::map<std::string, PeerTargetStats> target; ///< by source address
        Statistics bulk_size;
        Statistics bulk_duration;
    };

    /// Numeric aggregation key. The Listing 1 textual form
    /// "parent_rpc:parent_provider:rpc:provider" is produced at to_json()
    /// time; keeping the map key numeric means a monitored RPC event does
    /// four std::to_string-free integer comparisons instead of building a
    /// throwaway key string (and its heap allocation) per callback.
    struct StatKey {
        std::uint64_t parent_rpc_id;
        std::uint16_t parent_provider_id;
        std::uint64_t rpc_id;
        std::uint16_t provider_id;
        bool operator<(const StatKey& o) const noexcept {
            return std::tie(parent_rpc_id, parent_provider_id, rpc_id, provider_id) <
                   std::tie(o.parent_rpc_id, o.parent_provider_id, o.rpc_id, o.provider_id);
        }
    };

    RpcStats& stats_for(const CallContext& ctx);

    mutable std::mutex m_mutex;
    std::map<StatKey, RpcStats> m_rpcs;
    Statistics m_in_flight;
    std::map<std::string, Statistics> m_pool_sizes;
    std::uint64_t m_samples = 0;
};

} // namespace mochi::margo
