// Multi-tenant quality of service (ROADMAP: "millions of users as a
// scenario"). Three cooperating mechanisms, all keyed by the TenantContext
// carried in the Mercury envelope (tracing.hpp):
//
//  1. *Weighted admission.* Every tenant-tagged request is charged to a
//     deficit-style weighted-fair-queueing account at dispatch: the tenant's
//     virtual time advances by cost/weight, and the request's abt pool
//     priority is derived from how far the tenant's consumption runs ahead
//     of the least-served tenant. On a `prio`/`prio_wait` handler pool the
//     least-served tenant's ULTs therefore run first; a tenant with weight 4
//     sustains 4x the service of a weight-1 tenant before being queued
//     behind it. FIFO pools ignore the priority — admission weighting is
//     opt-in per pool, exactly like Margo's pool kinds.
//
//  2. *Quotas + backpressure.* Per-tenant token buckets (ops/s and bytes/s)
//     are enforced where the work happens — yokan/warabi provider handlers
//     call admit() before touching their backend — and a depleted bucket
//     returns the typed, retryable Error::Code::Backpressure instead of
//     letting the queue grow without bound. Clients back off and resend
//     (docs/QOS.md spells out the retry contract).
//
//  3. *Per-tenant metrics.* tenant_<id>_ops_total / _bytes_total /
//     _shed_total counters land in the instance's MetricsRegistry, so they
//     ride the existing bedrock/get_metrics scrape: bench gates assert
//     fairness from them and the cluster autoscaler treats shedding as
//     pressure (never reclaim capacity while tenants are being shed).
//
// Configured from the instance JSON under "qos" (see QosManager::configure)
// or programmatically with set_tenant(). Unknown tenants fall back to the
// configurable default spec (weight 1, no quotas), so identity alone never
// causes rejections.
#pragma once

#include "common/expected.hpp"
#include "common/json.hpp"
#include "margo/metrics.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace mochi::margo {

/// Per-tenant policy. Weights are relative (only ratios matter); a quota of
/// 0 means unlimited. Burst depths default to one second's worth of quota.
struct TenantSpec {
    double weight = 1.0;
    double ops_per_sec = 0.0;   ///< 0 = unlimited
    double bytes_per_sec = 0.0; ///< 0 = unlimited
    double burst_ops = 0.0;     ///< bucket depth; 0 = ops_per_sec (1 s worth)
    double burst_bytes = 0.0;   ///< bucket depth; 0 = bytes_per_sec
};

class QosManager {
  public:
    using Clock = std::chrono::steady_clock;

    explicit QosManager(std::shared_ptr<MetricsRegistry> metrics)
    : m_metrics(std::move(metrics)) {}

    /// Parse {"default": {...}, "tenants": {"<id>": {"weight": W,
    /// "ops_per_sec": R, "bytes_per_sec": B, "burst_ops": N,
    /// "burst_bytes": N}, ...}}. Unknown keys are ignored; malformed tenant
    /// ids are skipped (configuration must never take a node down).
    void configure(const json::Value& config);

    /// Install/replace one tenant's spec at run time (weights and quotas are
    /// reconfigurable online, like pools and xstreams).
    void set_tenant(std::uint32_t tenant_id, TenantSpec spec);

    [[nodiscard]] TenantSpec tenant(std::uint32_t tenant_id) const;

    /// Charge one inbound request to the tenant's WFQ account and return the
    /// abt pool priority its handler ULT should be pushed with (0 for
    /// untenanted traffic, <= 0 for tenants running ahead of their fair
    /// share). Also feeds tenant_<id>_ops_total / _bytes_total.
    int charge(std::uint32_t tenant_id, std::size_t bytes);

    /// Token-bucket quota gate: ok to proceed, or a retryable Backpressure
    /// error (which also bumps tenant_<id>_shed_total). Providers call this
    /// from their data handlers before touching the backend.
    Status admit(std::uint32_t tenant_id, std::size_t bytes) {
        return admit(tenant_id, bytes, Clock::now());
    }
    /// Deterministic-time overload for unit tests.
    Status admit(std::uint32_t tenant_id, std::size_t bytes, Clock::time_point now);

    /// Cumulative backpressure rejections for one tenant (0 if never seen).
    [[nodiscard]] std::uint64_t shed_total(std::uint32_t tenant_id) const;

  private:
    struct Tenant {
        TenantSpec spec;
        /// WFQ virtual time: normalized service received. Clamped up to the
        /// global minimum on each charge so an idle tenant cannot bank
        /// unbounded credit.
        double vtime = 0.0;
        double op_tokens = 0.0;
        double byte_tokens = 0.0;
        Clock::time_point last_refill{};
        bool primed = false; ///< buckets start full on first sight
        Counter* ops = nullptr;
        Counter* bytes = nullptr;
        Counter* shed = nullptr;
    };

    Tenant& tenant_locked(std::uint32_t tenant_id);
    void refill_locked(Tenant& t, Clock::time_point now);

    std::shared_ptr<MetricsRegistry> m_metrics;
    mutable std::mutex m_mutex;
    TenantSpec m_default;
    std::map<std::uint32_t, Tenant> m_tenants;
    double m_min_vtime = 0.0; ///< least-served active tenant's vtime
};

} // namespace mochi::margo
