// The Margo runtime: binds the ULT runtime (abt) and the RPC fabric
// (mercury) into the shared per-process runtime all Mochi components use
// (Figure 2). One Instance == one simulated service process.
//
// Features reproduced from the paper:
//  - JSON-configured pools/execution streams (Listing 2) with runtime
//    query (find_pool_by_name) and modification (add_pool_from_json, ...),
//    with validity checks (§5, Observation 2).
//  - A network progress loop running on a configurable pool, dispatching
//    incoming RPCs to per-provider handler pools (Figure 2).
//  - The monitoring infrastructure of §4, reporting Listing 1 statistics.
#pragma once

#include "abt/abt.hpp"
#include "common/expected.hpp"
#include "common/json.hpp"
#include "common/pool_alloc.hpp"
#include "common/ring_queue.hpp"
#include "margo/metrics.hpp"
#include "margo/monitoring.hpp"
#include "margo/qos.hpp"
#include "margo/tracing.hpp"
#include "mercury/archive.hpp"
#include "mercury/fabric.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace mochi::margo {

class Instance;
using InstancePtr = std::shared_ptr<Instance>;

/// Compute the stable 32-bit id of an RPC name (Mercury hashes RPC names
/// the same way; Listing 1's rpc_id 2924675071 is such a hash).
[[nodiscard]] std::uint64_t rpc_name_to_id(std::string_view name) noexcept;

namespace detail {
struct AsyncForwardState;
struct DispatchCtx;
}

/// An incoming RPC being handled. Handlers receive a const reference and
/// must call respond()/respond_error() exactly once (unless the RPC was
/// forwarded fire-and-forget).
class Request {
  public:
    [[nodiscard]] const std::string& source() const noexcept { return m_msg.source; }
    [[nodiscard]] const std::string& payload() const noexcept { return m_msg.payload; }
    [[nodiscard]] const std::string& rpc_name() const noexcept { return m_msg.rpc_name; }
    [[nodiscard]] std::uint64_t rpc_id() const noexcept { return m_msg.rpc_id; }
    [[nodiscard]] std::uint16_t provider_id() const noexcept { return m_msg.provider_id; }
    /// QoS identity carried in the envelope; 0 = untenanted legacy caller.
    [[nodiscard]] std::uint32_t tenant_id() const noexcept { return m_msg.tenant_id; }

    /// Deserialize the request payload into `values`.
    template <typename... Ts>
    [[nodiscard]] bool unpack(Ts&... values) const {
        return mercury::unpack(m_msg.payload, values...);
    }

    void respond(std::string payload) const;
    template <typename... Ts>
    void respond_values(const Ts&... values) const {
        respond(mercury::pack(values...));
    }
    void respond_error(const Error& err) const;

  private:
    friend class Instance;
    friend struct detail::DispatchCtx;
    Request(Instance* inst, mercury::Message msg) : m_instance(inst), m_msg(std::move(msg)) {}
    Instance* m_instance;
    mercury::Message m_msg;
};

using Handler = std::function<void(const Request&)>;

struct ForwardOptions {
    std::chrono::milliseconds timeout{2000};
    std::uint16_t provider_id = k_default_provider_id;
};

/// Handle to an RPC issued with Instance::forward_async(). The request is
/// already on the wire when the handle is returned; wait() blocks
/// (ULT-aware) for the response, so a caller can launch N forwards and
/// overlap their round trips. Handles share state when copied; wait() may
/// be called repeatedly (the first outcome is cached). Dropping the last
/// handle without waiting abandons the call: its registry slot is released
/// and its forward span closes as failed, so monitors stay paired.
///
/// Shutdown composes exactly like the synchronous path: an in-flight async
/// forward lives in the same pending-call registry, shutdown()'s sweep
/// cancels it, and any waiter (current or future) observes Canceled instead
/// of hanging. A waiter that is blocked counts toward the shutdown drain
/// (m_active_forwards) for the duration of its wait.
class AsyncRequest {
  public:
    AsyncRequest() = default;

    [[nodiscard]] bool valid() const noexcept { return m_state != nullptr; }
    /// True once the response (or failure) is ready: wait() will not block.
    [[nodiscard]] bool test() const;
    /// Block until the response arrives, the timeout fires, or shutdown
    /// cancels the call. Error codes match forward(): Timeout / Canceled /
    /// the remote error. Calling wait() on an empty handle is InvalidState.
    Expected<std::string> wait();

    /// Typed wait: unpack the response payload into a tuple, surfacing
    /// malformed payloads (and throwing serialize() implementations) as
    /// Expected errors rather than exceptions.
    template <typename... Outs>
    Expected<std::tuple<Outs...>> wait_unpack() {
        auto resp = wait();
        if (!resp) return std::move(resp).error();
        std::tuple<Outs...> out;
        try {
            bool ok =
                std::apply([&](auto&... o) { return mercury::unpack(*resp, o...); }, out);
            if (!ok) return Error{Error::Code::Corruption, "malformed async response payload"};
        } catch (const std::exception& e) {
            return Error{Error::Code::Corruption,
                         std::string("async response unpack threw: ") + e.what()};
        }
        return out;
    }

  private:
    friend class Instance;
    explicit AsyncRequest(std::shared_ptr<detail::AsyncForwardState> state)
    : m_state(std::move(state)) {}
    std::shared_ptr<detail::AsyncForwardState> m_state;
};

class Instance : public std::enable_shared_from_this<Instance> {
  public:
    /// Create a Margo instance attached to `fabric` under `address`.
    /// `config` (optional) carries {"argobots": {...}, "progress_pool": "...",
    /// "handler_pool": "...", "rpc_timeout_ms": N,
    /// "monitoring": {"enable": bool, "sampling_period_ms": N},
    /// "qos": {"default": {...}, "tenants": {"<id>": {...}}} (see qos.hpp)}.
    static Expected<InstancePtr> create(std::shared_ptr<mercury::Fabric> fabric,
                                        std::string address,
                                        const json::Value& config = {});

    ~Instance();
    Instance(const Instance&) = delete;
    Instance& operator=(const Instance&) = delete;

    [[nodiscard]] const std::string& address() const noexcept { return m_address; }
    [[nodiscard]] const std::shared_ptr<abt::Runtime>& runtime() const noexcept {
        return m_runtime;
    }
    [[nodiscard]] const std::shared_ptr<mercury::Fabric>& fabric() const noexcept {
        return m_fabric;
    }
    /// Default pool handler ULTs run on (providers without a dedicated pool
    /// fan vectored batches out to it).
    [[nodiscard]] const std::shared_ptr<abt::Pool>& handler_pool() const noexcept {
        return m_handler_pool;
    }

    // -- RPC registration ----------------------------------------------------

    /// Register `handler` for (name, provider_id); its ULTs run in `pool`
    /// (default: the handler pool). Fails on duplicates.
    Expected<std::uint64_t> register_rpc(std::string name, std::uint16_t provider_id,
                                         Handler handler,
                                         std::shared_ptr<abt::Pool> pool = nullptr);
    /// Remove the registration and wait until no handler invocation for it
    /// is still running, so the caller may destroy whatever the handler
    /// captured. Must not be called from inside the handler being removed.
    Status deregister_rpc(std::string_view name, std::uint16_t provider_id);
    /// Remove every RPC of a provider (used when a provider shuts down).
    /// Drains in-flight handlers like deregister_rpc().
    void deregister_provider(std::uint16_t provider_id);

    // -- RPC invocation ------------------------------------------------------

    /// Send a request and block (ULT-aware) for the response payload.
    Expected<std::string> forward(const std::string& address, std::string_view rpc_name,
                                  std::string payload, ForwardOptions options = {});

    /// Send a request without blocking for the response; see AsyncRequest.
    /// A send-side failure (shutdown, unreachable address) is reported by
    /// the returned handle's wait(), never thrown.
    [[nodiscard]] AsyncRequest forward_async(const std::string& address,
                                             std::string_view rpc_name, std::string payload,
                                             ForwardOptions options = {});

    /// Typed convenience: pack arguments, forward, unpack the result tuple.
    template <typename... Outs, typename... Ins>
    Expected<std::tuple<Outs...>> call(const std::string& address, std::string_view rpc_name,
                                       ForwardOptions options, const Ins&... ins) {
        auto resp = forward(address, rpc_name, mercury::pack(ins...), options);
        if (!resp) return std::move(resp).error();
        std::tuple<Outs...> out;
        // unpack() reports malformed input through its return value, but a
        // user-defined serialize() may throw (resource exhaustion, value
        // validation); an exception escaping here would unwind through the
        // calling ULT's fiber boundary and terminate the process, so both
        // failure modes collapse into the Expected.
        try {
            bool ok =
                std::apply([&](auto&... o) { return mercury::unpack(*resp, o...); }, out);
            if (!ok)
                return Error{Error::Code::Corruption, "malformed response payload for " +
                                                          std::string(rpc_name)};
        } catch (const std::exception& e) {
            return Error{Error::Code::Corruption, "response unpack for " +
                                                      std::string(rpc_name) + " threw: " +
                                                      e.what()};
        }
        return out;
    }

    // -- bulk (RDMA) ---------------------------------------------------------

    mercury::BulkHandle expose(char* data, std::size_t size, bool writable);
    void unexpose(std::uint64_t id);
    /// ULT-aware bulk transfers; the modeled network time is slept on the
    /// calling ULT so the execution stream stays available.
    Status bulk_pull(const mercury::BulkHandle& remote, std::size_t remote_offset, char* local,
                     std::size_t size);
    Status bulk_push(const mercury::BulkHandle& remote, std::size_t remote_offset,
                     const char* local, std::size_t size);

    // -- monitoring (§4) -----------------------------------------------------

    /// Install an additional monitor (the "inject callbacks" API).
    void add_monitor(std::shared_ptr<Monitor> monitor);
    /// Report one logical operation executed inside a batched (vectored)
    /// RPC handler: emits Monitor::on_batch_op with a child span of the
    /// ambient handler span, so coalescing N ops into one RPC keeps per-op
    /// resolution in traces and metrics. `op_name` is the logical operation
    /// ("yokan/put"), `payload_size` that op's bytes, `duration_us` its
    /// execution time.
    void notify_batch_op(std::string_view op_name, std::size_t payload_size,
                         double duration_us, bool ok);
    /// The always-installed statistics monitor.
    [[nodiscard]] const std::shared_ptr<StatisticsMonitor>& statistics() const noexcept {
        return m_stats;
    }
    /// Listing-1-shaped JSON document, available at run time.
    [[nodiscard]] json::Value monitoring_json() const { return m_stats->to_json(); }
    /// §4: "outputs them as JSON when shutting down the service" — if set,
    /// shutdown() hands the final statistics document to this sink (e.g. a
    /// writer into the node's store; margo itself stays storage-agnostic).
    void set_monitoring_dump_sink(std::function<void(const json::Value&)> sink) {
        m_monitoring_dump_sink = std::move(sink);
    }
    /// Enable/disable monitoring callbacks (for overhead ablation, E1).
    void set_monitoring_enabled(bool enabled) noexcept { m_monitoring_enabled = enabled; }
    [[nodiscard]] std::size_t in_flight_rpcs() const noexcept { return m_in_flight.load(); }

    // -- metrics export --------------------------------------------------------

    /// The process's metrics registry. The runtime feeds the margo_* metrics
    /// through an always-installed MetricsMonitor; components add their own
    /// counters/gauges/histograms here (docs/OBSERVABILITY.md names them).
    [[nodiscard]] const std::shared_ptr<MetricsRegistry>& metrics() const noexcept {
        return m_metrics;
    }
    /// Rendered snapshot of the registry (what bedrock/get_metrics returns).
    /// Folds the free-list recycle totals into margo_pool_recycled_total
    /// first, so the counter is current without the hot path touching it.
    [[nodiscard]] json::Value metrics_json() const {
        sync_pool_metrics();
        return m_metrics->to_json();
    }

    // -- multi-tenant QoS ------------------------------------------------------

    /// Weighted admission + quota state for this process. Dispatch charges
    /// every tenant-tagged request here (priority on prio pools); providers
    /// call qos().admit() — usually via margo::Provider::admit() — to
    /// enforce quotas with retryable backpressure. Configure under the
    /// "qos" key of the instance config or via qos().set_tenant().
    [[nodiscard]] QosManager& qos() noexcept { return *m_qos; }
    [[nodiscard]] const QosManager& qos() const noexcept { return *m_qos; }

    // -- configuration & online reconfiguration (§5) --------------------------

    [[nodiscard]] json::Value config() const;
    [[nodiscard]] Expected<std::shared_ptr<abt::Pool>> find_pool_by_name(std::string_view name) const;
    Expected<std::shared_ptr<abt::Pool>> add_pool_from_json(const json::Value& pool_config);
    /// Margo-level validity checks on top of abt's: the progress/handler
    /// pools and pools bound to registered RPCs cannot be removed.
    Status remove_pool(std::string_view name);
    Status add_xstream_from_json(const json::Value& xstream_config);
    Status remove_xstream(std::string_view name);

    /// Stop the progress loop, detach from the network, finalize the ULT
    /// runtime. Idempotent; also called by the destructor.
    void shutdown();

    [[nodiscard]] bool is_shutdown() const noexcept { return m_stopped.load(); }

  private:
    friend class Request;
    friend class AsyncRequest;
    friend struct detail::AsyncForwardState;
    friend struct detail::DispatchCtx;
    Instance() = default;

    /// RAII tracker of in-progress forward sections: synchronous forwards
    /// for their whole duration, async ones while registering/sending and
    /// again while a waiter blocks. The guard doubles as the drain signal —
    /// the last forward out the door after m_stopping wakes shutdown()
    /// instead of shutdown() polling the counter.
    struct ForwardGuard {
        Instance* inst;
        explicit ForwardGuard(Instance* i) : inst(i) { i->m_active_forwards.fetch_add(1); }
        ~ForwardGuard() {
            if (inst->m_active_forwards.fetch_sub(1) == 1 && inst->m_stopping.load())
                inst->m_forwards_drained.set();
        }
    };

    struct RpcEntry {
        std::string name;
        Handler handler;
        std::shared_ptr<abt::Pool> pool;
        /// Number of handler ULTs currently executing for this registration.
        /// Incremented under m_rpc_mutex at dispatch, decremented when the
        /// handler returns; deregister_rpc() waits for it to reach zero so
        /// the owner of the handler's captures can be destroyed safely.
        std::shared_ptr<std::atomic<int>> inflight = std::make_shared<std::atomic<int>>(0);
    };
    struct PendingCall {
        abt::Eventual<mercury::Message> response;
        /// Set by shutdown() before completing the eventual, so a forward
        /// whose wait_for() raced the cancellation (the timeout fired while
        /// set_value was in flight) still reports Canceled, not Timeout.
        std::atomic<bool> cancelled{false};
    };
    // Per-handler-ULT context (margo::RpcContext, tracing.hpp) lets nested
    // forwards inherit parent RPC ids and the active trace.

    void on_network_message(mercury::Message msg);
    void progress_loop();
    void wake_progress_loop();
    void dispatch_request(mercury::Message msg);
    void dispatch_response(mercury::Message msg);
    void start_sampler();
    void sampler_tick();
    double now_us() const;
    /// Reconcile the absolute FreeList recycle counts into the monotonic
    /// margo_pool_recycled_total counter (called from metrics_json()).
    void sync_pool_metrics() const;
    /// CallContext for a bulk transfer, attributed to the ambient RPC/trace.
    CallContext bulk_call_context(const std::string& peer) const;

    std::shared_ptr<mercury::Fabric> m_fabric;
    std::shared_ptr<mercury::Endpoint> m_endpoint;
    std::shared_ptr<abt::Runtime> m_runtime;
    std::string m_address;
    std::chrono::steady_clock::time_point m_epoch;

    std::shared_ptr<abt::Pool> m_progress_pool;
    std::shared_ptr<abt::Pool> m_handler_pool;
    std::chrono::milliseconds m_default_timeout{2000};

    // Incoming message queue consumed by the progress ULT. The slow-path
    // fabric delivery lands here; fast-path messages bypass it entirely via
    // the endpoint's SPSC ring, which the progress loop drains lock-free.
    // The ring-buffer queue recycles its slots, so steady-state traffic that
    // does reach it stays allocation-free (unlike a deque's chunk churn).
    abt::Mutex m_queue_mutex;
    abt::CondVar m_queue_cv;
    RingQueue<mercury::Message> m_queue;
    /// Dekker-style idle flag for the fast-path wakeup: the progress loop
    /// publishes "about to block" before re-checking the fast inbox, and a
    /// fast-path producer publishes its push before reading the flag (both
    /// via seq_cst fences), so at least one side always sees the other and
    /// a message can never be parked behind a sleeping consumer.
    std::atomic<bool> m_progress_idle{false};
    std::atomic<bool> m_stopping{false};
    std::atomic<bool> m_stopped{false};
    abt::Eventual<void> m_progress_done;

    mutable std::mutex m_rpc_mutex;
    // Entries are shared_ptr-held so dispatch pins a registration with one
    // refcount bump instead of copying the name + handler (a std::function
    // copy re-allocates any non-trivial capture on every request).
    std::map<std::pair<std::uint64_t, std::uint16_t>, std::shared_ptr<const RpcEntry>> m_rpcs;

    // Free lists behind the per-call hot-path objects; see pool_alloc.hpp.
    // shared_ptr-held because allocator copies (inside allocate_shared
    // control blocks and map internals) may outlive the Instance.
    std::shared_ptr<FreeList> m_pending_call_pool = std::make_shared<FreeList>();
    std::shared_ptr<FreeList> m_pending_node_pool = std::make_shared<FreeList>();
    std::shared_ptr<FreeList> m_async_state_pool = std::make_shared<FreeList>();
    std::shared_ptr<FreeList> m_dispatch_pool = std::make_shared<FreeList>();
    /// Last total already folded into margo_pool_recycled_total.
    mutable std::atomic<std::uint64_t> m_pool_recycled_exported{0};

    using PendingMap =
        std::map<std::uint64_t, std::shared_ptr<PendingCall>, std::less<std::uint64_t>,
                 PoolAllocator<std::pair<const std::uint64_t, std::shared_ptr<PendingCall>>>>;
    std::mutex m_pending_mutex;
    PendingMap m_pending{PendingMap::key_compare{},
                         PendingMap::allocator_type{m_pending_node_pool}};
    /// Guarded by m_pending_mutex. Bumped exactly once, when shutdown()
    /// closes the registry and sweeps it; a forward that captured an older
    /// generation knows its entry was already claimed by that sweep, and a
    /// forward arriving afterwards fails fast instead of registering a call
    /// nobody would ever cancel.
    std::uint64_t m_pending_generation = 0;
    std::atomic<std::uint64_t> m_next_seq{1};
    std::atomic<std::size_t> m_active_forwards{0};
    /// Condition-based shutdown drain: set by the last in-flight forward to
    /// exit once m_stopping is visible (or by shutdown() itself when none
    /// are active). One-shot is sufficient: after m_stopping no new forward
    /// can get past the closed registry and block.
    abt::Eventual<void> m_forwards_drained;

    std::atomic<std::size_t> m_in_flight{0};
    std::unique_ptr<QosManager> m_qos;
    std::atomic<bool> m_monitoring_enabled{true};
    std::shared_ptr<StatisticsMonitor> m_stats;
    std::shared_ptr<MetricsRegistry> m_metrics;
    mutable std::mutex m_monitors_mutex;
    std::vector<std::shared_ptr<Monitor>> m_monitors;
    std::chrono::milliseconds m_sampling_period{100};
    std::atomic<bool> m_sampler_active{false};
    std::function<void(const json::Value&)> m_monitoring_dump_sink;

    template <typename F>
    void emit(F&& f) {
        if (!m_monitoring_enabled.load(std::memory_order_relaxed)) return;
        std::lock_guard lk{m_monitors_mutex};
        for (auto& m : m_monitors) f(*m);
    }
};

} // namespace mochi::margo
