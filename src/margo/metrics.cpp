#include "margo/metrics.hpp"

namespace mochi::margo {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(HistogramOptions opts) {
    if (opts.buckets < 1) opts.buckets = 1;
    if (opts.growth <= 1.0) opts.growth = 2.0;
    if (opts.start <= 0.0) opts.start = 1.0;
    m_bounds.reserve(static_cast<std::size_t>(opts.buckets));
    double bound = opts.start;
    for (int i = 0; i < opts.buckets; ++i) {
        m_bounds.push_back(bound);
        bound *= opts.growth;
    }
    m_buckets = std::make_unique<std::atomic<std::uint64_t>[]>(m_bounds.size() + 1);
    for (std::size_t i = 0; i <= m_bounds.size(); ++i) m_buckets[i].store(0);
}

void Histogram::observe(double v) noexcept {
    // Upper-bound search; bounds are tiny (tens of entries) and sorted.
    std::size_t i = 0;
    while (i < m_bounds.size() && v > m_bounds[i]) ++i;
    m_buckets[i].fetch_add(1, std::memory_order_relaxed);
    m_count.fetch_add(1, std::memory_order_relaxed);
    double cur = m_sum.load(std::memory_order_relaxed);
    while (!m_sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {}
}

std::vector<std::uint64_t> Histogram::counts() const {
    std::vector<std::uint64_t> out(m_bounds.size() + 1);
    for (std::size_t i = 0; i <= m_bounds.size(); ++i)
        out[i] = m_buckets[i].load(std::memory_order_relaxed);
    return out;
}

double Histogram::quantile(double q) const {
    auto cs = counts();
    std::uint64_t total = 0;
    for (auto c : cs) total += c;
    if (total == 0) return 0.0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
        seen += cs[i];
        if (seen >= rank) return i < m_bounds.size() ? m_bounds[i] : m_bounds.back();
    }
    return m_bounds.back();
}

json::Value Histogram::to_json() const {
    auto v = json::Value::object();
    auto cs = counts();
    // Derive the reported count from the same bucket snapshot instead of
    // reading m_count separately: observe() increments bucket and count in
    // two relaxed steps, so a concurrent scrape could otherwise see
    // count != sum(buckets) — a "torn" snapshot that breaks consumers which
    // cross-check the two (the invariant count == sum(buckets) must hold in
    // every rendered document).
    std::uint64_t n = 0;
    for (auto c : cs) n += c;
    v["count"] = n;
    v["sum"] = sum();
    v["avg"] = n ? sum() / static_cast<double>(n) : 0.0;
    auto le = json::Value::array();
    for (double b : m_bounds) le.push_back(b);
    v["le"] = std::move(le);
    auto buckets = json::Value::array();
    for (auto c : cs) buckets.push_back(c);
    v["buckets"] = std::move(buckets);
    v["p50"] = quantile(0.5);
    v["p99"] = quantile(0.99);
    return v;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard lk{m_mutex};
    auto& slot = m_counters[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard lk{m_mutex};
    auto& slot = m_gauges[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, HistogramOptions opts) {
    std::lock_guard lk{m_mutex};
    auto& slot = m_histograms[name];
    if (!slot) slot = std::make_unique<Histogram>(opts);
    return *slot;
}

json::Value MetricsRegistry::to_json() const {
    std::lock_guard lk{m_mutex};
    auto doc = json::Value::object();
    doc["counters"] = json::Value::object();
    for (const auto& [name, c] : m_counters) doc["counters"][name] = c->value();
    doc["gauges"] = json::Value::object();
    for (const auto& [name, g] : m_gauges) doc["gauges"][name] = g->value();
    doc["histograms"] = json::Value::object();
    for (const auto& [name, h] : m_histograms) doc["histograms"][name] = h->to_json();
    return doc;
}

void MetricsRegistry::reset() {
    std::lock_guard lk{m_mutex};
    m_counters.clear();
    m_gauges.clear();
    m_histograms.clear();
}

// ---------------------------------------------------------------------------
// MetricsMonitor
// ---------------------------------------------------------------------------

MetricsMonitor::MetricsMonitor(std::shared_ptr<MetricsRegistry> registry)
: m_registry(std::move(registry)),
  m_forwards(m_registry->counter("margo_rpc_forwards_total")),
  m_forward_failures(m_registry->counter("margo_rpc_forward_failures_total")),
  m_handled(m_registry->counter("margo_rpc_handled_total")),
  m_bulk_transfers(m_registry->counter("margo_bulk_transfers_total")),
  m_bulk_bytes(m_registry->counter("margo_bulk_bytes_total")),
  m_batch_ops(m_registry->counter("margo_batch_ops_total")),
  m_batch_op_failures(m_registry->counter("margo_batch_op_failures_total")),
  m_forward_latency(m_registry->histogram("margo_rpc_forward_latency_us")),
  m_handler_duration(m_registry->histogram("margo_rpc_handler_duration_us")),
  m_queue_delay(m_registry->histogram("margo_rpc_queue_delay_us")),
  m_in_flight(m_registry->gauge("margo_in_flight_rpcs")) {}

void MetricsMonitor::on_forward_start(const CallContext&) { m_forwards.inc(); }

void MetricsMonitor::on_forward_complete(const CallContext& ctx, bool ok) {
    if (ok)
        m_forward_latency.observe(ctx.duration_us);
    else
        m_forward_failures.inc();
}

void MetricsMonitor::on_handler_start(const CallContext& ctx) {
    m_queue_delay.observe(ctx.queue_delay_us);
}

void MetricsMonitor::on_handler_complete(const CallContext& ctx) {
    m_handled.inc();
    m_handler_duration.observe(ctx.duration_us);
}

void MetricsMonitor::on_bulk_complete(const CallContext&, std::size_t bytes,
                                      double duration_us) {
    (void)duration_us;
    m_bulk_transfers.inc();
    m_bulk_bytes.inc(bytes);
}

void MetricsMonitor::on_batch_op(const CallContext&, bool ok) {
    m_batch_ops.inc();
    if (!ok) m_batch_op_failures.inc();
}

void MetricsMonitor::on_progress_sample(std::size_t in_flight_rpcs,
                                        const std::map<std::string, std::size_t>& pool_sizes) {
    m_in_flight.set(static_cast<double>(in_flight_rpcs));
    for (const auto& [name, size] : pool_sizes)
        m_registry->gauge("margo_pool_size_" + name).set(static_cast<double>(size));
}

} // namespace mochi::margo
