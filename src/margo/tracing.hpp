// Distributed tracing over the Monitor callbacks (§4 extended).
//
// Every forward() opens a *forward span*; the request envelope carries
// (trace_id, forward span id) across the wire, and the target's handler
// runs under a *handler span* whose parent is that forward span. Handler
// ULTs carry their context in abt::Ult::user_context, so nested forwards —
// and, with ContextScope, worker ULTs spawned by components (REMI's chunk
// pipeline, RAFT's replication ULTs) — chain into a single cross-process
// trace rooted at the client's original call.
//
// TracingMonitor turns the callback stream into spans and renders them as
// Chrome trace_event JSON (loadable in about://tracing or Perfetto) or as
// an indented span-tree text dump for tests. Attach ONE TracingMonitor to
// every Instance of interest (Instance::add_monitor) to collect a whole
// cluster's spans into one trace file, the way an external collector would.
#pragma once

#include "margo/monitoring.hpp"

#include <map>
#include <mutex>
#include <vector>

namespace mochi::abt {
struct Ult;
}

namespace mochi::margo {

/// Identity of the trace an operation belongs to and of the currently
/// active span. trace_id == 0 means "not traced" (a forward without an
/// ambient context starts a fresh trace).
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;        ///< currently active span
    std::uint64_t parent_span_id = 0; ///< its parent (0 = root)

    [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// Multi-tenant QoS identity, carried in the RPC envelope exactly like
/// TraceContext: a client installs it with TenantScope, forward_async()
/// copies the ambient id into the outgoing message, and the target's
/// handler ULT runs with it installed — so nested forwards (a provider
/// fanning out to replicas or downstream shards) bill to the originating
/// tenant automatically. id 0 = untenanted (legacy clients): default
/// priority, no quotas, no per-tenant metrics.
struct TenantContext {
    std::uint32_t id = 0;

    [[nodiscard]] bool active() const noexcept { return id != 0; }
};

/// Ambient per-ULT RPC context: the identity of the RPC whose handler the
/// current ULT is executing (Listing-1 parent attribution) plus the active
/// trace and tenant. Installed by the runtime on handler ULTs; propagated by
/// hand into spawned worker ULTs with ContextScope.
struct RpcContext {
    std::uint64_t rpc_id = k_no_parent_rpc_id;
    std::uint16_t provider_id = k_default_provider_id;
    TraceContext trace;
    TenantContext tenant;
};

/// The ambient context of the calling ULT (or OS thread), or defaults when
/// none is installed.
[[nodiscard]] RpcContext current_rpc_context() noexcept;

/// Install `ctx` as the ambient context for the lifetime of this object
/// (RAII-restores the previous one). Works both on ULTs (uses the ULT's
/// user_context slot) and plain OS threads (thread-local). Components that
/// fan work out to other ULTs capture current_rpc_context() before posting
/// and open a ContextScope inside the worker, so monitoring parent ids and
/// the trace survive the hop:
///
///   auto ctx = margo::current_rpc_context();
///   rt->post_thread(pool, [ctx, ...] { margo::ContextScope scope{ctx}; ... });
class ContextScope {
  public:
    explicit ContextScope(const RpcContext& ctx) noexcept;
    ~ContextScope();
    ContextScope(const ContextScope&) = delete;
    ContextScope& operator=(const ContextScope&) = delete;

  private:
    RpcContext m_ctx;
    abt::Ult* m_ult = nullptr;   ///< non-null: restored into the ULT slot
    void* m_saved_ult = nullptr;
    const RpcContext* m_saved_tl = nullptr;
};

/// Run the enclosed code as tenant `tenant_id`: every forward issued while
/// the scope is active carries the id in its envelope (on top of whatever
/// trace/parent context is already ambient). Client applications wrap their
/// request loops in one of these; servers never need it — handler ULTs
/// inherit the caller's tenant from the envelope.
class TenantScope {
  public:
    explicit TenantScope(std::uint32_t tenant_id) noexcept
    : m_scope(with_tenant(current_rpc_context(), tenant_id)) {}

  private:
    static RpcContext with_tenant(RpcContext ctx, std::uint32_t tenant_id) noexcept {
        ctx.tenant.id = tenant_id;
        return ctx;
    }
    ContextScope m_scope;
};

/// Allocate a process-unique span / trace id (never 0).
[[nodiscard]] std::uint64_t next_span_id() noexcept;
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

/// Microseconds since a fixed epoch shared by every instance in this
/// simulation, so spans collected from different processes line up on one
/// timeline.
[[nodiscard]] double trace_now_us() noexcept;

/// One recorded span.
struct Span {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::string name;     ///< RPC name ("yokan/put", "__bulk__", ...)
    std::string kind;     ///< "forward" | "handler" | "bulk" | "op" (batched sub-op)
    std::string process;  ///< address of the process the span ran on
    std::string peer;     ///< remote address
    double begin_us = 0;  ///< trace_now_us() timestamps
    double end_us = 0;    ///< 0 while still open
    bool ok = true;       ///< forward spans: false on failure

    [[nodiscard]] double duration_us() const noexcept { return end_us - begin_us; }
};

/// Monitor implementation recording every forward/handler/bulk as a span.
/// Thread-safe; one collector may be attached to many instances.
class TracingMonitor : public Monitor {
  public:
    void on_forward_start(const CallContext& ctx) override;
    void on_forward_complete(const CallContext& ctx, bool ok) override;
    void on_handler_start(const CallContext& ctx) override;
    void on_handler_complete(const CallContext& ctx) override;
    void on_bulk_complete(const CallContext& ctx, std::size_t bytes,
                          double duration_us) override;
    void on_batch_op(const CallContext& ctx, bool ok) override;

    /// Snapshot of all spans recorded so far (open spans have end_us == 0).
    [[nodiscard]] std::vector<Span> spans() const;

    /// All spans of one trace, parents before children where possible.
    [[nodiscard]] std::vector<Span> trace(std::uint64_t trace_id) const;

    /// Chrome trace_event JSON: {"traceEvents": [...]} with one complete
    /// ("ph":"X") event per finished span, process_name metadata events
    /// mapping the synthetic pids back to simulated addresses, and the
    /// span/trace ids in each event's "args". Load in about://tracing or
    /// https://ui.perfetto.dev.
    [[nodiscard]] json::Value trace_events_json() const;

    /// Human-readable per-trace span tree, e.g.
    ///   trace 7
    ///     forward dataset/create @sim://client -> sim://p1 (812.4 us)
    ///       handler dataset/create @sim://p1 (794.1 us)
    ///         forward yokan/put @sim://p1 -> sim://p2 (101.3 us)
    ///           handler yokan/put @sim://p2 (12.0 us)
    /// Used by tests to assert trace shapes.
    [[nodiscard]] std::string span_tree() const;

    void reset();

  private:
    mutable std::mutex m_mutex;
    std::map<std::uint64_t, Span> m_spans; ///< by span id, insertion-keyed
};

} // namespace mochi::margo
