#include "margo/tracing.hpp"
#include "abt/ult.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace mochi::margo {

// ---------------------------------------------------------------------------
// Ambient context
// ---------------------------------------------------------------------------

namespace {
/// Fallback slot for plain OS threads (fabric timer callbacks, tests): ULTs
/// use abt::Ult::user_context instead so the context follows the fiber.
thread_local const RpcContext* tl_ambient = nullptr;

const RpcContext* ambient_ptr() noexcept {
    if (abt::Ult* u = abt::current_ult()) return static_cast<const RpcContext*>(u->user_context);
    return tl_ambient;
}
} // namespace

RpcContext current_rpc_context() noexcept {
    const RpcContext* p = ambient_ptr();
    return p ? *p : RpcContext{};
}

ContextScope::ContextScope(const RpcContext& ctx) noexcept : m_ctx(ctx) {
    if (abt::Ult* u = abt::current_ult()) {
        m_ult = u;
        m_saved_ult = u->user_context;
        u->user_context = &m_ctx;
    } else {
        m_saved_tl = tl_ambient;
        tl_ambient = &m_ctx;
    }
}

ContextScope::~ContextScope() {
    if (m_ult)
        m_ult->user_context = m_saved_ult;
    else
        tl_ambient = m_saved_tl;
}

std::uint64_t next_span_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_trace_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

double trace_now_us() noexcept {
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch)
        .count();
}

// ---------------------------------------------------------------------------
// TracingMonitor
// ---------------------------------------------------------------------------

void TracingMonitor::on_forward_start(const CallContext& ctx) {
    if (ctx.span_id == 0) return;
    Span s;
    s.trace_id = ctx.trace_id;
    s.span_id = ctx.span_id;
    s.parent_span_id = ctx.parent_span_id;
    s.name = ctx.name;
    s.kind = "forward";
    s.process = ctx.self;
    s.peer = ctx.peer;
    s.begin_us = trace_now_us();
    std::lock_guard lk{m_mutex};
    m_spans.emplace(s.span_id, std::move(s));
}

void TracingMonitor::on_forward_complete(const CallContext& ctx, bool ok) {
    if (ctx.span_id == 0) return;
    std::lock_guard lk{m_mutex};
    auto it = m_spans.find(ctx.span_id);
    if (it == m_spans.end()) return;
    it->second.end_us = trace_now_us();
    it->second.ok = ok;
}

void TracingMonitor::on_handler_start(const CallContext& ctx) {
    if (ctx.span_id == 0) return;
    Span s;
    s.trace_id = ctx.trace_id;
    s.span_id = ctx.span_id;
    s.parent_span_id = ctx.parent_span_id;
    s.name = ctx.name;
    s.kind = "handler";
    s.process = ctx.self;
    s.peer = ctx.peer;
    s.begin_us = trace_now_us();
    std::lock_guard lk{m_mutex};
    m_spans.emplace(s.span_id, std::move(s));
}

void TracingMonitor::on_handler_complete(const CallContext& ctx) {
    if (ctx.span_id == 0) return;
    std::lock_guard lk{m_mutex};
    auto it = m_spans.find(ctx.span_id);
    if (it == m_spans.end()) return;
    it->second.end_us = trace_now_us();
}

void TracingMonitor::on_bulk_complete(const CallContext& ctx, std::size_t bytes,
                                      double duration_us) {
    (void)bytes;
    if (ctx.span_id == 0) return;
    // Bulk transfers report once, at completion; reconstruct the interval.
    Span s;
    s.trace_id = ctx.trace_id;
    s.span_id = ctx.span_id;
    s.parent_span_id = ctx.parent_span_id;
    s.name = ctx.name;
    s.kind = "bulk";
    s.process = ctx.self;
    s.peer = ctx.peer;
    s.end_us = trace_now_us();
    s.begin_us = s.end_us - duration_us;
    std::lock_guard lk{m_mutex};
    m_spans.emplace(s.span_id, std::move(s));
}

void TracingMonitor::on_batch_op(const CallContext& ctx, bool ok) {
    if (ctx.span_id == 0) return;
    // Like bulk transfers, batched sub-ops report once, at completion.
    Span s;
    s.trace_id = ctx.trace_id;
    s.span_id = ctx.span_id;
    s.parent_span_id = ctx.parent_span_id;
    s.name = ctx.name;
    s.kind = "op";
    s.process = ctx.self;
    s.peer = ctx.peer;
    s.end_us = trace_now_us();
    s.begin_us = s.end_us - ctx.duration_us;
    s.ok = ok;
    std::lock_guard lk{m_mutex};
    m_spans.emplace(s.span_id, std::move(s));
}

std::vector<Span> TracingMonitor::spans() const {
    std::lock_guard lk{m_mutex};
    std::vector<Span> out;
    out.reserve(m_spans.size());
    for (const auto& [id, s] : m_spans) out.push_back(s);
    return out;
}

std::vector<Span> TracingMonitor::trace(std::uint64_t trace_id) const {
    auto all = spans();
    std::vector<Span> out;
    for (auto& s : all)
        if (s.trace_id == trace_id) out.push_back(std::move(s));
    std::sort(out.begin(), out.end(),
              [](const Span& a, const Span& b) { return a.begin_us < b.begin_us; });
    return out;
}

json::Value TracingMonitor::trace_events_json() const {
    auto all = spans();
    // trace_event pids must be numeric; map each simulated address to a
    // small integer and emit process_name metadata so viewers show the
    // address.
    std::map<std::string, int> pids;
    for (const auto& s : all)
        if (!pids.count(s.process)) pids.emplace(s.process, static_cast<int>(pids.size()) + 1);

    auto events = json::Value::array();
    for (const auto& [process, pid] : pids) {
        auto m = json::Value::object();
        m["ph"] = "M";
        m["name"] = "process_name";
        m["pid"] = pid;
        m["tid"] = 0;
        m["args"]["name"] = process;
        events.push_back(std::move(m));
    }
    for (const auto& s : all) {
        if (s.end_us == 0) continue; // still open
        auto e = json::Value::object();
        e["ph"] = "X";
        e["name"] = s.name;
        e["cat"] = s.kind;
        e["ts"] = s.begin_us;
        e["dur"] = s.duration_us();
        e["pid"] = pids[s.process];
        // One row per span kind keeps nested spans visually stacked.
        e["tid"] = s.kind == "forward" ? 1 : (s.kind == "handler" ? 2 : 3);
        e["args"]["trace_id"] = s.trace_id;
        e["args"]["span_id"] = s.span_id;
        e["args"]["parent_span_id"] = s.parent_span_id;
        e["args"]["peer"] = s.peer;
        if (!s.ok) e["args"]["error"] = true;
        events.push_back(std::move(e));
    }
    auto doc = json::Value::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    return doc;
}

std::string TracingMonitor::span_tree() const {
    auto all = spans();
    std::sort(all.begin(), all.end(),
              [](const Span& a, const Span& b) { return a.begin_us < b.begin_us; });
    std::map<std::uint64_t, std::vector<const Span*>> children; // parent -> spans
    std::map<std::uint64_t, const Span*> by_id;
    for (const auto& s : all) by_id[s.span_id] = &s;
    std::vector<const Span*> roots;
    for (const auto& s : all) {
        if (s.parent_span_id != 0 && by_id.count(s.parent_span_id))
            children[s.parent_span_id].push_back(&s);
        else
            roots.push_back(&s);
    }
    std::string out;
    auto emit_span = [&](const Span* s, int depth, auto&& recurse) -> void {
        char line[512];
        std::snprintf(line, sizeof(line), "%*s%s %s @%s -> %s (%.1f us)%s\n", depth * 2, "",
                      s->kind.c_str(), s->name.c_str(), s->process.c_str(), s->peer.c_str(),
                      s->end_us > 0 ? s->duration_us() : 0.0, s->ok ? "" : " [failed]");
        out += line;
        for (const Span* c : children[s->span_id]) recurse(c, depth + 1, recurse);
    };
    std::uint64_t current_trace = 0;
    for (const Span* r : roots) {
        if (r->trace_id != current_trace) {
            current_trace = r->trace_id;
            out += "trace " + std::to_string(current_trace) + "\n";
        }
        emit_span(r, 1, emit_span);
    }
    return out;
}

void TracingMonitor::reset() {
    std::lock_guard lk{m_mutex};
    m_spans.clear();
}

} // namespace mochi::margo
