#include "margo/monitoring.hpp"

namespace mochi::margo {

json::Value Statistics::to_json() const {
    auto v = json::Value::object();
    v["num"] = num;
    v["avg"] = avg();
    v["min"] = num ? min : 0.0;
    v["max"] = num ? max : 0.0;
    v["sum"] = sum;
    v["var"] = variance();
    return v;
}

StatisticsMonitor::RpcStats& StatisticsMonitor::stats_for(const CallContext& ctx) {
    auto& s = m_rpcs[StatKey{ctx.parent_rpc_id, ctx.parent_provider_id, ctx.rpc_id,
                             ctx.provider_id}];
    if (s.name.empty()) {
        s.rpc_id = ctx.rpc_id;
        s.provider_id = ctx.provider_id;
        s.parent_rpc_id = ctx.parent_rpc_id;
        s.parent_provider_id = ctx.parent_provider_id;
        s.name = ctx.name;
    }
    return s;
}

void StatisticsMonitor::on_forward_start(const CallContext& ctx) {
    std::lock_guard lk{m_mutex};
    auto& s = stats_for(ctx);
    s.origin[ctx.peer].request_size.add(static_cast<double>(ctx.payload_size));
}

void StatisticsMonitor::on_forward_complete(const CallContext& ctx, bool ok) {
    std::lock_guard lk{m_mutex};
    auto& peer = stats_for(ctx).origin[ctx.peer];
    if (ok)
        peer.forward_duration.add(ctx.duration_us);
    else
        ++peer.failures;
}

void StatisticsMonitor::on_request_received(const CallContext& ctx) {
    std::lock_guard lk{m_mutex};
    auto& s = stats_for(ctx);
    s.target[ctx.peer].request_size.add(static_cast<double>(ctx.payload_size));
}

void StatisticsMonitor::on_handler_start(const CallContext& ctx) {
    std::lock_guard lk{m_mutex};
    auto& s = stats_for(ctx);
    s.target[ctx.peer].ult_queue_delay.add(ctx.queue_delay_us);
}

void StatisticsMonitor::on_handler_complete(const CallContext& ctx) {
    std::lock_guard lk{m_mutex};
    auto& s = stats_for(ctx);
    s.target[ctx.peer].handler_duration.add(ctx.duration_us);
}

void StatisticsMonitor::on_bulk_complete(const CallContext& ctx, std::size_t bytes,
                                         double duration_us) {
    std::lock_guard lk{m_mutex};
    auto& s = stats_for(ctx);
    s.bulk_size.add(static_cast<double>(bytes));
    s.bulk_duration.add(duration_us);
}

void StatisticsMonitor::on_progress_sample(std::size_t in_flight_rpcs,
                                           const std::map<std::string, std::size_t>& pool_sizes) {
    std::lock_guard lk{m_mutex};
    ++m_samples;
    m_in_flight.add(static_cast<double>(in_flight_rpcs));
    for (const auto& [name, size] : pool_sizes)
        m_pool_sizes[name].add(static_cast<double>(size));
}

json::Value StatisticsMonitor::to_json() const {
    std::lock_guard lk{m_mutex};
    auto doc = json::Value::object();
    auto& rpcs = doc["rpcs"];
    rpcs = json::Value::object();
    for (const auto& [key, s] : m_rpcs) {
        // Listing 1 textual key, rebuilt only here at render time.
        auto& r = rpcs[std::to_string(key.parent_rpc_id) + ":" +
                       std::to_string(key.parent_provider_id) + ":" +
                       std::to_string(key.rpc_id) + ":" + std::to_string(key.provider_id)];
        r["rpc_id"] = s.rpc_id;
        r["provider_id"] = s.provider_id;
        r["parent_rpc_id"] = s.parent_rpc_id;
        r["parent_provider_id"] = s.parent_provider_id;
        r["name"] = s.name;
        r["origin"] = json::Value::object();
        for (const auto& [peer, ps] : s.origin) {
            auto& p = r["origin"]["sent to " + peer];
            p["forward"]["duration"] = ps.forward_duration.to_json();
            p["request_size"] = ps.request_size.to_json();
            p["failures"] = ps.failures;
        }
        r["target"] = json::Value::object();
        for (const auto& [peer, ps] : s.target) {
            auto& p = r["target"]["received from " + peer];
            p["ult"]["queue_delay"] = ps.ult_queue_delay.to_json();
            p["ult"]["duration"] = ps.handler_duration.to_json();
            p["request_size"] = ps.request_size.to_json();
        }
        if (s.bulk_size.num > 0) {
            r["bulk"]["size"] = s.bulk_size.to_json();
            r["bulk"]["duration"] = s.bulk_duration.to_json();
        }
    }
    auto& progress = doc["progress"];
    progress["samples"] = m_samples;
    progress["in_flight_rpcs"] = m_in_flight.to_json();
    progress["pools"] = json::Value::object();
    for (const auto& [name, st] : m_pool_sizes) progress["pools"][name]["size"] = st.to_json();
    return doc;
}

void StatisticsMonitor::reset() {
    std::lock_guard lk{m_mutex};
    m_rpcs.clear();
    m_in_flight = {};
    m_pool_sizes.clear();
    m_samples = 0;
}

} // namespace mochi::margo
