#include "yokan/provider.hpp"
#include "bedrock/component.hpp"
#include "common/logging.hpp"

#include <map>

namespace mochi::yokan {

// ---------------------------------------------------------------------------
// Database (client handle)
// ---------------------------------------------------------------------------

Status Database::put(const std::string& key, const std::string& value) const {
    auto r = call<std::uint64_t, bool>("put", send_epoch(), key, value);
    if (!r) return r.error();
    observe(std::get<0>(*r));
    return {};
}

Expected<std::string> Database::get(const std::string& key) const {
    auto r = call<std::uint64_t, std::string>("get", send_epoch(), key);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(std::move(*r));
}

Expected<bool> Database::exists(const std::string& key) const {
    auto r = call<std::uint64_t, bool>("exists", send_epoch(), key);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(*r);
}

Status Database::erase(const std::string& key) const {
    auto r = call<std::uint64_t, bool>("erase", send_epoch(), key);
    if (!r) return r.error();
    observe(std::get<0>(*r));
    return {};
}

Expected<std::uint64_t> Database::count() const {
    auto r = call<std::uint64_t, std::uint64_t>("count", send_epoch());
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(*r);
}

Status Database::put_multi(
    const std::vector<std::pair<std::string, std::string>>& pairs) const {
    std::size_t bytes = 0;
    for (const auto& [k, v] : pairs) bytes += k.size() + v.size();
    if (pairs.size() > 1 && bytes >= k_bulk_threshold) {
        // Large batch: the RPC carries only a bulk handle (plus the epoch
        // guard) and the server pulls the packed pairs in one RDMA transfer.
        std::string buffer = mercury::pack(pairs);
        auto handle = instance()->expose(buffer.data(), buffer.size(), /*writable=*/false);
        auto r = call<std::uint64_t, bool>("put_multi_bulk", send_epoch(), handle);
        instance()->unexpose(handle.id);
        if (!r) return r.error();
        observe(std::get<0>(*r));
        return {};
    }
    auto r = call<std::uint64_t, bool>("put_multi", send_epoch(), pairs);
    if (!r) return r.error();
    observe(std::get<0>(*r));
    return {};
}

margo::AsyncRequest Database::put_multi_async(
    const std::vector<std::pair<std::string, std::string>>& pairs) const {
    // Always inline: an async bulk path would have to keep the exposed
    // buffer alive until completion; batches large enough to want RDMA
    // should use the synchronous put_multi.
    return async_call("put_multi", send_epoch(), pairs);
}

margo::AsyncRequest Database::get_multi_async(const std::vector<std::string>& keys) const {
    return async_call("get_multi", send_epoch(), keys);
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

struct Batcher::Inner {
    Database db;
    Options opts;
    std::mutex mutex;
    std::vector<std::pair<std::string, std::string>> queue;
    std::size_t queued_bytes = 0;
    bool timer_armed = false;
    std::vector<margo::AsyncRequest> inflight;
    Stats stats;

    Inner(Database d, Options o) : db(std::move(d)), opts(o) {}

    void flush_locked() {
        if (queue.empty()) return;
        ++stats.batches_sent;
        stats.largest_batch = std::max<std::uint64_t>(stats.largest_batch, queue.size());
        inflight.push_back(db.put_multi_async(queue));
        queue.clear();
        queued_bytes = 0;
    }

    /// Time-threshold flush: armed when the first op of a batch arrives,
    /// fires once, re-armed by the next op. The callback holds only a weak
    /// reference so a destroyed Batcher never sees a late timer.
    void arm_timer_locked(const std::shared_ptr<Inner>& self) {
        if (timer_armed || opts.max_delay.count() <= 0) return;
        timer_armed = true;
        std::weak_ptr<Inner> w = self;
        db.instance()->runtime()->timer().schedule(
            std::chrono::duration_cast<std::chrono::microseconds>(opts.max_delay), [w] {
                if (auto inner = w.lock()) {
                    std::lock_guard lk{inner->mutex};
                    inner->timer_armed = false;
                    inner->flush_locked();
                }
            });
    }
};

Batcher::Batcher(Database db) : Batcher(std::move(db), Options{}) {}

Batcher::Batcher(Database db, Options options)
: m_inner(std::make_shared<Inner>(std::move(db), options)) {}

Batcher::~Batcher() { (void)drain(); }

void Batcher::put(std::string key, std::string value) {
    std::lock_guard lk{m_inner->mutex};
    m_inner->queued_bytes += key.size() + value.size();
    m_inner->queue.emplace_back(std::move(key), std::move(value));
    ++m_inner->stats.ops_enqueued;
    if (m_inner->queue.size() >= m_inner->opts.max_ops ||
        m_inner->queued_bytes >= m_inner->opts.max_bytes)
        m_inner->flush_locked();
    else
        m_inner->arm_timer_locked(m_inner);
}

void Batcher::flush() {
    std::lock_guard lk{m_inner->mutex};
    m_inner->flush_locked();
}

Status Batcher::drain() {
    std::vector<margo::AsyncRequest> pending;
    {
        std::lock_guard lk{m_inner->mutex};
        m_inner->flush_locked();
        pending = std::move(m_inner->inflight);
        m_inner->inflight.clear();
    }
    Status first;
    for (auto& req : pending) {
        auto r = req.wait_unpack<std::uint64_t, bool>();
        if (!r && first.ok()) first = r.error();
        if (r && m_inner->db.epoch_context())
            m_inner->db.epoch_context()->observe(std::get<0>(*r));
    }
    return first;
}

Batcher::Stats Batcher::stats() const {
    std::lock_guard lk{m_inner->mutex};
    return m_inner->stats;
}

Expected<std::vector<std::optional<std::string>>>
Database::get_multi(const std::vector<std::string>& keys) const {
    auto r = call<std::uint64_t, std::vector<std::optional<std::string>>>("get_multi",
                                                                          send_epoch(), keys);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(std::move(*r));
}

Expected<std::uint64_t> Database::erase_multi(const std::vector<std::string>& keys) const {
    auto r = call<std::uint64_t, std::uint64_t>("erase_multi", send_epoch(), keys);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(*r);
}

Expected<std::vector<std::string>> Database::list_keys(const std::string& from,
                                                       const std::string& prefix,
                                                       std::uint64_t max) const {
    auto r = call<std::uint64_t, std::vector<std::string>>("list_keys", send_epoch(), from,
                                                           prefix, max);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(std::move(*r));
}

Expected<std::vector<std::pair<std::string, std::string>>>
Database::list_keyvals(const std::string& from, const std::string& prefix,
                       std::uint64_t max) const {
    auto r = call<std::uint64_t, std::vector<std::pair<std::string, std::string>>>(
        "list_keyvals", send_epoch(), from, prefix, max);
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(std::move(*r));
}

Expected<std::uint64_t> Database::size_bytes() const {
    auto r = call<std::uint64_t, std::uint64_t>("size_bytes", send_epoch());
    if (!r) return std::move(r).error();
    observe(std::get<0>(*r));
    return std::get<1>(*r);
}

Status Database::update_epoch(std::uint64_t epoch, const std::string& layout_blob) const {
    auto r = call<bool>("update_epoch", epoch, layout_blob);
    if (!r) return r.error();
    return {};
}

Expected<std::uint64_t> Database::extract_range(std::uint64_t begin, std::uint64_t end,
                                                const std::string& dest_root,
                                                const std::string& file_prefix,
                                                const std::string& dest_address,
                                                const std::string& method,
                                                std::uint16_t remi_provider_id) const {
    // Extraction serializes + migrates a key range; give it far more rope
    // than a point lookup.
    auto r = call_with_timeout<std::uint64_t>("extract_range", std::chrono::milliseconds(60000),
                                              begin, end, dest_root, file_prefix, dest_address,
                                              method, std::uint32_t{remi_provider_id});
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

Expected<std::uint64_t> Database::erase_range(std::uint64_t begin, std::uint64_t end) const {
    auto r = call_with_timeout<std::uint64_t>("erase_range", std::chrono::milliseconds(60000),
                                              begin, end);
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

Expected<std::uint64_t> Database::absorb(const std::string& file_prefix) const {
    auto r = call_with_timeout<std::uint64_t>("absorb", std::chrono::milliseconds(60000),
                                              file_prefix);
    if (!r) return std::move(r).error();
    return std::get<0>(*r);
}

// ---------------------------------------------------------------------------
// ProviderConfig
// ---------------------------------------------------------------------------

Expected<ProviderConfig> ProviderConfig::from_json(const json::Value& config) {
    ProviderConfig out;
    if (config.is_null()) return out;
    if (!config.is_object())
        return Error{Error::Code::InvalidArgument, "yokan config must be an object"};
    out.db_name = config.get_string("name", config.get_string("db_name", "db"));
    out.backend = config.get_string("backend", "map");
    if (config.contains("targets")) {
        if (!config["targets"].is_array())
            return Error{Error::Code::InvalidArgument, "yokan 'targets' must be an array"};
        for (const auto& t : config["targets"].as_array()) {
            if (!t.is_string())
                return Error{Error::Code::InvalidArgument, "yokan targets must be strings"};
            out.targets.push_back(t.as_string());
        }
    }
    return out;
}

json::Value ProviderConfig::to_json() const {
    auto c = json::Value::object();
    c["name"] = db_name;
    c["backend"] = backend;
    if (!targets.empty()) {
        c["targets"] = json::Value::array();
        for (const auto& t : targets) c["targets"].push_back(t);
    }
    return c;
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

namespace {

/// Live providers per margo instance, so SSG payload dissemination can apply
/// an epoch update to every local shard without naming them individually.
std::mutex g_provider_registry_mutex;
std::multimap<const margo::Instance*, Provider*> g_provider_registry;

/// [begin, end) membership on the ring; end == 0 encodes 2^64.
bool hash_in_range(std::uint64_t h, std::uint64_t begin, std::uint64_t end) noexcept {
    return h >= begin && (end == 0 || h < end);
}

} // namespace

void apply_epoch_update(const margo::InstancePtr& instance, std::uint64_t epoch,
                        const std::string& layout_blob) {
    std::lock_guard lk{g_provider_registry_mutex};
    auto [lo, hi] = g_provider_registry.equal_range(instance.get());
    for (auto it = lo; it != hi; ++it) it->second->set_epoch(epoch, layout_blob);
}

Provider::Provider(margo::InstancePtr instance, std::uint16_t provider_id,
                   ProviderConfig config, std::shared_ptr<abt::Pool> pool)
: margo::Provider(std::move(instance), provider_id, "yokan", std::move(pool)),
  m_config(std::move(config)) {
    const std::string prefix = "yokan_provider_" + std::to_string(provider_id);
    m_ops = &this->instance()->metrics()->counter(prefix + "_ops_total");
    m_stale = &this->instance()->metrics()->counter(prefix + "_stale_rejections_total");
    if (m_config.targets.empty()) {
        auto backend = Backend::create(m_config.backend);
        assert(backend.has_value());
        m_backend = std::move(backend).value();
        // Re-attach to migrated/persisted data if present (the provider
        // instantiated on a migration destination finds its files here).
        auto store = remi::SimFileStore::for_node(this->instance()->address());
        if (!store->list(root()).empty()) (void)load_from_store(*store);
    } else {
        // Virtual database (§7 Obs. 10): clients are unaware the provider
        // holds no data; it fans out to replicas.
        for (const auto& spec : m_config.targets) {
            auto dep = bedrock::parse_dependency(spec);
            assert(dep.has_value() && !dep->is_local());
            m_replicas.emplace_back(this->instance(), dep->address, dep->provider_id);
        }
    }
    define_rpcs();
    std::lock_guard lk{g_provider_registry_mutex};
    g_provider_registry.emplace(this->instance().get(), this);
}

Provider::~Provider() {
    {
        std::lock_guard lk{g_provider_registry_mutex};
        auto [lo, hi] = g_provider_registry.equal_range(instance().get());
        for (auto it = lo; it != hi; ++it) {
            if (it->second == this) {
                g_provider_registry.erase(it);
                break;
            }
        }
    }
    deregister_all();
}

void Provider::set_epoch(std::uint64_t epoch, std::string layout_blob) {
    std::lock_guard lk{m_epoch_mutex};
    if (epoch <= m_epoch.load(std::memory_order_relaxed)) return;
    m_layout_blob = std::move(layout_blob);
    m_epoch.store(epoch, std::memory_order_release);
}

bool Provider::check_epoch(const margo::Request& req, std::uint64_t req_epoch) const {
    // Epoch 0 on either side disables the guard (unguarded clients, or a
    // provider outside any elastic layout).
    auto cur = m_epoch.load(std::memory_order_acquire);
    if (req_epoch == 0 || cur == 0 || req_epoch >= cur) return true;
    std::string blob;
    {
        std::lock_guard lk{m_epoch_mutex};
        if (m_layout_blob.size() <= k_epoch_piggyback_limit) blob = m_layout_blob;
        cur = m_epoch.load(std::memory_order_relaxed);
    }
    instance()->metrics()->counter("yokan_stale_epoch_rejections_total").inc();
    m_stale->inc();
    req.respond_error(make_stale_epoch_error(cur, blob));
    return false;
}

void Provider::define_rpcs() {
    // Scalar-op handlers decode their key as a zero-copy view of the request
    // payload (the Request owns the payload for the handler's lifetime), so
    // the common lookup path never copies the key. Every data RPC leads with
    // the sender's epoch and every reply with the provider's (the elastic
    // service's piggybacked invalidation).
    define("put", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view key;
        std::string value;
        if (!req.unpack(epoch, key, value)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        instance()->metrics()->counter("yokan_puts_total").inc();
        m_ops->inc();
        Status st = m_backend ? m_backend->put(key, std::move(value))
                              : virtual_put(key, value);
        if (!st.ok())
            req.respond_error(st.error());
        else
            req.respond_values(this->epoch(), true);
    });
    define("get", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view key;
        if (!req.unpack(epoch, key)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        instance()->metrics()->counter("yokan_gets_total").inc();
        m_ops->inc();
        auto r = m_backend ? m_backend->get(key) : virtual_get(key);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(this->epoch(), *r);
    });
    define("exists", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view key;
        if (!req.unpack(epoch, key)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        if (m_backend) {
            req.respond_values(this->epoch(), m_backend->exists(key));
            return;
        }
        auto r = virtual_get(key);
        req.respond_values(this->epoch(), r.has_value());
    });
    define("erase", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view key;
        if (!req.unpack(epoch, key)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        Status st;
        if (m_backend) {
            st = m_backend->erase(key);
        } else {
            std::string owned{key};
            for (const auto& replica : m_replicas) {
                auto rs = replica.erase(owned);
                if (!rs.ok()) st = rs; // report last failure; best effort
            }
        }
        if (!st.ok())
            req.respond_error(st.error());
        else
            req.respond_values(this->epoch(), true);
    });
    define("count", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        if (!req.unpack(epoch)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        if (m_backend) {
            req.respond_values(this->epoch(),
                               static_cast<std::uint64_t>(m_backend->count()));
            return;
        }
        for (const auto& replica : m_replicas) {
            auto r = replica.count();
            if (r) {
                req.respond_values(this->epoch(), *r);
                return;
            }
        }
        req.respond_error(Error{Error::Code::Unreachable, "no replica reachable"});
    });
    define("put_multi", [this](const margo::Request& req) {
        // Keys decode as views into the inline payload; values are owned
        // (they are moved into the backend).
        std::uint64_t epoch = 0;
        std::vector<std::pair<std::string_view, std::string>> pairs;
        if (!req.unpack(epoch, pairs)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        handle_put_multi(req, std::move(pairs));
    });
    define("put_multi_bulk", [this](const margo::Request& req) {
        // Large batches: the request carries only a bulk handle; one RDMA
        // pull fetches the packed pairs, then execution is identical to the
        // inline path.
        std::uint64_t epoch = 0;
        mercury::BulkHandle handle;
        if (!req.unpack(epoch, handle)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        // Byte quota is charged on the bulk transfer size, not the tiny
        // inline payload that merely carries the handle.
        if (!admit(req, handle.size)) return;
        std::string buffer(handle.size, '\0');
        if (auto st = instance()->bulk_pull(handle, 0, buffer.data(), buffer.size());
            !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        // Key views alias `buffer`, which outlives the (synchronous)
        // handle_put_multi call below.
        std::vector<std::pair<std::string_view, std::string>> pairs;
        if (!mercury::unpack(buffer, pairs)) {
            req.respond_error(Error{Error::Code::Corruption, "corrupt bulk batch"});
            return;
        }
        handle_put_multi(req, std::move(pairs));
    });
    define("get_multi", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::vector<std::string_view> keys;
        if (!req.unpack(epoch, keys)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        std::vector<std::optional<std::string>> values(keys.size());
        if (m_backend) {
            // Vectored execution: slices of the batch run on handler-pool
            // ULTs (the backend is internally synchronized), each op
            // reporting its own span/metric before the single reply.
            parallel_for(keys.size(), [&](std::size_t i) {
                double t0 = margo::trace_now_us();
                auto r = m_backend->get(keys[i]);
                instance()->metrics()->counter("yokan_gets_total").inc();
                m_ops->inc();
                instance()->notify_batch_op("yokan/get", keys[i].size(),
                                            margo::trace_now_us() - t0, r.has_value());
                if (r) values[i].emplace(std::move(*r));
            });
        } else {
            // Virtual database: hand the whole batch to the first replica
            // that answers instead of paying one RPC per key.
            bool served = false;
            std::vector<std::string> owned(keys.begin(), keys.end());
            for (const auto& replica : m_replicas) {
                auto r = replica.get_multi(owned);
                if (r) {
                    values = std::move(*r);
                    served = true;
                    break;
                }
            }
            if (!served) {
                req.respond_error(Error{Error::Code::Unreachable, "no replica reachable"});
                return;
            }
        }
        req.respond_values(this->epoch(), values);
    });
    define("list_keys", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view from, prefix;
        std::uint64_t max = 0;
        if (!req.unpack(epoch, from, prefix, max)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        if (m_backend) {
            req.respond_values(this->epoch(), m_backend->list_keys(from, prefix, max));
            return;
        }
        for (const auto& replica : m_replicas) {
            auto r = replica.list_keys(std::string(from), std::string(prefix), max);
            if (r) {
                req.respond_values(this->epoch(), *r);
                return;
            }
        }
        req.respond_error(Error{Error::Code::Unreachable, "no replica reachable"});
    });
    define("erase_multi", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::vector<std::string_view> keys;
        if (!req.unpack(epoch, keys)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        std::uint64_t erased = 0;
        for (const auto& k : keys) {
            Status st;
            if (m_backend) {
                st = m_backend->erase(k);
            } else {
                std::string owned{k};
                for (const auto& replica : m_replicas) {
                    auto rs = replica.erase(owned);
                    if (!rs.ok()) st = rs;
                }
            }
            if (st.ok()) ++erased;
        }
        req.respond_values(this->epoch(), erased);
    });
    define("list_keyvals", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string_view from, prefix;
        std::uint64_t max = 0;
        if (!req.unpack(epoch, from, prefix, max)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        if (m_backend) {
            std::vector<std::pair<std::string, std::string>> out;
            for (auto& key : m_backend->list_keys(from, prefix, max)) {
                auto v = m_backend->get(key);
                if (v) out.emplace_back(std::move(key), std::move(*v));
            }
            req.respond_values(this->epoch(), out);
            return;
        }
        for (const auto& replica : m_replicas) {
            auto r = replica.list_keyvals(std::string(from), std::string(prefix), max);
            if (r) {
                req.respond_values(this->epoch(), *r);
                return;
            }
        }
        req.respond_error(Error{Error::Code::Unreachable, "no replica reachable"});
    });
    define("size_bytes", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        if (!req.unpack(epoch)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        if (!check_epoch(req, epoch)) return;
        if (!admit(req)) return;
        if (m_backend) {
            req.respond_values(this->epoch(),
                               static_cast<std::uint64_t>(m_backend->size_bytes()));
            return;
        }
        for (const auto& replica : m_replicas) {
            auto r = replica.size_bytes();
            if (r) {
                req.respond_values(this->epoch(), *r);
                return;
            }
        }
        req.respond_error(Error{Error::Code::Unreachable, "no replica reachable"});
    });
    // -- control plane (no epoch guard: the controller is the authority) ------
    define("update_epoch", [this](const margo::Request& req) {
        std::uint64_t epoch = 0;
        std::string blob;
        if (!req.unpack(epoch, blob)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        set_epoch(epoch, std::move(blob));
        req.respond_values(true);
    });
    define("extract_range", [this](const margo::Request& req) {
        std::uint64_t begin = 0, end = 0;
        std::string dest_root, file_prefix, dest_address, method;
        std::uint32_t remi_id = k_default_remi_provider_id;
        if (!req.unpack(begin, end, dest_root, file_prefix, dest_address, method, remi_id)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto options = json::Value::object();
        options["method"] = method;
        options["remi_provider_id"] = static_cast<std::int64_t>(remi_id);
        auto r = extract_range(begin, end, dest_root, file_prefix, dest_address, options);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(*r);
    });
    define("erase_range", [this](const margo::Request& req) {
        std::uint64_t begin = 0, end = 0;
        if (!req.unpack(begin, end)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto r = erase_range(begin, end);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(*r);
    });
    define("absorb", [this](const margo::Request& req) {
        std::string file_prefix;
        if (!req.unpack(file_prefix)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        auto r = absorb(file_prefix);
        if (!r)
            req.respond_error(r.error());
        else
            req.respond_values(*r);
    });
}

void Provider::handle_put_multi(const margo::Request& req,
                                std::vector<std::pair<std::string_view, std::string>>&& pairs) {
    if (!m_backend) {
        // Virtual database: forward the whole batch to every replica (one
        // RPC per replica, not one per pair). The client API owns its
        // strings, so materialize the key views once for all replicas.
        std::vector<std::pair<std::string, std::string>> owned;
        owned.reserve(pairs.size());
        for (auto& [k, v] : pairs) owned.emplace_back(std::string(k), std::move(v));
        for (const auto& replica : m_replicas) {
            if (auto st = replica.put_multi(owned); !st.ok()) {
                req.respond_error(st.error());
                return;
            }
        }
        for (const auto& [k, v] : pairs) {
            (void)k;
            (void)v;
            instance()->metrics()->counter("yokan_puts_total").inc();
            m_ops->inc();
        }
        req.respond_values(this->epoch(), true);
        return;
    }
    // Vectored execution across the handler pool's ULTs; every op keeps its
    // own trace span and metric count even though the fabric saw one RPC.
    std::vector<Status> results(pairs.size());
    parallel_for(pairs.size(), [&](std::size_t i) {
        auto& [k, v] = pairs[i];
        double t0 = margo::trace_now_us();
        std::size_t bytes = k.size() + v.size();
        Status st = m_backend->put(k, std::move(v));
        instance()->metrics()->counter("yokan_puts_total").inc();
        m_ops->inc();
        instance()->notify_batch_op("yokan/put", bytes, margo::trace_now_us() - t0, st.ok());
        results[i] = std::move(st);
    });
    for (auto& st : results) {
        if (!st.ok()) {
            req.respond_error(st.error());
            return;
        }
    }
    req.respond_values(this->epoch(), true);
}

Status Provider::virtual_put(std::string_view key, const std::string& value) {
    // All replicas must accept the write (N-way replication).
    std::string owned{key};
    for (const auto& replica : m_replicas) {
        if (auto st = replica.put(owned, value); !st.ok()) return st;
    }
    return {};
}

Expected<std::string> Provider::virtual_get(std::string_view key) const {
    Error last{Error::Code::Unreachable, "no replica reachable"};
    std::string owned{key};
    for (const auto& replica : m_replicas) {
        auto r = replica.get(owned);
        if (r) return r;
        last = r.error();
        if (last.code == Error::Code::NotFound) return last; // authoritative
    }
    return last;
}

json::Value Provider::get_config() const { return m_config.to_json(); }

// ---------------------------------------------------------------------------
// Dump / load / migrate / checkpoint
// ---------------------------------------------------------------------------

namespace {

std::string serialize_bundle(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
    return mercury::pack(pairs);
}

} // namespace

Status Provider::dump_to_store(remi::SimFileStore& store) const {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases hold no data to dump"};
    store.remove_prefix(root());
    std::vector<std::pair<std::string, std::string>> bundle;
    std::size_t file_index = 0;
    Status result;
    auto flush = [&] {
        if (bundle.empty() || !result.ok()) return;
        char name[32];
        std::snprintf(name, sizeof name, "part-%06zu", file_index++);
        result = store.write(root() + name, serialize_bundle(bundle));
        bundle.clear();
    };
    m_backend->for_each([&](const std::string& k, const std::string& v) {
        bundle.emplace_back(k, v);
        if (bundle.size() >= k_pairs_per_file) flush();
    });
    flush();
    return result;
}

Status Provider::load_from_store(remi::SimFileStore& store) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases hold no data to load"};
    m_backend->clear();
    for (const auto& path : store.list(root())) {
        auto data = store.read(path);
        if (!data) return data.error();
        std::vector<std::pair<std::string, std::string>> bundle;
        if (!mercury::unpack(*data, bundle))
            return Error{Error::Code::Corruption, "corrupt database file " + path};
        for (auto& [k, v] : bundle) {
            if (auto st = m_backend->put(k, std::move(v)); !st.ok()) return st;
        }
    }
    return {};
}

Status Provider::migrate_data(const std::string& dest_address, const json::Value& options) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not migrate"};
    auto store = remi::SimFileStore::for_node(instance()->address());
    if (auto st = dump_to_store(*store); !st.ok()) return st;
    remi::MigrationOptions mopts;
    if (options.get_string("method", "rdma") == "chunks") mopts.method = remi::Method::Chunks;
    if (auto cs = options.get_integer("chunk_size", 0); cs > 0)
        mopts.chunk_size = static_cast<std::size_t>(cs);
    auto remi_id = static_cast<std::uint16_t>(
        options.get_integer("remi_provider_id", k_default_remi_provider_id));
    auto fileset = remi::Fileset::scan(*store, root());
    auto stats = remi::migrate(instance(), store, fileset, dest_address, remi_id, mopts);
    if (!stats) return stats.error();
    log::info("yokan", "migrated db '%s' (%zu files, %zu bytes) to %s",
              m_config.db_name.c_str(), stats->files, stats->bytes, dest_address.c_str());
    return {};
}

Expected<std::uint64_t> Provider::extract_range(std::uint64_t begin, std::uint64_t end,
                                                const std::string& dest_root,
                                                const std::string& file_prefix,
                                                const std::string& dest_address,
                                                const json::Value& options) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not split"};
    auto store = remi::SimFileStore::for_node(instance()->address());
    const std::string staging = dest_root + file_prefix;
    store->remove_prefix(staging); // drop leftovers of an aborted attempt
    // Stage the affected pairs into bundle files. The live catalogue is NOT
    // modified: the split protocol copies first, flips the layout, and only
    // then erases (erase_range), so concurrent readers never miss.
    std::vector<std::pair<std::string, std::string>> bundle;
    std::uint64_t moved = 0;
    std::size_t file_index = 0;
    Status result;
    auto flush = [&] {
        if (bundle.empty() || !result.ok()) return;
        char name[32];
        std::snprintf(name, sizeof name, "-%06zu", file_index++);
        result = store->write(staging + name, serialize_bundle(bundle));
        bundle.clear();
    };
    m_backend->for_each([&](const std::string& k, const std::string& v) {
        if (!hash_in_range(common::fnv1a64(k), begin, end)) return;
        bundle.emplace_back(k, v);
        ++moved;
        if (bundle.size() >= k_pairs_per_file) flush();
    });
    flush();
    if (!result.ok()) return result.error();
    if (dest_address == instance()->address()) return moved; // files already home
    remi::MigrationOptions mopts;
    if (options.get_string("method", "rdma") == "chunks") mopts.method = remi::Method::Chunks;
    if (auto cs = options.get_integer("chunk_size", 0); cs > 0)
        mopts.chunk_size = static_cast<std::size_t>(cs);
    auto remi_id = static_cast<std::uint16_t>(
        options.get_integer("remi_provider_id", k_default_remi_provider_id));
    auto fileset = remi::Fileset::scan(*store, staging);
    auto stats = remi::migrate(instance(), store, fileset, dest_address, remi_id, mopts);
    if (!stats) return stats.error();
    log::info("yokan", "extracted %llu pairs of db '%s' to %s (%zu files, %zu bytes)",
              static_cast<unsigned long long>(moved), m_config.db_name.c_str(),
              dest_address.c_str(), stats->files, stats->bytes);
    return moved;
}

Expected<std::uint64_t> Provider::erase_range(std::uint64_t begin, std::uint64_t end) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not split"};
    std::vector<std::string> doomed;
    m_backend->for_each([&](const std::string& k, const std::string&) {
        if (hash_in_range(common::fnv1a64(k), begin, end)) doomed.push_back(k);
    });
    for (const auto& k : doomed) (void)m_backend->erase(k);
    return static_cast<std::uint64_t>(doomed.size());
}

Expected<std::uint64_t> Provider::absorb(const std::string& file_prefix) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not merge"};
    auto store = remi::SimFileStore::for_node(instance()->address());
    std::uint64_t absorbed = 0;
    for (const auto& path : store->list(root() + file_prefix)) {
        auto data = store->read(path);
        if (!data) return data.error();
        std::vector<std::pair<std::string, std::string>> bundle;
        if (!mercury::unpack(*data, bundle))
            return Error{Error::Code::Corruption, "corrupt staged file " + path};
        for (auto& [k, v] : bundle) {
            // Put-if-absent: staged bundles hold a range frozen *before* the
            // layout flip, while keys already present here arrived after it
            // — the local copy is newer by protocol and must win.
            if (m_backend->exists(k)) continue;
            if (auto st = m_backend->put(k, std::move(v)); !st.ok()) return st.error();
            ++absorbed;
        }
    }
    store->remove_prefix(root() + file_prefix);
    return absorbed;
}

Status Provider::checkpoint_data(const std::string& path) const {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not checkpoint"};
    std::vector<std::pair<std::string, std::string>> pairs;
    m_backend->for_each(
        [&](const std::string& k, const std::string& v) { pairs.emplace_back(k, v); });
    return remi::SimFileStore::pfs()->write(path, serialize_bundle(pairs));
}

Status Provider::restore_data(const std::string& path) {
    if (!m_backend)
        return Error{Error::Code::InvalidState, "virtual databases do not restore"};
    auto data = remi::SimFileStore::pfs()->read(path);
    if (!data) return data.error();
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!mercury::unpack(*data, pairs))
        return Error{Error::Code::Corruption, "corrupt checkpoint at " + path};
    m_backend->clear();
    for (auto& [k, v] : pairs) {
        if (auto st = m_backend->put(k, std::move(v)); !st.ok()) return st;
    }
    return {};
}

// ---------------------------------------------------------------------------
// Bedrock module
// ---------------------------------------------------------------------------

namespace {

/// Adapts a Provider to Bedrock's ComponentInstance contract (the function-
/// pointer table of Listing 3 + the migrate/checkpoint/restore hooks).
class YokanComponent : public bedrock::ComponentInstance {
  public:
    explicit YokanComponent(const bedrock::ComponentArgs& args, ProviderConfig config)
    : m_provider(args.instance, args.provider_id, std::move(config), args.pool) {
        auto it = args.dependencies.find("remi");
        if (it != args.dependencies.end() && !it->second.empty())
            m_remi_provider_id = it->second.front().provider_id;
    }

    json::Value get_config() const override { return m_provider.get_config(); }

    Status migrate(const std::string& dest_address, std::uint16_t,
                   const json::Value& options) override {
        json::Value opts = options.is_null() ? json::Value::object() : options;
        if (m_remi_provider_id && !opts.contains("remi_provider_id"))
            opts["remi_provider_id"] = static_cast<std::int64_t>(*m_remi_provider_id);
        return m_provider.migrate_data(dest_address, opts);
    }
    Status checkpoint(const std::string& path) override {
        return m_provider.checkpoint_data(path);
    }
    Status restore(const std::string& path) override { return m_provider.restore_data(path); }

  private:
    Provider m_provider;
    std::optional<std::uint16_t> m_remi_provider_id;
};

} // namespace

void register_module() {
    bedrock::ModuleDefinition module;
    module.type = "yokan";
    // §6 Obs. 5: "components can declare a dependency on a REMI provider to
    // be able to carry out such a migration".
    module.dependency_specs.push_back({"remi", "remi", /*required=*/false, false});
    module.factory = [](const bedrock::ComponentArgs& args)
        -> Expected<std::unique_ptr<bedrock::ComponentInstance>> {
        auto config = ProviderConfig::from_json(args.config);
        if (!config) return config.error();
        return std::unique_ptr<bedrock::ComponentInstance>(
            new YokanComponent(args, std::move(*config)));
    };
    bedrock::ModuleRegistry::provide("libyokan.so", std::move(module));
}

} // namespace mochi::yokan
