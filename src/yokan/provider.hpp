// Yokan: Mochi's node-based key-value component, following Figure 1's
// anatomy exactly: a server library (Provider + pluggable Backend resource),
// a client library (Database resource handle), JSON configuration, and the
// dynamic-service hooks the paper adds — REMI-based migration (§6),
// checkpoint/restore to the parallel file system (§7 Obs. 9), and the
// "virtual database" replication mode (§7 Obs. 10).
#pragma once

#include "margo/provider.hpp"
#include "remi/provider.hpp"
#include "yokan/backend.hpp"

namespace mochi::yokan {

/// Client-side handle to a remote (or virtual) database (Figure 1's
/// "resource handle").
class Database : public margo::ResourceHandle {
  public:
    Database(margo::InstancePtr instance, std::string address, std::uint16_t provider_id)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "yokan") {}

    Status put(const std::string& key, const std::string& value) const;
    [[nodiscard]] Expected<std::string> get(const std::string& key) const;
    [[nodiscard]] Expected<bool> exists(const std::string& key) const;
    Status erase(const std::string& key) const;
    [[nodiscard]] Expected<std::uint64_t> count() const;
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs) const;
    [[nodiscard]] Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys) const;
    /// Erase several keys; returns how many existed and were removed.
    [[nodiscard]] Expected<std::uint64_t>
    erase_multi(const std::vector<std::string>& keys) const;
    [[nodiscard]] Expected<std::vector<std::string>>
    list_keys(const std::string& from = "", const std::string& prefix = "",
              std::uint64_t max = 0) const;
    /// Paginated key-value listing (the scan primitive of Yokan's API).
    [[nodiscard]] Expected<std::vector<std::pair<std::string, std::string>>>
    list_keyvals(const std::string& from = "", const std::string& prefix = "",
                 std::uint64_t max = 0) const;
    /// Total bytes stored in the database.
    [[nodiscard]] Expected<std::uint64_t> size_bytes() const;
};

struct ProviderConfig {
    std::string db_name = "db";
    std::string backend = "map";
    /// Non-empty => virtual database (§7 Obs. 10): every write fans out to
    /// these replicas ("type:id@address" dependency-style specs), reads are
    /// served by the first reachable replica. The provider holds no data.
    std::vector<std::string> targets;

    static Expected<ProviderConfig> from_json(const json::Value& config);
    [[nodiscard]] json::Value to_json() const;
};

class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id, ProviderConfig config,
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the backend is destroyed.
    ~Provider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

    /// Direct (in-process) access to the backend, used by service glue like
    /// the RAFT state machine adapter.
    [[nodiscard]] Backend* backend() noexcept { return m_backend.get(); }

    // -- dynamic-service hooks -------------------------------------------------

    /// Serialize the database into files under root() in `store` (one file
    /// per bundle of pairs, so REMI has a multi-file fileset to migrate).
    Status dump_to_store(remi::SimFileStore& store) const;
    /// Load the database from files under root() (invoked automatically at
    /// construction when such files exist — the post-migration re-attach).
    Status load_from_store(remi::SimFileStore& store);
    /// Fileset root for this database: "/yokan/<db_name>/".
    [[nodiscard]] std::string root() const { return "/yokan/" + m_config.db_name + "/"; }

    /// §6: migrate the database files to the REMI provider at the
    /// destination. `options` accepts {"method": "rdma"|"chunks",
    /// "chunk_size": N, "remi_provider_id": N}.
    Status migrate_data(const std::string& dest_address, const json::Value& options);

    /// §7 Obs. 9: checkpoint/restore against the shared PFS store.
    Status checkpoint_data(const std::string& path) const;
    Status restore_data(const std::string& path);

    static constexpr std::uint16_t k_default_remi_provider_id = 1;
    static constexpr std::size_t k_pairs_per_file = 128;

  private:
    void define_rpcs();
    Status virtual_put(const std::string& key, const std::string& value);
    Expected<std::string> virtual_get(const std::string& key) const;

    ProviderConfig m_config;
    std::unique_ptr<Backend> m_backend; ///< null in virtual mode
    std::vector<Database> m_replicas;   ///< virtual mode targets
};

/// Register Yokan's Bedrock module under library name "libyokan.so"
/// (idempotent). The module declares an optional "remi" dependency used for
/// provider migration, mirroring §6 Observation 5.
void register_module();

} // namespace mochi::yokan
