// Yokan: Mochi's node-based key-value component, following Figure 1's
// anatomy exactly: a server library (Provider + pluggable Backend resource),
// a client library (Database resource handle), JSON configuration, and the
// dynamic-service hooks the paper adds — REMI-based migration (§6),
// checkpoint/restore to the parallel file system (§7 Obs. 9), and the
// "virtual database" replication mode (§7 Obs. 10).
#pragma once

#include "margo/provider.hpp"
#include "remi/provider.hpp"
#include "yokan/backend.hpp"

namespace mochi::yokan {

/// Client-side handle to a remote (or virtual) database (Figure 1's
/// "resource handle").
class Database : public margo::ResourceHandle {
  public:
    Database(margo::InstancePtr instance, std::string address, std::uint16_t provider_id)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "yokan") {}

    /// put_multi batches at or above this many payload bytes ride a single
    /// bulk (RDMA) pull instead of inline RPC bytes.
    static constexpr std::size_t k_bulk_threshold = 16 * 1024;

    Status put(const std::string& key, const std::string& value) const;
    [[nodiscard]] Expected<std::string> get(const std::string& key) const;
    [[nodiscard]] Expected<bool> exists(const std::string& key) const;
    Status erase(const std::string& key) const;
    [[nodiscard]] Expected<std::uint64_t> count() const;
    /// Store N pairs in one RPC (inline payload, or one bulk transfer when
    /// the batch reaches k_bulk_threshold). The server executes the batch
    /// across its handler pool's ULTs and replies once.
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs) const;
    [[nodiscard]] Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys) const;
    /// Fire-and-wait-later variants: the returned handle's
    /// wait_unpack<bool>() / wait_unpack<std::vector<...>>() yields the
    /// result; callers overlap batches to several providers (elastic_kv's
    /// shard fan-out) or pipeline consecutive batches (the Batcher).
    [[nodiscard]] margo::AsyncRequest
    put_multi_async(const std::vector<std::pair<std::string, std::string>>& pairs) const;
    [[nodiscard]] margo::AsyncRequest
    get_multi_async(const std::vector<std::string>& keys) const;
    /// Erase several keys; returns how many existed and were removed.
    [[nodiscard]] Expected<std::uint64_t>
    erase_multi(const std::vector<std::string>& keys) const;
    [[nodiscard]] Expected<std::vector<std::string>>
    list_keys(const std::string& from = "", const std::string& prefix = "",
              std::uint64_t max = 0) const;
    /// Paginated key-value listing (the scan primitive of Yokan's API).
    [[nodiscard]] Expected<std::vector<std::pair<std::string, std::string>>>
    list_keyvals(const std::string& from = "", const std::string& prefix = "",
                 std::uint64_t max = 0) const;
    /// Total bytes stored in the database.
    [[nodiscard]] Expected<std::uint64_t> size_bytes() const;
};

/// Opt-in client-side op coalescing: put() enqueues locally and whole
/// batches leave as single put_multi RPCs (sent asynchronously, so
/// consecutive batches pipeline). A batch flushes when it reaches
/// `max_ops` operations or `max_bytes` payload bytes; with `max_delay` > 0
/// a timer also flushes a partial batch that sat too long, bounding the
/// latency a coalesced op can pay. Errors surface at drain(): the returned
/// status is the first failed batch's error.
///
/// Thread-safe; put() never blocks on the network. The destructor flushes
/// and drains (dropping any error), so explicitly drain() when failures
/// matter.
class Batcher {
  public:
    struct Options {
        std::size_t max_ops = 32;
        std::size_t max_bytes = 1 << 20;
        std::chrono::milliseconds max_delay{0}; ///< 0 = no time-based flush
    };
    struct Stats {
        std::uint64_t ops_enqueued = 0;
        std::uint64_t batches_sent = 0;
        std::uint64_t largest_batch = 0;
    };

    explicit Batcher(Database db);
    Batcher(Database db, Options options);
    ~Batcher();
    Batcher(const Batcher&) = delete;
    Batcher& operator=(const Batcher&) = delete;

    /// Enqueue one put; may send a full batch on its way out.
    void put(std::string key, std::string value);
    /// Send whatever is queued now (async; does not wait).
    void flush();
    /// Flush, then wait for every outstanding batch; first error wins.
    Status drain();
    [[nodiscard]] Stats stats() const;

  private:
    struct Inner;
    std::shared_ptr<Inner> m_inner;
};

struct ProviderConfig {
    std::string db_name = "db";
    std::string backend = "map";
    /// Non-empty => virtual database (§7 Obs. 10): every write fans out to
    /// these replicas ("type:id@address" dependency-style specs), reads are
    /// served by the first reachable replica. The provider holds no data.
    std::vector<std::string> targets;

    static Expected<ProviderConfig> from_json(const json::Value& config);
    [[nodiscard]] json::Value to_json() const;
};

class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id, ProviderConfig config,
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the backend is destroyed.
    ~Provider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

    /// Direct (in-process) access to the backend, used by service glue like
    /// the RAFT state machine adapter.
    [[nodiscard]] Backend* backend() noexcept { return m_backend.get(); }

    // -- dynamic-service hooks -------------------------------------------------

    /// Serialize the database into files under root() in `store` (one file
    /// per bundle of pairs, so REMI has a multi-file fileset to migrate).
    Status dump_to_store(remi::SimFileStore& store) const;
    /// Load the database from files under root() (invoked automatically at
    /// construction when such files exist — the post-migration re-attach).
    Status load_from_store(remi::SimFileStore& store);
    /// Fileset root for this database: "/yokan/<db_name>/".
    [[nodiscard]] std::string root() const { return "/yokan/" + m_config.db_name + "/"; }

    /// §6: migrate the database files to the REMI provider at the
    /// destination. `options` accepts {"method": "rdma"|"chunks",
    /// "chunk_size": N, "remi_provider_id": N}.
    Status migrate_data(const std::string& dest_address, const json::Value& options);

    /// §7 Obs. 9: checkpoint/restore against the shared PFS store.
    Status checkpoint_data(const std::string& path) const;
    Status restore_data(const std::string& path);

    static constexpr std::uint16_t k_default_remi_provider_id = 1;
    static constexpr std::size_t k_pairs_per_file = 128;

  private:
    void define_rpcs();
    /// Vectored batch execution (shared by put_multi and put_multi_bulk):
    /// runs the pairs across the handler pool's ULTs, emitting one
    /// notify_batch_op per pair, and replies once. Keys are zero-copy views
    /// into the request payload (or the pulled bulk buffer), both of which
    /// outlive this call.
    void handle_put_multi(const margo::Request& req,
                          std::vector<std::pair<std::string_view, std::string>>&& pairs);
    Status virtual_put(std::string_view key, const std::string& value);
    Expected<std::string> virtual_get(std::string_view key) const;

    ProviderConfig m_config;
    std::unique_ptr<Backend> m_backend; ///< null in virtual mode
    std::vector<Database> m_replicas;   ///< virtual mode targets
};

/// Register Yokan's Bedrock module under library name "libyokan.so"
/// (idempotent). The module declares an optional "remi" dependency used for
/// provider migration, mirroring §6 Observation 5.
void register_module();

} // namespace mochi::yokan
