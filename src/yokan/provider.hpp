// Yokan: Mochi's node-based key-value component, following Figure 1's
// anatomy exactly: a server library (Provider + pluggable Backend resource),
// a client library (Database resource handle), JSON configuration, and the
// dynamic-service hooks the paper adds — REMI-based migration (§6),
// checkpoint/restore to the parallel file system (§7 Obs. 9), and the
// "virtual database" replication mode (§7 Obs. 10).
//
// Epoch guard (the elastic service's piggybacked invalidation): every data
// RPC leads with the sender's layout epoch and every reply leads with the
// provider's. A request whose epoch is older than the provider's is answered
// with a retryable Conflict error carrying the current epoch (and, when
// small, the serialized layout itself), so a stale client repairs its cache
// from the rejection without a directory round trip. Epoch 0 means
// "unguarded" on either side — standalone Yokan deployments never pay for
// the mechanism.
#pragma once

#include "common/hash.hpp"
#include "margo/metrics.hpp"
#include "margo/provider.hpp"
#include "remi/provider.hpp"
#include "yokan/backend.hpp"

namespace mochi::yokan {

/// Shared send/observe epoch state: a client wires one EpochContext into
/// every Database handle it creates; `epoch` is attached to outgoing
/// requests and `observed` tracks the newest provider epoch seen in any
/// reply (the piggybacked hint that the layout moved on).
struct EpochContext {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> observed{0};

    void observe(std::uint64_t e) noexcept {
        auto cur = observed.load(std::memory_order_relaxed);
        while (e > cur &&
               !observed.compare_exchange_weak(cur, e, std::memory_order_relaxed)) {
        }
    }
};

/// Marker prefix of a stale-epoch rejection's error message. The message is
/// transported verbatim (binary-safe) by margo's error path, so the current
/// epoch and the layout blob ride inside it.
inline constexpr std::string_view k_stale_epoch_tag = "stale-epoch\x1f";

[[nodiscard]] inline Error make_stale_epoch_error(std::uint64_t epoch,
                                                  const std::string& layout_blob) {
    std::string msg{k_stale_epoch_tag};
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((epoch >> (8 * i)) & 0xFF);
    msg.append(bytes, 8);
    msg += layout_blob;
    return Error{Error::Code::Conflict, std::move(msg)};
}

/// Decode a stale-epoch rejection; `layout_blob` may come back empty when
/// the provider judged its layout too large to piggyback.
[[nodiscard]] inline bool decode_stale_epoch(const Error& err, std::uint64_t& epoch,
                                             std::string& layout_blob) {
    if (err.code != Error::Code::Conflict) return false;
    if (err.message.size() < k_stale_epoch_tag.size() + 8) return false;
    if (err.message.compare(0, k_stale_epoch_tag.size(), k_stale_epoch_tag) != 0)
        return false;
    epoch = 0;
    for (int i = 0; i < 8; ++i)
        epoch |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                     err.message[k_stale_epoch_tag.size() + static_cast<std::size_t>(i)]))
                 << (8 * i);
    layout_blob = err.message.substr(k_stale_epoch_tag.size() + 8);
    return true;
}

/// Client-side handle to a remote (or virtual) database (Figure 1's
/// "resource handle").
class Database : public margo::ResourceHandle {
  public:
    Database(margo::InstancePtr instance, std::string address, std::uint16_t provider_id,
             std::shared_ptr<EpochContext> epoch_context = nullptr)
    : ResourceHandle(std::move(instance), std::move(address), provider_id, "yokan"),
      m_epoch_context(std::move(epoch_context)) {}

    /// put_multi batches at or above this many payload bytes ride a single
    /// bulk (RDMA) pull instead of inline RPC bytes.
    static constexpr std::size_t k_bulk_threshold = 16 * 1024;

    Status put(const std::string& key, const std::string& value) const;
    [[nodiscard]] Expected<std::string> get(const std::string& key) const;
    [[nodiscard]] Expected<bool> exists(const std::string& key) const;
    Status erase(const std::string& key) const;
    [[nodiscard]] Expected<std::uint64_t> count() const;
    /// Store N pairs in one RPC (inline payload, or one bulk transfer when
    /// the batch reaches k_bulk_threshold). The server executes the batch
    /// across its handler pool's ULTs and replies once.
    Status put_multi(const std::vector<std::pair<std::string, std::string>>& pairs) const;
    [[nodiscard]] Expected<std::vector<std::optional<std::string>>>
    get_multi(const std::vector<std::string>& keys) const;
    /// Fire-and-wait-later variants. The reply leads with the provider's
    /// epoch: the returned handle's wait_unpack<std::uint64_t, bool>() /
    /// wait_unpack<std::uint64_t, std::vector<...>>() yields it alongside
    /// the result; callers overlap batches to several providers
    /// (elastic_kv's shard fan-out) or pipeline consecutive batches (the
    /// Batcher).
    [[nodiscard]] margo::AsyncRequest
    put_multi_async(const std::vector<std::pair<std::string, std::string>>& pairs) const;
    [[nodiscard]] margo::AsyncRequest
    get_multi_async(const std::vector<std::string>& keys) const;
    /// Erase several keys; returns how many existed and were removed.
    [[nodiscard]] Expected<std::uint64_t>
    erase_multi(const std::vector<std::string>& keys) const;
    [[nodiscard]] Expected<std::vector<std::string>>
    list_keys(const std::string& from = "", const std::string& prefix = "",
              std::uint64_t max = 0) const;
    /// Paginated key-value listing (the scan primitive of Yokan's API).
    [[nodiscard]] Expected<std::vector<std::pair<std::string, std::string>>>
    list_keyvals(const std::string& from = "", const std::string& prefix = "",
                 std::uint64_t max = 0) const;
    /// Total bytes stored in the database.
    [[nodiscard]] Expected<std::uint64_t> size_bytes() const;

    // -- control plane (unguarded; the elastic controller drives these) -------

    /// Hand the provider a new layout epoch (+ blob); adopted when newer.
    Status update_epoch(std::uint64_t epoch, const std::string& layout_blob) const;
    /// Copy the keys whose ring hash falls in [begin, end) (end 0 == 2^64)
    /// into bundle files under `dest_root` + `file_prefix` and ship them to
    /// `dest_address`'s REMI provider (files stay local when the
    /// destination is this provider's own node). Source keys are NOT
    /// erased — the split protocol flips the layout first and cleans up
    /// with erase_range afterwards, so reads never miss. Returns the number
    /// of pairs extracted.
    [[nodiscard]] Expected<std::uint64_t>
    extract_range(std::uint64_t begin, std::uint64_t end, const std::string& dest_root,
                  const std::string& file_prefix, const std::string& dest_address,
                  const std::string& method = "chunks",
                  std::uint16_t remi_provider_id = 1) const;
    /// Erase every key whose ring hash falls in [begin, end); returns the
    /// number erased (the post-flip cleanup of a split).
    [[nodiscard]] Expected<std::uint64_t> erase_range(std::uint64_t begin,
                                                      std::uint64_t end) const;
    /// Load (and delete) staged bundle files under root() + `file_prefix`
    /// into the live database — the landing half of a shard split or merge.
    /// Put-if-absent: a key already present here arrived *after* the layout
    /// flip that froze the staged range, so the local copy wins.
    [[nodiscard]] Expected<std::uint64_t> absorb(const std::string& file_prefix) const;

    [[nodiscard]] const std::shared_ptr<EpochContext>& epoch_context() const noexcept {
        return m_epoch_context;
    }

  private:
    [[nodiscard]] std::uint64_t send_epoch() const noexcept {
        return m_epoch_context ? m_epoch_context->epoch.load(std::memory_order_relaxed) : 0;
    }
    void observe(std::uint64_t e) const noexcept {
        if (m_epoch_context) m_epoch_context->observe(e);
    }

    std::shared_ptr<EpochContext> m_epoch_context;
};

/// Opt-in client-side op coalescing: put() enqueues locally and whole
/// batches leave as single put_multi RPCs (sent asynchronously, so
/// consecutive batches pipeline). A batch flushes when it reaches
/// `max_ops` operations or `max_bytes` payload bytes; with `max_delay` > 0
/// a timer also flushes a partial batch that sat too long, bounding the
/// latency a coalesced op can pay. Errors surface at drain(): the returned
/// status is the first failed batch's error.
///
/// Thread-safe; put() never blocks on the network. The destructor flushes
/// and drains (dropping any error), so explicitly drain() when failures
/// matter.
class Batcher {
  public:
    struct Options {
        std::size_t max_ops = 32;
        std::size_t max_bytes = 1 << 20;
        std::chrono::milliseconds max_delay{0}; ///< 0 = no time-based flush
    };
    struct Stats {
        std::uint64_t ops_enqueued = 0;
        std::uint64_t batches_sent = 0;
        std::uint64_t largest_batch = 0;
    };

    explicit Batcher(Database db);
    Batcher(Database db, Options options);
    ~Batcher();
    Batcher(const Batcher&) = delete;
    Batcher& operator=(const Batcher&) = delete;

    /// Enqueue one put; may send a full batch on its way out.
    void put(std::string key, std::string value);
    /// Send whatever is queued now (async; does not wait).
    void flush();
    /// Flush, then wait for every outstanding batch; first error wins.
    Status drain();
    [[nodiscard]] Stats stats() const;

  private:
    struct Inner;
    std::shared_ptr<Inner> m_inner;
};

struct ProviderConfig {
    std::string db_name = "db";
    std::string backend = "map";
    /// Non-empty => virtual database (§7 Obs. 10): every write fans out to
    /// these replicas ("type:id@address" dependency-style specs), reads are
    /// served by the first reachable replica. The provider holds no data.
    std::vector<std::string> targets;

    static Expected<ProviderConfig> from_json(const json::Value& config);
    [[nodiscard]] json::Value to_json() const;
};

class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id, ProviderConfig config,
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the backend is destroyed.
    ~Provider() override;

    [[nodiscard]] json::Value get_config() const override;

    /// Direct (in-process) access to the backend, used by service glue like
    /// the RAFT state machine adapter.
    [[nodiscard]] Backend* backend() noexcept { return m_backend.get(); }

    // -- epoch guard -----------------------------------------------------------

    /// Adopt `epoch` (and the layout blob piggybacked into stale-epoch
    /// rejections) if newer than what the provider holds. Also reachable
    /// remotely (update_epoch RPC) and via SSG payload dissemination
    /// (apply_epoch_update below).
    void set_epoch(std::uint64_t epoch, std::string layout_blob);
    [[nodiscard]] std::uint64_t epoch() const noexcept {
        return m_epoch.load(std::memory_order_acquire);
    }

    /// Layout blobs at or under this size ride inside stale-epoch
    /// rejections; larger ones force the client to refresh explicitly.
    static constexpr std::size_t k_epoch_piggyback_limit = 8 * 1024;

    // -- dynamic-service hooks -------------------------------------------------

    /// Serialize the database into files under root() in `store` (one file
    /// per bundle of pairs, so REMI has a multi-file fileset to migrate).
    Status dump_to_store(remi::SimFileStore& store) const;
    /// Load the database from files under root() (invoked automatically at
    /// construction when such files exist — the post-migration re-attach).
    Status load_from_store(remi::SimFileStore& store);
    /// Fileset root for this database: "/yokan/<db_name>/".
    [[nodiscard]] std::string root() const { return "/yokan/" + m_config.db_name + "/"; }

    /// §6: migrate the database files to the REMI provider at the
    /// destination. `options` accepts {"method": "rdma"|"chunks",
    /// "chunk_size": N, "remi_provider_id": N}.
    Status migrate_data(const std::string& dest_address, const json::Value& options);

    /// §7 Obs. 9: checkpoint/restore against the shared PFS store.
    Status checkpoint_data(const std::string& path) const;
    Status restore_data(const std::string& path);

    // -- shard split/merge primitives (see Database wrappers) ------------------

    Expected<std::uint64_t> extract_range(std::uint64_t begin, std::uint64_t end,
                                          const std::string& dest_root,
                                          const std::string& file_prefix,
                                          const std::string& dest_address,
                                          const json::Value& options);
    Expected<std::uint64_t> erase_range(std::uint64_t begin, std::uint64_t end);
    Expected<std::uint64_t> absorb(const std::string& file_prefix);

    static constexpr std::uint16_t k_default_remi_provider_id = 1;
    static constexpr std::size_t k_pairs_per_file = 128;

  private:
    void define_rpcs();
    /// Epoch guard shared by every data RPC: true when the request may
    /// proceed; otherwise the stale-epoch rejection was already sent.
    bool check_epoch(const margo::Request& req, std::uint64_t req_epoch) const;
    /// Vectored batch execution (shared by put_multi and put_multi_bulk):
    /// runs the pairs across the handler pool's ULTs, emitting one
    /// notify_batch_op per pair, and replies once. Keys are zero-copy views
    /// into the request payload (or the pulled bulk buffer), both of which
    /// outlive this call.
    void handle_put_multi(const margo::Request& req,
                          std::vector<std::pair<std::string_view, std::string>>&& pairs);
    Status virtual_put(std::string_view key, const std::string& value);
    Expected<std::string> virtual_get(std::string_view key) const;

    ProviderConfig m_config;
    std::unique_ptr<Backend> m_backend; ///< null in virtual mode
    std::vector<Database> m_replicas;   ///< virtual mode targets

    /// Per-provider counters (`yokan_provider_<id>_*`) next to the
    /// process-global ones: in an elastic layout each shard is one provider,
    /// so these are what lets a metrics scraper attribute load to individual
    /// shards. Resolved once; the registry owns them.
    margo::Counter* m_ops = nullptr;
    margo::Counter* m_stale = nullptr;

    std::atomic<std::uint64_t> m_epoch{0};
    mutable std::mutex m_epoch_mutex; ///< guards m_layout_blob
    std::string m_layout_blob;
};

/// Push a layout epoch into every Yokan provider living on `instance` (the
/// SSG payload callback's entry point: gossip delivers the blob to a node,
/// the node applies it to its local shards without any controller RPC).
void apply_epoch_update(const margo::InstancePtr& instance, std::uint64_t epoch,
                        const std::string& layout_blob);

/// Register Yokan's Bedrock module under library name "libyokan.so"
/// (idempotent). The module declares an optional "remi" dependency used for
/// provider migration, mirroring §6 Observation 5.
void register_module();

} // namespace mochi::yokan
