#include "yokan/backend.hpp"

#include <algorithm>

namespace mochi::yokan {

namespace {

std::string no_such_key(std::string_view key) {
    return "no such key: " + std::string(key);
}

/// Transparent hash so unordered containers can look up string_view keys
/// without materializing a std::string (C++20 heterogeneous lookup).
struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

/// Ordered std::map backend (the default; supports efficient prefix scans).
class MapBackend final : public Backend {
  public:
    Status put(std::string_view key, std::string value) override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) {
            m_bytes += key.size() + value.size();
            m_data.emplace(std::string(key), std::move(value));
        } else {
            m_bytes += value.size();
            m_bytes -= it->second.size();
            it->second = std::move(value);
        }
        return {};
    }
    Expected<std::string> get(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        return it->second;
    }
    bool exists(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        return m_data.find(key) != m_data.end();
    }
    Status erase(std::string_view key) override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        m_bytes -= it->first.size() + it->second.size();
        m_data.erase(it);
        return {};
    }
    std::size_t count() const override {
        std::lock_guard lk{m_mutex};
        return m_data.size();
    }
    std::size_t size_bytes() const override {
        std::lock_guard lk{m_mutex};
        return m_bytes;
    }
    std::vector<std::string> list_keys(std::string_view from, std::string_view prefix,
                                       std::size_t max) const override {
        std::lock_guard lk{m_mutex};
        std::vector<std::string> out;
        std::string_view start = from > prefix ? from : prefix;
        for (auto it = m_data.lower_bound(start); it != m_data.end(); ++it) {
            // Ordered scan: once a key stops matching the prefix, none after
            // it can match.
            if (!prefix.empty() && it->first.compare(0, prefix.size(), prefix) != 0) break;
            out.push_back(it->first);
            if (max != 0 && out.size() >= max) break;
        }
        return out;
    }
    void for_each(const std::function<void(const std::string&, const std::string&)>& fn)
        const override {
        std::lock_guard lk{m_mutex};
        for (const auto& [k, v] : m_data) fn(k, v);
    }
    void clear() override {
        std::lock_guard lk{m_mutex};
        m_data.clear();
        m_bytes = 0;
    }
    const char* type() const noexcept override { return "map"; }

  private:
    mutable std::mutex m_mutex;
    std::map<std::string, std::string, std::less<>> m_data;
    std::size_t m_bytes = 0;
};

/// Hash-map backend (no ordered scans; list_keys sorts on demand).
class UnorderedMapBackend final : public Backend {
  public:
    Status put(std::string_view key, std::string value) override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) {
            m_bytes += key.size() + value.size();
            m_data.emplace(std::string(key), std::move(value));
        } else {
            m_bytes += value.size();
            m_bytes -= it->second.size();
            it->second = std::move(value);
        }
        return {};
    }
    Expected<std::string> get(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        return it->second;
    }
    bool exists(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        return m_data.find(key) != m_data.end();
    }
    Status erase(std::string_view key) override {
        std::lock_guard lk{m_mutex};
        auto it = m_data.find(key);
        if (it == m_data.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        m_bytes -= it->first.size() + it->second.size();
        m_data.erase(it);
        return {};
    }
    std::size_t count() const override {
        std::lock_guard lk{m_mutex};
        return m_data.size();
    }
    std::size_t size_bytes() const override {
        std::lock_guard lk{m_mutex};
        return m_bytes;
    }
    std::vector<std::string> list_keys(std::string_view from, std::string_view prefix,
                                       std::size_t max) const override {
        std::lock_guard lk{m_mutex};
        std::vector<std::string> out;
        for (const auto& [k, v] : m_data) {
            if (k < from) continue;
            if (!prefix.empty() && k.compare(0, prefix.size(), prefix) != 0) continue;
            out.push_back(k);
        }
        std::sort(out.begin(), out.end());
        if (max != 0 && out.size() > max) out.resize(max);
        return out;
    }
    void for_each(const std::function<void(const std::string&, const std::string&)>& fn)
        const override {
        std::lock_guard lk{m_mutex};
        for (const auto& [k, v] : m_data) fn(k, v);
    }
    void clear() override {
        std::lock_guard lk{m_mutex};
        m_data.clear();
        m_bytes = 0;
    }
    const char* type() const noexcept override { return "unordered_map"; }

  private:
    mutable std::mutex m_mutex;
    std::unordered_map<std::string, std::string, StringHash, std::equal_to<>> m_data;
    std::size_t m_bytes = 0;
};

/// Append-only log with an in-memory index and tombstones; models an
/// LSM/log-structured store. Reads go through the index; compaction
/// rewrites the log when garbage exceeds half of it.
class LogBackend final : public Backend {
  public:
    Status put(std::string_view key, std::string value) override {
        std::lock_guard lk{m_mutex};
        m_log.emplace_back(std::string(key), std::move(value), /*tombstone=*/false);
        auto it = m_index.find(key);
        if (it != m_index.end()) {
            m_garbage += 1;
            it->second = m_log.size() - 1;
        } else {
            m_index.emplace(std::string(key), m_log.size() - 1);
        }
        maybe_compact();
        return {};
    }
    Expected<std::string> get(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        auto it = m_index.find(key);
        if (it == m_index.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        return std::get<1>(m_log[it->second]);
    }
    bool exists(std::string_view key) const override {
        std::lock_guard lk{m_mutex};
        return m_index.find(key) != m_index.end();
    }
    Status erase(std::string_view key) override {
        std::lock_guard lk{m_mutex};
        auto it = m_index.find(key);
        if (it == m_index.end()) return Error{Error::Code::NotFound, no_such_key(key)};
        m_log.emplace_back(std::string(key), "", /*tombstone=*/true);
        m_index.erase(it);
        m_garbage += 2;
        maybe_compact();
        return {};
    }
    std::size_t count() const override {
        std::lock_guard lk{m_mutex};
        return m_index.size();
    }
    std::size_t size_bytes() const override {
        std::lock_guard lk{m_mutex};
        std::size_t b = 0;
        for (const auto& [k, idx] : m_index)
            b += k.size() + std::get<1>(m_log[idx]).size();
        return b;
    }
    std::vector<std::string> list_keys(std::string_view from, std::string_view prefix,
                                       std::size_t max) const override {
        std::lock_guard lk{m_mutex};
        std::vector<std::string> out;
        for (auto it = m_index.lower_bound(from); it != m_index.end(); ++it) {
            if (!prefix.empty() && it->first.compare(0, prefix.size(), prefix) != 0) continue;
            out.push_back(it->first);
            if (max != 0 && out.size() >= max) break;
        }
        return out;
    }
    void for_each(const std::function<void(const std::string&, const std::string&)>& fn)
        const override {
        std::lock_guard lk{m_mutex};
        for (const auto& [k, idx] : m_index) fn(k, std::get<1>(m_log[idx]));
    }
    void clear() override {
        std::lock_guard lk{m_mutex};
        m_log.clear();
        m_index.clear();
        m_garbage = 0;
    }
    const char* type() const noexcept override { return "log"; }

    /// Live log entries (exposed for compaction tests via size heuristics).
    std::size_t log_entries() const {
        std::lock_guard lk{m_mutex};
        return m_log.size();
    }

  private:
    void maybe_compact() {
        if (m_garbage * 2 < m_log.size() || m_log.size() < 64) return;
        std::vector<std::tuple<std::string, std::string, bool>> compacted;
        std::map<std::string, std::size_t, std::less<>> new_index;
        compacted.reserve(m_index.size());
        for (const auto& [k, idx] : m_index) {
            compacted.emplace_back(k, std::get<1>(m_log[idx]), false);
            new_index[k] = compacted.size() - 1;
        }
        m_log = std::move(compacted);
        m_index = std::move(new_index);
        m_garbage = 0;
    }

    mutable std::mutex m_mutex;
    std::vector<std::tuple<std::string, std::string, bool>> m_log;
    std::map<std::string, std::size_t, std::less<>> m_index;
    std::size_t m_garbage = 0;
};

} // namespace

Expected<std::unique_ptr<Backend>> Backend::create(const std::string& type) {
    if (type.empty() || type == "map") return std::unique_ptr<Backend>(new MapBackend());
    if (type == "unordered_map")
        return std::unique_ptr<Backend>(new UnorderedMapBackend());
    if (type == "log") return std::unique_ptr<Backend>(new LogBackend());
    return Error{Error::Code::InvalidArgument, "unknown yokan backend: " + type};
}

} // namespace mochi::yokan
