// Yokan backend abstraction (Figure 1: "a resource will generally follow an
// abstract interface so that the functionality provided by the component can
// be implemented in various ways" — the paper names RocksDB/LevelDB/BDB; we
// provide an ordered map, a hash map, and an append-log backend).
#pragma once

#include "common/expected.hpp"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mochi::yokan {

/// Keys are passed as string_view: RPC handlers decode them as zero-copy
/// slices of the request payload (mercury::InputArchive's string_view load),
/// so a lookup never materializes a key string. Backends only copy a key
/// when they actually store it (insert paths); the containers use
/// transparent comparators/hashes so find/lower_bound take views directly.
class Backend {
  public:
    virtual ~Backend() = default;

    virtual Status put(std::string_view key, std::string value) = 0;
    [[nodiscard]] virtual Expected<std::string> get(std::string_view key) const = 0;
    [[nodiscard]] virtual bool exists(std::string_view key) const = 0;
    virtual Status erase(std::string_view key) = 0;
    [[nodiscard]] virtual std::size_t count() const = 0;
    [[nodiscard]] virtual std::size_t size_bytes() const = 0;

    /// Keys >= `from`, filtered by `prefix`, up to `max` (0 = unlimited).
    [[nodiscard]] virtual std::vector<std::string> list_keys(std::string_view from,
                                                             std::string_view prefix,
                                                             std::size_t max) const = 0;

    /// Visit every pair (for dump/migration/checkpoint). Stable snapshot not
    /// required; callers quiesce writes first.
    virtual void for_each(
        const std::function<void(const std::string&, const std::string&)>& fn) const = 0;

    virtual void clear() = 0;

    [[nodiscard]] virtual const char* type() const noexcept = 0;

    /// Factory: "map" (ordered), "unordered_map" (hash), "log" (append-only
    /// with tombstones, ordered reads through an index).
    static Expected<std::unique_ptr<Backend>> create(const std::string& type);
};

} // namespace mochi::yokan
