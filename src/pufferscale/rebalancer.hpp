// Pufferscale (§6, Observation 6 / [Cheriere et al. 2020]): heuristics that
// decide which resources to migrate and where, optimizing a weighted
// combination of load balance (balance of accesses), data balance (balance
// of stored volume) and rebalancing time (bytes moved). Fully composable:
// the planner knows nothing about the nature of the resources; the executor
// carries a plan out through a dependency-injected migrate function.
#pragma once

#include "common/expected.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mochi::pufferscale {

/// One migratable resource (e.g. a Yokan database, a Warabi target).
struct Resource {
    std::string id;
    std::string node;  ///< current host node
    double load = 0;   ///< access rate (e.g. RPCs/s from Margo monitoring, §4)
    double size = 0;   ///< data volume in bytes
};

/// Objective weights. The paper describes optimizing "load balance, data
/// balance, rebalancing time, or a compromise between these three".
struct Objectives {
    double w_load = 1.0;
    double w_data = 1.0;
    double w_time = 0.1; ///< cost per normalized byte moved
};

struct Move {
    std::string resource;
    std::string from;
    std::string to;
    double size = 0;
    double load = 0;
};

/// Balance metrics of a placement: imbalance is the max/mean ratio minus 1
/// (0 = perfectly balanced).
struct Metrics {
    double load_imbalance = 0;
    double data_imbalance = 0;
    double bytes_moved = 0;
    double objective = 0;
};

struct Plan {
    std::vector<Move> moves;
    Metrics before;
    Metrics after;
};

/// Compute balance metrics of `resources` over `nodes` (nodes may be empty
/// of resources; they still count toward the balance denominator).
[[nodiscard]] Metrics evaluate(const std::vector<Resource>& resources,
                               const std::vector<std::string>& nodes,
                               const Objectives& objectives, double bytes_moved = 0);

/// Plan a rescale: place `resources` onto `target_nodes` (which may add
/// nodes — scale-up — or omit current ones — scale-down), minimizing the
/// weighted objective with a greedy heuristic:
///   1. every resource on a removed node must move (feasibility);
///   2. then iteratively move the best (objective-reducing) resource from
///      the most loaded node to the least loaded one until no move helps.
[[nodiscard]] Expected<Plan> plan_rescale(const std::vector<Resource>& resources,
                                          const std::vector<std::string>& target_nodes,
                                          const Objectives& objectives = {});

/// Execute a plan through the injected migration function ("it simply works
/// out a rebalancing plan and carries it out by calling functions provided
/// via dependency injection"). Stops at the first failure.
using MigrateFn = std::function<Status(const Move&)>;
Status execute(const Plan& plan, const MigrateFn& migrate);

} // namespace mochi::pufferscale
