#include "pufferscale/rebalancer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace mochi::pufferscale {

namespace {

struct NodeStats {
    double load = 0;
    double size = 0;
};

std::map<std::string, NodeStats> tally(const std::vector<Resource>& resources,
                                       const std::vector<std::string>& nodes) {
    std::map<std::string, NodeStats> stats;
    for (const auto& n : nodes) stats[n]; // ensure empty nodes count
    for (const auto& r : resources) {
        stats[r.node].load += r.load;
        stats[r.node].size += r.size;
    }
    return stats;
}

double imbalance(const std::map<std::string, NodeStats>& stats,
                 double NodeStats::*field) {
    if (stats.empty()) return 0;
    double total = 0, max = 0;
    for (const auto& [n, s] : stats) {
        total += s.*field;
        max = std::max(max, s.*field);
    }
    if (total <= 0) return 0;
    double mean = total / static_cast<double>(stats.size());
    return mean > 0 ? max / mean - 1.0 : 0;
}

/// Smooth balance measure used for optimization: coefficient of variation
/// (stddev/mean). Unlike max/mean-1 it credits every move toward balance,
/// so greedy descent does not stall on plateaus where only the max node
/// "counts".
double variation(const std::map<std::string, NodeStats>& stats, double NodeStats::*field) {
    if (stats.empty()) return 0;
    double total = 0;
    for (const auto& [n, s] : stats) total += s.*field;
    if (total <= 0) return 0;
    double mean = total / static_cast<double>(stats.size());
    double ss = 0;
    for (const auto& [n, s] : stats) {
        double d = s.*field - mean;
        ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(stats.size())) / mean;
}

double objective_of(const std::map<std::string, NodeStats>& stats,
                    const Objectives& obj, double bytes_moved, double total_bytes) {
    double norm_moved = total_bytes > 0 ? bytes_moved / total_bytes : 0;
    return obj.w_load * variation(stats, &NodeStats::load) +
           obj.w_data * variation(stats, &NodeStats::size) + obj.w_time * norm_moved;
}

} // namespace

Metrics evaluate(const std::vector<Resource>& resources,
                 const std::vector<std::string>& nodes, const Objectives& objectives,
                 double bytes_moved) {
    auto stats = tally(resources, nodes);
    double total_bytes = 0;
    for (const auto& r : resources) total_bytes += r.size;
    Metrics m;
    m.load_imbalance = imbalance(stats, &NodeStats::load);
    m.data_imbalance = imbalance(stats, &NodeStats::size);
    m.bytes_moved = bytes_moved;
    m.objective = objective_of(stats, objectives, bytes_moved, total_bytes);
    return m;
}

Expected<Plan> plan_rescale(const std::vector<Resource>& resources,
                            const std::vector<std::string>& target_nodes,
                            const Objectives& objectives) {
    if (target_nodes.empty())
        return Error{Error::Code::InvalidArgument, "rescale needs at least one target node"};
    std::set<std::string> targets(target_nodes.begin(), target_nodes.end());
    std::set<std::string> ids;
    for (const auto& r : resources) {
        if (!ids.insert(r.id).second)
            return Error{Error::Code::InvalidArgument, "duplicate resource id: " + r.id};
        if (r.load < 0 || r.size < 0)
            return Error{Error::Code::InvalidArgument,
                         "resource " + r.id + " has negative load or size"};
    }

    Plan plan;
    // Metrics "before" are computed over the union of old and new nodes so
    // scale-up imbalance (new nodes empty) is visible.
    std::vector<std::string> union_nodes(target_nodes);
    for (const auto& r : resources)
        if (!targets.count(r.node)) union_nodes.push_back(r.node);
    plan.before = evaluate(resources, union_nodes, objectives);

    // Working placement.
    std::vector<Resource> placed = resources;
    auto stats = tally(placed, target_nodes);
    // Drop nodes that are being removed from the stats map view (they were
    // added by tally only if some resource still sits there).
    double total_bytes = 0;
    for (const auto& r : placed) total_bytes += r.size;
    double bytes_moved = 0;

    auto least_loaded = [&](double extra_load, double extra_size) {
        // Pick the target node minimizing post-placement (load, size) pressure.
        std::string best;
        double best_score = 0;
        for (const auto& n : target_nodes) {
            const auto& s = stats[n];
            double score = objectives.w_load * (s.load + extra_load) +
                           objectives.w_data * (s.size + extra_size);
            if (best.empty() || score < best_score) {
                best = n;
                best_score = score;
            }
        }
        return best;
    };
    auto apply_move = [&](Resource& r, const std::string& to) {
        stats[r.node].load -= r.load;
        stats[r.node].size -= r.size;
        stats[to].load += r.load;
        stats[to].size += r.size;
        plan.moves.push_back(Move{r.id, r.node, to, r.size, r.load});
        bytes_moved += r.size;
        r.node = to;
    };

    // Phase 1 (feasibility): evacuate removed nodes. Largest resources
    // first so the greedy fill packs better.
    std::vector<Resource*> evacuees;
    for (auto& r : placed)
        if (!targets.count(r.node)) evacuees.push_back(&r);
    std::sort(evacuees.begin(), evacuees.end(), [](const Resource* a, const Resource* b) {
        return a->size + a->load > b->size + b->load;
    });
    for (Resource* r : evacuees) apply_move(*r, least_loaded(r->load, r->size));

    // Phase 2 (balance): repeatedly move a resource from the highest-
    // pressure node to the lowest-pressure one (pressure = the weighted
    // load/size combination), picking the resource whose pressure is
    // closest to half the gap — the classic equalization heuristic. A
    // single-move-objective greedy would stall on plateaus (e.g. 2 -> 4
    // nodes, where the global max only drops after several moves).
    auto pressure = [&](const NodeStats& s) {
        return objectives.w_load * s.load + objectives.w_data * s.size;
    };
    struct Step {
        Resource* resource;
        std::string from, to;
        double objective_after;
    };
    std::vector<Step> steps;
    double best_objective = objective_of(stats, objectives, bytes_moved, total_bytes);
    std::size_t best_prefix = 0;
    constexpr int k_max_steps = 10'000;
    double phase2_bytes = bytes_moved;
    for (int iter = 0; iter < k_max_steps; ++iter) {
        std::string donor, receiver;
        double donor_p = -1, receiver_p = 0;
        for (const auto& n : target_nodes) {
            double p = pressure(stats[n]);
            if (p > donor_p) {
                donor_p = p;
                donor = n;
            }
            if (receiver.empty() || p < receiver_p) {
                receiver_p = p;
                receiver = n;
            }
        }
        double gap = donor_p - receiver_p;
        if (gap <= 1e-12 || donor == receiver) break;
        // Resource on the donor whose pressure is closest to gap/2 without
        // inverting the imbalance.
        Resource* best_res = nullptr;
        double best_fit = 0;
        for (auto& r : placed) {
            if (r.node != donor) continue;
            double rp = objectives.w_load * r.load + objectives.w_data * r.size;
            if (rp <= 0 || rp >= gap) continue; // move would not help
            double fit = std::fabs(rp - gap / 2);
            if (best_res == nullptr || fit < best_fit) {
                best_res = &r;
                best_fit = fit;
            }
        }
        if (best_res == nullptr) break;
        apply_move(*best_res, receiver);
        phase2_bytes = bytes_moved;
        double obj = objective_of(stats, objectives, phase2_bytes, total_bytes);
        steps.push_back(Step{best_res, donor, receiver, obj});
        if (obj < best_objective - 1e-12) {
            best_objective = obj;
            best_prefix = steps.size();
        }
    }
    // The time objective may make the tail of the equalization not worth its
    // migration cost: keep only the best prefix, rolling the rest back.
    for (std::size_t i = steps.size(); i > best_prefix; --i) {
        const Step& s = steps[i - 1];
        stats[s.to].load -= s.resource->load;
        stats[s.to].size -= s.resource->size;
        stats[s.from].load += s.resource->load;
        stats[s.from].size += s.resource->size;
        bytes_moved -= s.resource->size;
        s.resource->node = s.from;
        plan.moves.pop_back();
    }

    // Phase 3 (polish): pressure equalization balances the *combined*
    // weighted pressure; with uncorrelated load/size distributions one
    // dimension can remain skewed. Greedy single moves on the true global
    // objective fix the residue (no plateau risk once roughly equalized).
    double current = objective_of(stats, objectives, bytes_moved, total_bytes);
    for (int iter = 0; iter < k_max_steps; ++iter) {
        double best_delta = -1e-12;
        Resource* best_res = nullptr;
        std::string best_to;
        for (auto& r : placed) {
            for (const auto& n : target_nodes) {
                if (n == r.node) continue;
                stats[r.node].load -= r.load;
                stats[r.node].size -= r.size;
                stats[n].load += r.load;
                stats[n].size += r.size;
                double candidate =
                    objective_of(stats, objectives, bytes_moved + r.size, total_bytes);
                stats[n].load -= r.load;
                stats[n].size -= r.size;
                stats[r.node].load += r.load;
                stats[r.node].size += r.size;
                double delta = candidate - current;
                if (delta < best_delta) {
                    best_delta = delta;
                    best_res = &r;
                    best_to = n;
                }
            }
        }
        if (best_res == nullptr) break;
        apply_move(*best_res, best_to);
        current = objective_of(stats, objectives, bytes_moved, total_bytes);
    }

    plan.after = evaluate(placed, target_nodes, objectives, bytes_moved);
    return plan;
}

Status execute(const Plan& plan, const MigrateFn& migrate) {
    for (const auto& move : plan.moves) {
        if (auto st = migrate(move); !st.ok()) return st;
    }
    return {};
}

} // namespace mochi::pufferscale
