#include "remi/provider.hpp"
#include "bedrock/component.hpp"
#include "common/logging.hpp"
#include "margo/tracing.hpp"

#include <atomic>

namespace mochi::remi {

namespace {

struct ChunkEntry {
    std::string path;
    std::uint64_t offset = 0;
    std::string data;
    std::uint8_t last = 1; ///< final piece of this file

    template <typename A>
    void serialize(A& ar) {
        ar& path& offset& data& last;
    }
};

} // namespace

Fileset Fileset::scan(const SimFileStore& store, std::string root) {
    Fileset fs;
    fs.files = store.list(root);
    fs.root = std::move(root);
    return fs;
}

Provider::Provider(margo::InstancePtr instance, std::uint16_t provider_id,
                   std::shared_ptr<abt::Pool> pool)
: margo::Provider(std::move(instance), provider_id, "remi", std::move(pool)),
  m_store(SimFileStore::for_node(this->instance()->address())) {
    // RDMA path: the source exposes the file contents; we pull them in one
    // bulk transfer and write the file locally.
    define("fetch_rdma", [this](const margo::Request& req) {
        std::string path;
        mercury::BulkHandle handle;
        if (!req.unpack(path, handle)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        std::string buffer(handle.size, '\0');
        if (auto st = this->instance()->bulk_pull(handle, 0, buffer.data(), buffer.size());
            !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        if (auto st = m_store->write(path, std::move(buffer)); !st.ok()) {
            req.respond_error(st.error());
            return;
        }
        req.respond_values(true);
    });
    // Chunk path: a batch of (possibly partial) small files packed together.
    define("write_chunk", [this](const margo::Request& req) {
        std::vector<ChunkEntry> entries;
        if (!req.unpack(entries)) {
            req.respond_error(Error{Error::Code::InvalidArgument, "bad payload"});
            return;
        }
        for (auto& e : entries) {
            Status st = e.offset == 0 ? m_store->write(e.path, std::move(e.data))
                                      : m_store->append(e.path, e.data);
            if (!st.ok()) {
                req.respond_error(st.error());
                return;
            }
        }
        req.respond_values(true);
    });
}

json::Value Provider::get_config() const {
    auto c = json::Value::object();
    c["type"] = "remi";
    c["files"] = m_store->file_count();
    c["bytes"] = m_store->total_bytes();
    return c;
}

namespace {

Expected<MigrationStats> migrate_rdma(const margo::InstancePtr& instance,
                                      const std::shared_ptr<SimFileStore>& store,
                                      const Fileset& fileset, const std::string& dest,
                                      std::uint16_t provider_id,
                                      const MigrationOptions& options) {
    MigrationStats stats;
    margo::ForwardOptions fopts;
    fopts.provider_id = provider_id;
    fopts.timeout = options.rpc_timeout;
    for (const auto& path : fileset.files) {
        auto data = store->read(path);
        if (!data) return data.error();
        // "memory mapping the files and using RDMA to transfer the data"
        auto handle = instance->expose(data->data(), data->size(), /*writable=*/false);
        auto r = instance->call<bool>(dest, "remi/fetch_rdma", fopts, path, handle);
        instance->unexpose(handle.id);
        if (!r) return std::move(r).error();
        ++stats.files;
        ++stats.messages;
        stats.bytes += data->size();
    }
    return stats;
}

Expected<MigrationStats> migrate_chunks(const margo::InstancePtr& instance,
                                        const std::shared_ptr<SimFileStore>& store,
                                        const Fileset& fileset, const std::string& dest,
                                        std::uint16_t provider_id,
                                        const MigrationOptions& options) {
    // Build the chunk list: files are "packed together into larger chunks";
    // files bigger than the chunk size are split at chunk boundaries.
    std::vector<std::vector<ChunkEntry>> chunks;
    std::vector<ChunkEntry> current;
    std::size_t current_bytes = 0;
    MigrationStats stats;
    auto flush = [&] {
        if (!current.empty()) {
            chunks.push_back(std::move(current));
            current.clear();
            current_bytes = 0;
        }
    };
    for (const auto& path : fileset.files) {
        auto data = store->read(path);
        if (!data) return data.error();
        stats.bytes += data->size();
        ++stats.files;
        std::size_t offset = 0;
        do {
            std::size_t room = options.chunk_size - current_bytes;
            if (room == 0) {
                flush();
                room = options.chunk_size;
            }
            std::size_t take = std::min(room, data->size() - offset);
            ChunkEntry e;
            e.path = path;
            e.offset = offset;
            e.data = data->substr(offset, take);
            offset += take;
            e.last = offset == data->size() ? 1 : 0;
            current_bytes += take;
            current.push_back(std::move(e));
        } while (offset < data->size());
    }
    flush();
    stats.messages = chunks.size();

    // Pipeline: `pipeline_width` ULTs ship chunks concurrently; chunks
    // touching the same file stay ordered because splitting only crosses a
    // chunk boundary at flush points, and offsets make writes idempotent in
    // position. To be safe we ship same-file continuation chunks in order by
    // assigning chunks to workers round-robin *in sequence* and having each
    // worker process its assignment in order.
    margo::ForwardOptions fopts;
    fopts.provider_id = provider_id;
    fopts.timeout = options.rpc_timeout;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::string first_error;
    std::mutex error_mutex;
    int width = std::max(1, options.pipeline_width);
    // A file split across chunks lands in *consecutive* chunks; process them
    // with a single worker when width > 1 would break append ordering. We
    // sidestep this by noting that ChunkEntry::offset==0 rewrites the file
    // and appends carry explicit contiguity from split order; to keep the
    // implementation simple and correct we serialize multi-chunk files:
    // chunk i may only be sent once chunk i-1 for the same file completed.
    // The chunk builder splits large files into consecutive chunks, so a
    // conservative and simple approach is: workers claim chunks in order and
    // a chunk whose first entry has offset != 0 waits for the previous chunk
    // index to complete.
    std::vector<std::atomic<bool>> done(chunks.size());
    for (auto& d : done) d.store(false);
    // Worker ULTs have a fresh user_context; carry the migration's ambient
    // RPC/trace context across the post so the write_chunk forwards keep
    // their parent attribution and stay on the caller's trace.
    margo::RpcContext ctx = margo::current_rpc_context();
    auto worker = [&, ctx] {
        margo::ContextScope scope{ctx};
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= chunks.size() || failed.load()) return;
            if (!chunks[i].empty() && chunks[i].front().offset != 0) {
                // Wait for the previous chunk (same file's earlier piece).
                while (i > 0 && !done[i - 1].load() && !failed.load()) abt::yield();
                // A failure may be what ended the wait: shipping chunk i now
                // would append a continuation out of order onto a file whose
                // earlier piece never landed.
                if (i > 0 && !done[i - 1].load()) return;
            }
            auto r = instance->call<bool>(dest, "remi/write_chunk", fopts, chunks[i]);
            if (!r) {
                std::lock_guard lk{error_mutex};
                if (!failed.exchange(true)) first_error = r.error().message;
                return;
            }
            done[i].store(true);
        }
    };
    auto rt = instance->runtime();
    std::vector<abt::ThreadHandle> handles;
    for (int w = 0; w < width; ++w) handles.push_back(rt->post_thread(rt->primary_pool(), worker));
    for (auto& h : handles) h.join();
    if (failed.load()) return Error{Error::Code::Generic, "chunk migration failed: " + first_error};
    return stats;
}

} // namespace

Expected<MigrationStats> migrate(const margo::InstancePtr& instance,
                                 const std::shared_ptr<SimFileStore>& store,
                                 const Fileset& fileset, const std::string& dest_address,
                                 std::uint16_t dest_provider_id,
                                 const MigrationOptions& options) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = options.method == Method::Rdma
                      ? migrate_rdma(instance, store, fileset, dest_address,
                                     dest_provider_id, options)
                      : migrate_chunks(instance, store, fileset, dest_address,
                                       dest_provider_id, options);
    if (!result) return result;
    if (options.remove_source)
        for (const auto& path : fileset.files) (void)store->remove(path);
    result->duration_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    auto& metrics = *instance->metrics();
    metrics.counter("remi_migrations_total").inc();
    metrics.counter("remi_migrated_files_total").inc(result->files);
    metrics.counter("remi_migrated_bytes_total").inc(result->bytes);
    metrics.histogram("remi_migration_duration_us").observe(result->duration_us);
    log::debug("remi", "migrated %zu files (%zu bytes) to %s in %.0f us", result->files,
               result->bytes, dest_address.c_str(), result->duration_us);
    return result;
}

namespace {

class RemiComponent : public bedrock::ComponentInstance {
  public:
    explicit RemiComponent(const bedrock::ComponentArgs& args)
    : m_provider(args.instance, args.provider_id, args.pool) {}
    json::Value get_config() const override { return m_provider.get_config(); }

  private:
    Provider m_provider;
};

} // namespace

void register_module() {
    bedrock::ModuleDefinition module;
    module.type = "remi";
    module.factory = [](const bedrock::ComponentArgs& args)
        -> Expected<std::unique_ptr<bedrock::ComponentInstance>> {
        return std::unique_ptr<bedrock::ComponentInstance>(new RemiComponent(args));
    };
    bedrock::ModuleRegistry::provide("libremi.so", std::move(module));
}

} // namespace mochi::remi
