// REMI: Mochi's REsource MIgration component (§6, Observation 4).
//
// Migrates filesets between node-local stores using one of two methods:
//  - Rdma: per file, memory-map (here: load) the file and let the
//    destination pull it with one RDMA bulk transfer. Efficient for large
//    files (per-file overhead amortized by bandwidth).
//  - Chunks: pack many (small) files into fixed-size chunks and ship the
//    chunks as pipelined RPCs. Efficient for many small files (per-message
//    overhead amortized across files, transfers overlap).
// bench/bench_migration locates the crossover between the two (E3).
#pragma once

#include "margo/provider.hpp"
#include "remi/sim_file_store.hpp"

#include <chrono>

namespace mochi::remi {

/// A set of files under a common root in one node's store.
struct Fileset {
    std::string root;               ///< e.g. "/yokan/db1/"
    std::vector<std::string> files; ///< absolute paths (root-prefixed)

    /// Enumerate a store's files under `root`.
    static Fileset scan(const SimFileStore& store, std::string root);
};

enum class Method { Rdma, Chunks };

struct MigrationOptions {
    Method method = Method::Rdma;
    std::size_t chunk_size = 1 << 20; ///< chunk payload bytes (Chunks method)
    int pipeline_width = 4;           ///< concurrent in-flight chunks
    bool remove_source = true;        ///< delete source files on success
    std::chrono::milliseconds rpc_timeout{30000};
};

struct MigrationStats {
    std::size_t files = 0;
    std::size_t bytes = 0;
    std::size_t messages = 0; ///< RPCs (chunks) or bulk ops (rdma)
    double duration_us = 0;
};

/// Server side: receives migrated files into this node's store.
class Provider : public margo::Provider {
  public:
    Provider(margo::InstancePtr instance, std::uint16_t provider_id,
             std::shared_ptr<abt::Pool> pool = nullptr);
    /// Quiesce handlers before the file store reference is destroyed.
    ~Provider() override { deregister_all(); }

    [[nodiscard]] json::Value get_config() const override;

  private:
    std::shared_ptr<SimFileStore> m_store;
};

/// Client side: push `fileset` from `store` to the REMI provider at
/// (dest_address, dest_provider_id). Blocking, ULT-aware.
Expected<MigrationStats> migrate(const margo::InstancePtr& instance,
                                 const std::shared_ptr<SimFileStore>& store,
                                 const Fileset& fileset, const std::string& dest_address,
                                 std::uint16_t dest_provider_id,
                                 const MigrationOptions& options = {});

/// Register REMI's Bedrock module under library name "libremi.so"
/// (idempotent).
void register_module();

} // namespace mochi::remi
