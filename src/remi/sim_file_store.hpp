// Simulated node-local storage (DESIGN.md substitutions). Each simulated
// process/node owns a namespace of byte files; REMI migrates filesets
// between stores, Yokan/Warabi persist their resources into them, and a
// shared "parallel file system" store backs §7's checkpoint/restore
// (accessible from any node).
#pragma once

#include "common/expected.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mochi::remi {

class SimFileStore {
  public:
    /// The store of a simulated node, keyed by its (margo) address. Created
    /// on first use; survives process crash/restart (the data is "on disk").
    static std::shared_ptr<SimFileStore> for_node(const std::string& address);

    /// The shared parallel-file-system store (§7 Obs. 9: "storing
    /// checkpoints in a way that makes them accessible from any node").
    static std::shared_ptr<SimFileStore> pfs();

    /// Drop a node's store (simulates permanent storage loss, §2.3).
    static void destroy_node(const std::string& address);

    Status write(const std::string& path, std::string data);
    Status append(const std::string& path, std::string_view data);
    [[nodiscard]] Expected<std::string> read(const std::string& path) const;
    [[nodiscard]] bool exists(const std::string& path) const;
    Status remove(const std::string& path);
    /// Remove every file under `prefix`; returns the number removed.
    std::size_t remove_prefix(const std::string& prefix);

    /// Paths under `prefix`, sorted.
    [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;
    [[nodiscard]] Expected<std::size_t> file_size(const std::string& path) const;
    [[nodiscard]] std::size_t total_bytes() const;
    [[nodiscard]] std::size_t file_count() const;

  private:
    SimFileStore() = default;
    mutable std::mutex m_mutex;
    std::map<std::string, std::string> m_files;
};

} // namespace mochi::remi
