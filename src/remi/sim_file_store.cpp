#include "remi/sim_file_store.hpp"

namespace mochi::remi {

namespace {
std::mutex g_registry_mutex;
std::map<std::string, std::shared_ptr<SimFileStore>>& registry() {
    static std::map<std::string, std::shared_ptr<SimFileStore>> r;
    return r;
}
} // namespace

std::shared_ptr<SimFileStore> SimFileStore::for_node(const std::string& address) {
    std::lock_guard lk{g_registry_mutex};
    auto& slot = registry()[address];
    if (!slot) slot = std::shared_ptr<SimFileStore>(new SimFileStore());
    return slot;
}

std::shared_ptr<SimFileStore> SimFileStore::pfs() { return for_node("__pfs__"); }

void SimFileStore::destroy_node(const std::string& address) {
    std::lock_guard lk{g_registry_mutex};
    registry().erase(address);
}

Status SimFileStore::write(const std::string& path, std::string data) {
    if (path.empty()) return Error{Error::Code::InvalidArgument, "empty path"};
    std::lock_guard lk{m_mutex};
    m_files[path] = std::move(data);
    return {};
}

Status SimFileStore::append(const std::string& path, std::string_view data) {
    if (path.empty()) return Error{Error::Code::InvalidArgument, "empty path"};
    std::lock_guard lk{m_mutex};
    m_files[path].append(data);
    return {};
}

Expected<std::string> SimFileStore::read(const std::string& path) const {
    std::lock_guard lk{m_mutex};
    auto it = m_files.find(path);
    if (it == m_files.end()) return Error{Error::Code::NotFound, "no file at " + path};
    return it->second;
}

bool SimFileStore::exists(const std::string& path) const {
    std::lock_guard lk{m_mutex};
    return m_files.count(path) > 0;
}

Status SimFileStore::remove(const std::string& path) {
    std::lock_guard lk{m_mutex};
    if (m_files.erase(path) == 0)
        return Error{Error::Code::NotFound, "no file at " + path};
    return {};
}

std::size_t SimFileStore::remove_prefix(const std::string& prefix) {
    std::lock_guard lk{m_mutex};
    std::size_t removed = 0;
    for (auto it = m_files.lower_bound(prefix);
         it != m_files.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
        it = m_files.erase(it);
        ++removed;
    }
    return removed;
}

std::vector<std::string> SimFileStore::list(const std::string& prefix) const {
    std::lock_guard lk{m_mutex};
    std::vector<std::string> out;
    for (auto it = m_files.lower_bound(prefix);
         it != m_files.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
        out.push_back(it->first);
    return out;
}

Expected<std::size_t> SimFileStore::file_size(const std::string& path) const {
    std::lock_guard lk{m_mutex};
    auto it = m_files.find(path);
    if (it == m_files.end()) return Error{Error::Code::NotFound, "no file at " + path};
    return it->second.size();
}

std::size_t SimFileStore::total_bytes() const {
    std::lock_guard lk{m_mutex};
    std::size_t total = 0;
    for (const auto& [p, d] : m_files) total += d.size();
    return total;
}

std::size_t SimFileStore::file_count() const {
    std::lock_guard lk{m_mutex};
    return m_files.size();
}

} // namespace mochi::remi
