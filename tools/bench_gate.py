#!/usr/bin/env python3
"""Benchmark-regression gate.

Runs the covered benchmarks (bench_rpc, bench_tracing, bench_ult,
bench_batch, bench_elastic, bench_autoscale, bench_workload), writes each
one's raw results to BENCH_<name>.json in
--out-dir, and compares a curated set of metrics against the checked-in
baselines in bench/baselines/.

Two kinds of checks:

  * ratio comparison against the baseline value, with a per-metric
    tolerance band (baselines capture the shape, not the exact machine, so
    bands are generous — the gate catches order-of-magnitude regressions
    such as a batched path quietly falling back to per-op RPCs, not 10%%
    noise);
  * absolute floors (``min``) and ceilings (``max``), for metrics that are
    themselves ratios or invariants and must hold on any machine — e.g.
    speedup_32 >= 3 (E10) or steady_layout_rpcs_per_op <= 0 (E12)
    regardless of absolute throughput.

Usage:
  tools/bench_gate.py --bin-dir build/bench [--baselines bench/baselines]
                      [--out-dir .] [--update-baselines]

Exit status 0 = all gates pass; 1 = regression or missing benchmark.
"""

import argparse
import json
import os
import subprocess
import sys

# Benchmarks to run: name -> how to produce BENCH_<name>.json.
#   google    - google-benchmark binary, native --benchmark_out JSON
#   metrics   - plain binary supporting `--json FILE` ({"metrics": {...}})
# An optional "binary" overrides the executable name (default bench_<name>),
# letting one binary serve several entries (bench_rpc is both a
# google-benchmark suite and, via --json, the hot-path metrics reporter).
BENCHMARKS = {
    "rpc": {"kind": "google", "args": ["--benchmark_min_time=0.05"]},
    "rpc_hotpath": {"kind": "metrics", "binary": "bench_rpc", "args": []},
    "tracing": {"kind": "google", "args": ["--benchmark_min_time=0.05"]},
    "ult": {"kind": "metrics", "args": []},
    "batch": {"kind": "metrics", "args": []},
    "elastic": {"kind": "metrics", "args": []},
    "autoscale": {"kind": "metrics", "args": []},
    "workload": {"kind": "metrics", "args": []},
}

# Gated metrics: (bench, metric) -> spec.
#   For google benches the metric is "<benchmark name>:<field>".
#   higher_is_better decides the direction of the tolerance band.
#   tolerance T allows measured in [baseline/T, inf) for higher-is-better
#   and (0, baseline*T] for lower-is-better.
#   An optional "min" adds an absolute floor independent of the baseline.
GATES = {
    ("rpc", "BM_EchoRoundTrip/8:real_time"): {
        "higher_is_better": False, "tolerance": 3.0},
    # Zero-copy hot path (E11). The baseline was recorded at ~2.5x the
    # pre-optimization throughput on the same machine, so the deliberately
    # tight 1.3 band keeps the gate's floor near 2x the pre-optimization
    # level (E11's acceptance criterion) while absorbing single-core
    # scheduler noise (bench_gate runs RUN_SERIAL).
    ("rpc_hotpath", "small_echo_ops_s"): {
        "higher_is_better": True, "tolerance": 1.3},
    ("rpc_hotpath", "small_echo_p99_us"): {
        "higher_is_better": False, "tolerance": 3.0},
    # On a single-core host the SPSC ring and the generic inline delivery
    # time-share identically, so no speedup is expected here; the floor only
    # guards against the fast path regressing into a slowdown.
    ("rpc_hotpath", "fast_path_speedup"): {
        "higher_is_better": True, "tolerance": 3.0, "min": 0.75},
    ("rpc", "BM_BulkPull/1048576:bytes_per_second"): {
        "higher_is_better": True, "tolerance": 3.0},
    ("tracing", "BM_TracingOverhead/2/8:real_time"): {
        "higher_is_better": False, "tolerance": 3.0},
    ("ult", "ult_aware_ops_s_c16"): {
        "higher_is_better": True, "tolerance": 3.0},
    # The ULT ablation's point: ULT-aware blocking must beat thread-blocking
    # handlers by a wide margin at concurrency 16.
    ("ult", "ult_ratio_c16"): {
        "higher_is_better": True, "tolerance": 3.0, "min": 4.0},
    ("batch", "yokan_put_ops_s_batch_32"): {
        "higher_is_better": True, "tolerance": 3.0},
    # E10 acceptance criterion: batching 32 ops into one RPC must be at
    # least 3x faster than per-op round trips, on any machine.
    ("batch", "speedup_32"): {
        "higher_is_better": True, "tolerance": 3.0, "min": 3.0},
    # E12 acceptance criteria (layout-scale harness, 1M keys / 32 shards).
    # Steady-state routing is computed from the cached layout, so explicit
    # layout/directory RPCs per op must be exactly zero on any machine.
    ("elastic", "steady_layout_rpcs_per_op"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    # A split bisects one shard's hash range: moved_fraction * num_shards
    # is ~0.5 in expectation and must stay under the issue's bound of 2.
    ("elastic", "split_moved_fraction_x_shards"): {
        "higher_is_better": False, "tolerance": 3.0, "max": 2.0},
    # After the split, the stale client repairs itself from piggybacked
    # epoch hints: no key may be lost and no explicit refresh may happen.
    ("elastic", "post_split_missing_keys"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    ("elastic", "post_split_refreshes"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    # Throughput shape check only (machines vary).
    ("elastic", "steady_ops_s"): {
        "higher_is_better": True, "tolerance": 3.0},
    # E13 acceptance criteria (closed-loop autoscaling). The control loop
    # must converge within a bounded number of 50 ms control periods — the
    # harness itself caps at 60, so a miss reports -1 and trips the floor —
    # and the reconfigurations it issues must never surface a client error.
    ("autoscale", "convergence_periods"): {
        "higher_is_better": False, "tolerance": 1.6, "min": 1.0, "max": 55.0},
    ("autoscale", "client_errors"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    # The loop must actually act on the hot shard, not merely observe it
    # (how *many* splits it takes is timing-dependent, hence the wide band;
    # the floor of one split is the real invariant).
    ("autoscale", "splits"): {
        "higher_is_better": True, "tolerance": 8.0, "min": 1.0},
    # Tail-latency recovery: after convergence the batched-read p99 over the
    # formerly hot keys must not exceed the pre-split tail (ratio <= 1);
    # slack for scheduler noise on loaded CI machines.
    ("autoscale", "p99_recovery_ratio"): {
        "higher_is_better": False, "tolerance": 2.0, "max": 1.1},
    ("autoscale", "p99_after_us"): {
        "higher_is_better": False, "tolerance": 3.0},
    # E14 acceptance criteria (multi-tenant QoS under overload; see
    # docs/QOS.md and EXPERIMENTS.md). With the heavy tenant offered at 2x
    # its quota and 4:1 weights, the light tenant's p99 must stay within
    # 1.5x of its isolated baseline on any machine — the fairness invariant.
    ("workload", "light_p99_ratio"): {
        "higher_is_better": False, "tolerance": 2.0, "max": 1.5},
    # The heavy tenant must actually be throttled: the client must observe
    # Backpressure rejections AND the per-tenant shed counters scraped via
    # bedrock/get_metrics must corroborate them (floor of one each is the
    # invariant; the counts themselves are timing-dependent).
    ("workload", "heavy_backpressure"): {
        "higher_is_better": True, "tolerance": 8.0, "min": 1.0},
    ("workload", "heavy_shed_scraped"): {
        "higher_is_better": True, "tolerance": 8.0, "min": 1.0},
    # Overload must surface only as the retryable Backpressure code, and no
    # acknowledged key may be lost across the quota/migration race.
    ("workload", "non_retryable_errors"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    ("workload", "lost_ops"): {
        "higher_is_better": False, "tolerance": 1.0, "max": 0.0},
    # Throughput shape check only (machines vary).
    ("workload", "light_ops_s"): {
        "higher_is_better": True, "tolerance": 3.0},
}


def run_benchmark(name, spec, bin_dir, out_dir):
    """Run one benchmark, write BENCH_<name>.json, return the parsed doc."""
    binary = os.path.join(bin_dir, spec.get("binary", "bench_" + name))
    out_path = os.path.join(out_dir, "BENCH_%s.json" % name)
    if not os.path.exists(binary):
        print("bench_gate: missing binary %s" % binary)
        return None
    if spec["kind"] == "google":
        cmd = [binary, "--benchmark_out=" + out_path,
               "--benchmark_out_format=json"] + spec["args"]
    else:
        cmd = [binary, "--json", out_path] + spec["args"]
    print("bench_gate: running %s" % " ".join(cmd))
    sys.stdout.flush()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    sys.stdout.buffer.write(proc.stdout)
    sys.stdout.flush()
    if proc.returncode != 0:
        print("bench_gate: %s exited with %d" % (binary, proc.returncode))
        return None
    with open(out_path) as f:
        return json.load(f)


def extract(doc, kind, metric):
    """Pull one gated metric out of a raw benchmark document."""
    if kind == "metrics":
        return doc.get("metrics", {}).get(metric)
    bench_name, field = metric.rsplit(":", 1)
    for entry in doc.get("benchmarks", []):
        if entry.get("name") == bench_name:
            return entry.get(field)
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="build/bench",
                    help="directory holding the bench_* binaries")
    ap.add_argument("--baselines", default=None,
                    help="baseline directory (default: bench/baselines "
                         "next to this script's repo)")
    ap.add_argument("--out-dir", default=".",
                    help="where BENCH_*.json files are written")
    ap.add_argument("--update-baselines", action="store_true",
                    help="rewrite the baseline files from this run's "
                         "numbers instead of gating")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baselines_dir = args.baselines or os.path.join(repo_root, "bench", "baselines")
    os.makedirs(args.out_dir, exist_ok=True)

    # Run everything first so BENCH_*.json exist even when a gate fails.
    raw = {}
    failures = []
    for name, spec in BENCHMARKS.items():
        doc = run_benchmark(name, spec, args.bin_dir, args.out_dir)
        if doc is None:
            failures.append("benchmark %s did not produce results" % name)
        raw[name] = doc

    # Collect the gated metrics from the raw documents.
    measured = {}
    for (bench, metric), gate in GATES.items():
        doc = raw.get(bench)
        if doc is None:
            continue  # already recorded as a failure above
        value = extract(doc, BENCHMARKS[bench]["kind"], metric)
        if value is None:
            failures.append("metric %s missing from bench_%s output" % (metric, bench))
            continue
        measured[(bench, metric)] = float(value)

    if args.update_baselines:
        os.makedirs(baselines_dir, exist_ok=True)
        per_bench = {}
        for (bench, metric), value in measured.items():
            per_bench.setdefault(bench, {})[metric] = value
        for bench, metrics in sorted(per_bench.items()):
            path = os.path.join(baselines_dir, bench + ".json")
            with open(path, "w") as f:
                json.dump({"metrics": metrics}, f, indent=2, sort_keys=True)
                f.write("\n")
            print("bench_gate: wrote %s" % path)
        return 1 if failures else 0

    # Gate against the baselines.
    for (bench, metric), gate in sorted(GATES.items()):
        if (bench, metric) not in measured:
            continue
        value = measured[(bench, metric)]
        path = os.path.join(baselines_dir, bench + ".json")
        if not os.path.exists(path):
            failures.append("no baseline file %s (run with --update-baselines)" % path)
            continue
        with open(path) as f:
            base_doc = json.load(f)
        base = base_doc.get("metrics", {}).get(metric)
        if base is None:
            failures.append("baseline %s lacks metric %s" % (path, metric))
            continue
        tol = gate["tolerance"]
        if gate["higher_is_better"]:
            ok = value >= base / tol
            band = ">= %.4g (baseline %.4g / %.1f)" % (base / tol, base, tol)
        else:
            ok = value <= base * tol
            band = "<= %.4g (baseline %.4g * %.1f)" % (base * tol, base, tol)
        floor = gate.get("min")
        if floor is not None and value < floor:
            ok = False
            band += ", absolute floor %.4g" % floor
        ceiling = gate.get("max")
        if ceiling is not None and value > ceiling:
            ok = False
            band += ", absolute ceiling %.4g" % ceiling
        status = "ok " if ok else "FAIL"
        print("bench_gate: [%s] %s/%s = %.4g  (%s)" % (status, bench, metric, value, band))
        if not ok:
            failures.append("%s/%s measured %.4g vs baseline %.4g, allowed %s"
                            % (bench, metric, value, base, band))

    if failures:
        print("bench_gate: FAILED")
        for f in failures:
            print("  - " + f)
        return 1
    print("bench_gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
