#!/usr/bin/env python3
"""Documentation consistency checks, run by .github/workflows/docs.yml.

1. Every intra-repo markdown link in tracked *.md files resolves to an
   existing file (external http(s)/mailto links and pure anchors are
   skipped; an optional #fragment is stripped before checking).
2. docs/ARCHITECTURE.md mentions every component directory under src/
   (a directory guide that silently omits a component goes stale first).
3. Every metric family and error-code name docs/QOS.md commits to in
   backticks (tenant_*_total counters, the Backpressure code, ...) exists
   verbatim in the source tree — placeholder segments like `<id>` are
   split out and the literal fragments around them are grepped for, so
   renaming a counter in src/ without updating the QoS contract fails CI.

Exits non-zero listing every violation.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — good enough for the hand-written markdown in this repo;
# skips fenced code blocks so JSON/C++ snippets can't produce false links.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def tracked_markdown():
    # -c -o --exclude-standard: tracked plus new-but-not-ignored files, so
    # a doc added in the same change is checked before it is ever staged.
    out = subprocess.run(
        ["git", "ls-files", "-c", "-o", "--exclude-standard", "*.md"],
        cwd=REPO, check=True, capture_output=True, text=True,
    ).stdout
    # Skip index entries whose file is gone (staged deletions).
    return [REPO / line for line in out.splitlines()
            if line and (REPO / line).exists()]


def iter_links(path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_links(md_files):
    errors = []
    for path in md_files:
        for lineno, target in iter_links(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                rel = path.relative_to(REPO)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def check_architecture_mentions_every_component():
    doc = REPO / "docs" / "ARCHITECTURE.md"
    if not doc.exists():
        return ["docs/ARCHITECTURE.md is missing"]
    text = doc.read_text()
    errors = []
    for entry in sorted((REPO / "src").iterdir()):
        if not entry.is_dir():
            continue
        if f"src/{entry.name}/" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: no mention of src/{entry.name}/")
    return errors


# Backticked names in QOS.md that must exist in src/: metric families
# (snake_case ending in a unit or _total) and error-code identifiers.
QOS_METRIC_RE = re.compile(r"`(tenant_[A-Za-z0-9_<>]*_total)`")
QOS_ERROR_RE = re.compile(r"`(Backpressure|backpressure)`")


def check_qos_names_exist_in_source():
    doc = REPO / "docs" / "QOS.md"
    if not doc.exists():
        return ["docs/QOS.md is missing"]
    text = doc.read_text()

    names = set(QOS_METRIC_RE.findall(text)) | set(QOS_ERROR_RE.findall(text))
    if not names:
        return ["docs/QOS.md: no backticked metric/error names found "
                "(the QoS contract must name its observables)"]

    sources = []
    for pattern in ("*.cpp", "*.hpp"):
        sources.extend((REPO / "src").rglob(pattern))
    blob = "\n".join(p.read_text() for p in sources)

    errors = []
    for name in sorted(names):
        # `tenant_<id>_ops_total` documents a family: every literal
        # fragment around the <...> placeholders must appear in source
        # (the code builds the name by concatenating those fragments).
        fragments = [f for f in re.split(r"<[^>]*>", name) if f]
        missing = [f for f in fragments if f not in blob]
        if missing:
            errors.append(
                f"docs/QOS.md: `{name}` not found in src/ "
                f"(missing fragment(s): {', '.join(missing)})")
    return errors


def main():
    errors = check_links(tracked_markdown())
    errors += check_architecture_mentions_every_component()
    errors += check_qos_names_exist_in_source()
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
