// HEPnOS-style dynamic workflow (the paper's §1 motivation): the NOvA
// workflow "presents steps with vastly different I/O patterns", and "the
// best configuration of the service for one step of the workflow is not
// necessarily the best for other steps". Instead of a static compromise,
// this example reconfigures the running service between steps — no restart,
// no downtime — using Bedrock's online reconfiguration (§5).
//
// Step 1 (ingestion): many concurrent bulk writers -> give the Yokan
//   provider several execution streams.
// Step 2 (analysis): latency-sensitive small reads -> shrink back to one ES
//   so the node's cores can go to the analysis itself, and keep serving.
//
//   $ ./examples/hepnos_workflow
#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "remi/provider.hpp"
#include "yokan/provider.hpp"

#include <chrono>
#include <cstdio>

using namespace mochi;
using Clock = std::chrono::steady_clock;

namespace {

double run_step(const margo::InstancePtr& client, const char* step, bool writes,
                int n_ults, int ops_per_ult) {
    auto rt = client->runtime();
    std::atomic<std::uint64_t> completed{0};
    auto t0 = Clock::now();
    std::vector<abt::ThreadHandle> handles;
    for (int u = 0; u < n_ults; ++u) {
        handles.push_back(rt->post_thread(rt->primary_pool(), [&, u] {
            yokan::Database db{client, "sim://hepnos", 42};
            for (int i = 0; i < ops_per_ult; ++i) {
                std::string key = "event/" + std::to_string(u) + "/" + std::to_string(i);
                if (writes) {
                    if (db.put(key, std::string(256, 'e')).ok()) ++completed;
                } else {
                    if (db.get(key).has_value()) ++completed;
                }
            }
        }));
    }
    for (auto& h : handles) h.join();
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    double rate = static_cast<double>(completed.load()) / secs;
    std::printf("  %-28s %8llu ops in %6.3f s -> %9.0f ops/s\n", step,
                static_cast<unsigned long long>(completed.load()), secs, rate);
    return rate;
}

} // namespace

int main() {
    yokan::register_module();
    remi::register_module();
    auto fabric = mercury::Fabric::create();

    // Initial (ingestion-oriented) configuration: a dedicated pool for the
    // HEPnOS database, served by one ES to start with.
    auto config = json::Value::parse(R"({
      "margo": {
        "argobots": {
          "pools": [{"name": "__primary__", "type": "fifo_wait"},
                     {"name": "db_pool", "type": "fifo_wait"}],
          "xstreams": [{"name": "__primary__", "scheduler": {"pools": ["__primary__"]}},
                        {"name": "db_es0", "scheduler": {"pools": ["db_pool"]}}]
        }
      },
      "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
      "providers": [
        {"name": "remi", "type": "remi", "provider_id": 1},
        {"name": "hepnos_db", "type": "yokan", "provider_id": 42,
         "pool": "db_pool", "config": {"name": "events", "backend": "map"},
         "dependencies": {"remi": "remi"}}
      ]
    })").value();
    auto server = bedrock::Process::spawn(fabric, "sim://hepnos", config).value();

    auto client_cfg = json::Value::parse(R"({
      "argobots": {"pools": [{"name": "p", "type": "fifo_wait"}],
                    "xstreams": [{"name": "x0", "scheduler": {"pools": ["p"]}},
                                  {"name": "x1", "scheduler": {"pools": ["p"]}}]}
    })").value();
    auto client = margo::Instance::create(fabric, "sim://workflow", client_cfg).value();
    bedrock::Client bc{client};
    auto handle = bc.makeServiceHandle("sim://hepnos");

    std::printf("== step 1: ingestion with the baseline configuration (1 ES)\n");
    run_step(client, "write (1 ES)", /*writes=*/true, 8, 200);

    std::printf("== online reconfiguration: add 3 execution streams to db_pool (§5)\n");
    auto t0 = Clock::now();
    for (int i = 1; i <= 3; ++i) {
        auto es = json::Value::object();
        es["name"] = "db_es" + std::to_string(i);
        es["scheduler"]["pools"].push_back("db_pool");
        auto st = handle.addXstream(es);
        if (!st.ok()) {
            std::fprintf(stderr, "addXstream failed: %s\n", st.error().message.c_str());
            return 1;
        }
    }
    std::printf("   reconfigured in %.1f us, service never stopped\n",
                std::chrono::duration<double, std::micro>(Clock::now() - t0).count());

    std::printf("== step 1 (rerun): ingestion with 4 ES\n");
    run_step(client, "write (4 ES)", /*writes=*/true, 8, 200);

    std::printf("== step 2: analysis phase wants the cores back; shrink to 1 ES\n");
    t0 = Clock::now();
    for (int i = 1; i <= 3; ++i)
        (void)handle.removeXstream("db_es" + std::to_string(i));
    std::printf("   reconfigured in %.1f us\n",
                std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
    run_step(client, "read (1 ES)", /*writes=*/false, 4, 200);

    // The monitoring data that would drive these decisions automatically
    // (§4): per-RPC ULT durations and queue delays, per provider.
    auto stats = server->margo_instance()->monitoring_json();
    std::uint64_t put_id = margo::rpc_name_to_id("yokan/put");
    std::string key = "65535:65535:" + std::to_string(put_id) + ":42";
    if (stats["rpcs"].contains(key)) {
        const auto& ult = stats["rpcs"][key]["target"]["received from sim://workflow"]["ult"];
        std::printf("== monitoring: yokan/put handled %lld times, avg queue delay %.1f us, "
                    "avg handler %.1f us\n",
                    static_cast<long long>(ult["queue_delay"]["num"].as_integer()),
                    ult["queue_delay"]["avg"].as_real(), ult["duration"]["avg"].as_real());
    }

    client->shutdown();
    server->shutdown();
    std::printf("== done\n");
    return 0;
}
