// Dataset service with in-situ analysis scripts (§3.2's composition
// example, in the spirit of Colza/Poesie): a "dataset" component M stores
// dataset metadata in Yokan and bytes in Warabi, and executes analysis
// scripts next to the data through a Poesie dependency — the whole service
// assembled from a single Bedrock configuration across two processes.
//
//   $ ./examples/dataset_analysis
#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "composed/dataset.hpp"
#include "remi/provider.hpp"

#include <cstdio>

using namespace mochi;
using namespace mochi::composed;

int main() {
    yokan::register_module();
    warabi::register_module();
    poesie::register_module();
    register_dataset_module();
    auto fabric = mercury::Fabric::create();

    // Storage node: metadata + blobs.
    auto storage = bedrock::Process::spawn(fabric, "sim://storage", *json::Value::parse(R"({
      "libraries": {"yokan": "libyokan.so", "warabi": "libwarabi.so"},
      "providers": [
        {"name": "meta", "type": "yokan", "provider_id": 1,
         "config": {"name": "dataset_metadata"}},
        {"name": "blobs", "type": "warabi", "provider_id": 2}
      ]
    })")).value();

    // Front node: the dataset component + the interpreter, with
    // cross-process dependencies on the storage node.
    auto front = bedrock::Process::spawn(fabric, "sim://front", *json::Value::parse(R"({
      "libraries": {"poesie": "libpoesie.so", "dataset": "libdataset.so"},
      "providers": [
        {"name": "scripting", "type": "poesie", "provider_id": 3},
        {"name": "datasets", "type": "dataset", "provider_id": 10,
         "dependencies": {"meta": "yokan:1@sim://storage",
                           "data": "warabi:2@sim://storage",
                           "script": "scripting"}}
      ]
    })")).value();

    auto app = margo::Instance::create(fabric, "sim://app").value();
    DatasetHandle ds{app, "sim://front", 10};

    std::printf("== ingesting simulation outputs\n");
    ds.create("step0/energies", "10 12 9 14 11 13 8 15");
    ds.create("step0/labels", "a b c d e f g h");
    ds.create("step1/energies", "20 22 19 24 21 23 18 25");
    auto names = ds.list();
    std::printf("   datasets:");
    for (const auto& n : *names) std::printf(" %s", n.c_str());
    std::printf("\n");

    std::printf("== running analysis scripts next to the data (Poesie)\n");
    // Scripts receive $dataset (the content) and $name; this one parses the
    // space-separated values and computes simple statistics.
    const char* stats_script = R"(
        $values = [];
        $current = "";
        $i = 0;
        while ($i <= count($dataset)) {
            $c = "";
            if ($i < count($dataset)) { $c = $dataset[$i]; }
            if ($c == " " || $i == count($dataset)) {
                if ($current != "") { array_push($values, int($current)); }
                $current = "";
            } else {
                $current = $current + $c;
            }
            $i = $i + 1;
        }
        $sum = 0;
        $mx = $values[0];
        $mn = $values[0];
        foreach ($values as $v) {
            $sum = $sum + $v;
            $mx = max($mx, $v);
            $mn = min($mn, $v);
        }
        return {"name" => $name, "count" => count($values),
                 "sum" => $sum, "min" => $mn, "max" => $mx};
    )";
    for (const char* name : {"step0/energies", "step1/energies"}) {
        auto r = ds.run_script(name, stats_script);
        if (!r) {
            std::fprintf(stderr, "script failed: %s\n", r.error().message.c_str());
            return 1;
        }
        std::printf("   %-18s count=%lld sum=%lld min=%lld max=%lld\n",
                    (*r)["name"].as_string().c_str(),
                    static_cast<long long>((*r)["count"].as_integer()),
                    static_cast<long long>((*r)["sum"].as_integer()),
                    static_cast<long long>((*r)["min"].as_integer()),
                    static_cast<long long>((*r)["max"].as_integer()));
    }

    std::printf("== the full service composition, from the live config (Jx9):\n");
    bedrock::Client bc{app};
    auto deps = bc.makeServiceHandle("sim://front").queryConfig(R"(
        $out = [];
        foreach ($__config__.providers as $p) {
            if (contains($p, "resolved_dependencies")) {
                foreach ($p.resolved_dependencies as $d) {
                    array_push($out, $p.name + " -> " + $d);
                }
            }
        }
        return $out;
    )");
    for (const auto& edge : deps->as_array()) std::printf("   %s\n", edge.as_string().c_str());

    app->shutdown();
    front->shutdown();
    storage->shutdown();
    std::printf("== done\n");
    return 0;
}
