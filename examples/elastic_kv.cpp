// Elastic sharded key-value service (§6 end-to-end): a workload grows, the
// service scales from 2 to 4 nodes while running — Pufferscale plans the
// shard moves from Margo-monitoring load, Bedrock + REMI migrate the shard
// providers, SSG tracks the membership — and then shrinks back to 2 nodes.
//
//   $ ./examples/elastic_kv
#include "composed/elastic_kv.hpp"

#include <cstdio>

using namespace mochi;
using namespace mochi::composed;

namespace {

void show_layout(ElasticKvService& kv, const char* label) {
    auto layout = kv.layout();
    std::map<std::string, int> per_node;
    for (const auto& s : layout.shards()) ++per_node[s.node];
    std::printf("  %-22s layout epoch %llu:", label,
                static_cast<unsigned long long>(layout.epoch()));
    for (const auto& [node, count] : per_node)
        std::printf("  %s=%d shards", node.c_str(), count);
    std::printf("\n");
}

void show_balance(ElasticKvService& kv) {
    auto resources = kv.shard_resources();
    auto metrics = pufferscale::evaluate(resources, kv.nodes(), {});
    std::printf("  balance: load imbalance %.3f, data imbalance %.3f\n",
                metrics.load_imbalance, metrics.data_imbalance);
}

} // namespace

int main() {
    Cluster cluster;
    ElasticKvConfig cfg;
    cfg.num_shards = 16;
    cfg.enable_swim = true;
    auto svc = ElasticKvService::create(cluster, {"sim://node0", "sim://node1"}, cfg);
    if (!svc) {
        std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
        return 1;
    }
    auto& kv = **svc;
    std::printf("== deployed elastic KV over 2 nodes, %zu shards\n", kv.num_shards());
    show_layout(kv, "initial");

    std::printf("== phase 1: ingest 2000 key-value pairs\n");
    for (int i = 0; i < 2000; ++i) {
        auto st = kv.put("key/" + std::to_string(i), std::string(128, 'x'));
        if (!st.ok()) {
            std::fprintf(stderr, "put failed: %s\n", st.error().message.c_str());
            return 1;
        }
    }
    show_balance(kv);

    std::printf("== phase 2: demand grows -> scale up to 4 nodes (§6)\n");
    if (auto st = kv.scale_up("sim://node2"); !st.ok()) {
        std::fprintf(stderr, "scale_up: %s\n", st.error().message.c_str());
        return 1;
    }
    (void)kv.scale_up("sim://node3");
    show_layout(kv, "after scale-up");
    show_balance(kv);

    // Verify every key survived the shard migrations.
    int missing = 0;
    for (int i = 0; i < 2000; ++i)
        if (!kv.get("key/" + std::to_string(i)).has_value()) ++missing;
    std::printf("  data integrity after migration: %d/2000 keys missing\n", missing);

    std::printf("== phase 3: burst is over -> scale back down to 2 nodes\n");
    (void)kv.scale_down("sim://node2");
    (void)kv.scale_down("sim://node3");
    show_layout(kv, "after scale-down");
    show_balance(kv);
    missing = 0;
    for (int i = 0; i < 2000; ++i)
        if (!kv.get("key/" + std::to_string(i)).has_value()) ++missing;
    std::printf("  data integrity after drain: %d/2000 keys missing\n", missing);

    std::printf("== membership digest (Colza-style view hash): %016llx\n",
                static_cast<unsigned long long>(kv.group_digest()));
    std::printf("== done\n");
    return missing == 0 ? 0 : 1;
}
