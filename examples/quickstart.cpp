// Quickstart: bootstrap a Mochi service from a Listing-3-style Bedrock
// configuration, talk to its Yokan provider, reconfigure it online
// (Listing 5), query it with Jx9 (Listing 4) and inspect the Margo
// monitoring statistics (Listing 1).
//
//   $ ./examples/quickstart
#include "bedrock/client.hpp"
#include "bedrock/process.hpp"
#include "remi/provider.hpp"
#include "yokan/provider.hpp"

#include <cstdio>

using namespace mochi;

int main() {
    // Components register their Bedrock modules ("shared libraries").
    yokan::register_module();
    remi::register_module();

    // One simulated network; one service process bootstrapped from JSON.
    auto fabric = mercury::Fabric::create();
    auto config = json::Value::parse(R"({
      "margo": {
        "argobots": {
          "pools": [
            {"name": "__primary__", "type": "fifo_wait", "access": "mpmc"},
            {"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"}
          ],
          "xstreams": [
            {"name": "__primary__", "scheduler": {"type": "basic_wait", "pools": ["__primary__"]}},
            {"name": "MyES0", "scheduler": {"type": "basic", "pools": ["MyPoolX"]}}
          ]
        }
      },
      "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
      "providers": [
        {"name": "remi", "type": "remi", "provider_id": 1},
        {"name": "myDatabase", "type": "yokan", "provider_id": 42,
         "pool": "MyPoolX",
         "config": {"name": "quickstart_db", "backend": "map"},
         "dependencies": {"remi": "remi"}}
      ]
    })").value();

    auto server = bedrock::Process::spawn(fabric, "sim://server", config);
    if (!server) {
        std::fprintf(stderr, "bootstrap failed: %s\n", server.error().message.c_str());
        return 1;
    }
    std::printf("== bootstrapped %s with providers:", (*server)->address().c_str());
    for (const auto& name : (*server)->provider_names()) std::printf(" %s", name.c_str());
    std::printf("\n");

    // A client process with its own Margo runtime.
    auto client = margo::Instance::create(fabric, "sim://client").value();

    // Use the Yokan database through its resource handle (Figure 1).
    yokan::Database db{client, "sim://server", 42};
    db.put("mochi", "dynamic");
    db.put("margo", "runtime");
    db.put("bedrock", "bootstrap");
    std::printf("== db contains %llu keys; mochi -> %s\n",
                static_cast<unsigned long long>(db.count().value()),
                db.get("mochi")->c_str());

    // Online reconfiguration through Bedrock's client API (Listing 5).
    bedrock::Client bc{client};
    auto p = bc.makeServiceHandle("sim://server");
    p.addPool(json::Value::parse(R"({"name": "ExtraPool", "type": "fifo_wait"})").value());
    p.addXstream(
        json::Value::parse(R"({"name": "ExtraES", "scheduler": {"pools": ["ExtraPool"]}})")
            .value());
    std::printf("== added ExtraPool + ExtraES at run time\n");

    // Query the live configuration with Jx9 (Listing 4, verbatim).
    auto names = p.queryConfig(R"(
        $result = [];
        foreach ($__config__.providers as $p) {
            array_push($result, $p.name); }
        return $result;
    )");
    std::printf("== jx9 provider query: %s\n", names->dump().c_str());
    auto pools = p.queryConfig(R"(
        $out = [];
        foreach ($__config__.margo.argobots.pools as $pl) { array_push($out, $pl.name); }
        return $out;
    )");
    std::printf("== jx9 pool query: %s\n", pools->dump().c_str());

    // Monitoring statistics (Listing 1): available at run time, at no
    // engineering cost to the Yokan component.
    auto stats = (*server)->margo_instance()->monitoring_json();
    std::printf("== server monitoring statistics (Listing 1 shape):\n%s\n",
                stats.dump(2).c_str());

    client->shutdown();
    (*server)->shutdown();
    std::printf("== done\n");
    return 0;
}
