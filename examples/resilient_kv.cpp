// Resilient key-value services (§7): both designs the paper describes.
//
// Part 1 — bottom-up: §2.3's design example, a Yokan store replicated with
//   Mochi-RAFT. The Yokan backends are unaware of the replication; the RAFT
//   log is unaware it carries key-value pairs. We crash the leader and show
//   that data survives and service continues after a bounded failover.
//
// Part 2 — top-down: the elastic sharded KV with SWIM failure detection and
//   a controller that re-provisions the dead node's shards from PFS
//   checkpoints onto survivors.
//
//   $ ./examples/resilient_kv
#include "composed/elastic_kv.hpp"
#include "composed/replicated_kv.hpp"

#include <cstdio>
#include <thread>

using namespace mochi;
using namespace mochi::composed;
using namespace std::chrono_literals;

int main() {
    std::printf("== part 1: bottom-up resilience (Yokan x Mochi-RAFT)\n");
    {
        auto fabric = mercury::Fabric::create();
        std::vector<std::string> addrs = {"sim://r0", "sim://r1", "sim://r2"};
        for (const auto& a : addrs) remi::SimFileStore::destroy_node(a);
        raft::RaftConfig rcfg;
        rcfg.election_timeout_min = std::chrono::milliseconds(100);
        rcfg.election_timeout_max = std::chrono::milliseconds(200);
        rcfg.heartbeat_period = std::chrono::milliseconds(30);
        std::vector<KvReplica> replicas;
        for (const auto& a : addrs)
            replicas.push_back(KvReplica::create(fabric, a, addrs, 7, rcfg).value());
        auto cm = margo::Instance::create(fabric, "sim://app").value();
        ReplicatedKvClient kv{cm, addrs, 7};

        for (int i = 0; i < 50; ++i)
            (void)kv.put("run/" + std::to_string(i), "spill-" + std::to_string(i));
        std::printf("   wrote 50 pairs through the RAFT log\n");

        int leader = -1;
        for (std::size_t i = 0; i < replicas.size(); ++i)
            if (replicas[i].raft->role() == raft::Role::Leader) leader = static_cast<int>(i);
        std::printf("   leader is %s; crashing it now\n", addrs[leader].c_str());
        auto t0 = std::chrono::steady_clock::now();
        replicas[leader].shutdown();

        auto v = kv.get("run/17"); // retried by the client until failover completes
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        std::printf("   first read after crash: %s (served %.0f ms after the crash)\n",
                    v ? v->c_str() : v.error().message.c_str(), ms);
        (void)kv.put("after/crash", "still-writable");
        std::printf("   writes accepted by the new leader: %s\n",
                    kv.get("after/crash") ? "yes" : "no");
        cm->shutdown();
        for (auto& r : replicas) r.shutdown();
    }

    std::printf("== part 2: top-down resilience (SWIM + controller + checkpoints)\n");
    {
        Cluster cluster;
        ElasticKvConfig cfg;
        cfg.num_shards = 8;
        cfg.enable_resilience = true;
        cfg.swim_period = std::chrono::milliseconds(50);
        auto svc = ElasticKvService::create(
            cluster, {"sim://s0", "sim://s1", "sim://s2"}, cfg);
        if (!svc) {
            std::fprintf(stderr, "deploy failed: %s\n", svc.error().message.c_str());
            return 1;
        }
        auto& kv = **svc;
        for (int i = 0; i < 400; ++i)
            (void)kv.put("obj/" + std::to_string(i), std::string(64, 'o'));
        (void)kv.checkpoint_all();
        std::printf("   400 pairs written, all shards checkpointed to the PFS\n");

        std::printf("   hard-crashing sim://s1 (no goodbye message)\n");
        auto t0 = std::chrono::steady_clock::now();
        (void)cluster.crash_node("sim://s1");
        while (kv.recoveries() == 0 &&
               std::chrono::steady_clock::now() - t0 < std::chrono::seconds(15))
            std::this_thread::sleep_for(20ms);
        double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        std::printf("   SWIM detected the death and the controller re-provisioned %zu "
                    "shards in %.0f ms\n",
                    kv.recoveries(), ms);
        int readable = 0;
        for (int i = 0; i < 400; ++i)
            if (kv.get("obj/" + std::to_string(i)).has_value()) ++readable;
        std::printf("   data readable after recovery: %d/400\n", readable);
    }
    std::printf("== done\n");
    return 0;
}
