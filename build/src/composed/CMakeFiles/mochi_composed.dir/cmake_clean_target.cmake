file(REMOVE_RECURSE
  "libmochi_composed.a"
)
