# Empty compiler generated dependencies file for mochi_composed.
# This may be replaced when dependencies are built.
