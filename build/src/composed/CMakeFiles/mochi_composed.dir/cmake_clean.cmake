file(REMOVE_RECURSE
  "CMakeFiles/mochi_composed.dir/autoscaler.cpp.o"
  "CMakeFiles/mochi_composed.dir/autoscaler.cpp.o.d"
  "CMakeFiles/mochi_composed.dir/consistent_view.cpp.o"
  "CMakeFiles/mochi_composed.dir/consistent_view.cpp.o.d"
  "CMakeFiles/mochi_composed.dir/dataset.cpp.o"
  "CMakeFiles/mochi_composed.dir/dataset.cpp.o.d"
  "CMakeFiles/mochi_composed.dir/elastic_kv.cpp.o"
  "CMakeFiles/mochi_composed.dir/elastic_kv.cpp.o.d"
  "CMakeFiles/mochi_composed.dir/replicated_kv.cpp.o"
  "CMakeFiles/mochi_composed.dir/replicated_kv.cpp.o.d"
  "libmochi_composed.a"
  "libmochi_composed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_composed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
