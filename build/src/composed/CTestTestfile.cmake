# CMake generated Testfile for 
# Source directory: /root/repo/src/composed
# Build directory: /root/repo/build/src/composed
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
