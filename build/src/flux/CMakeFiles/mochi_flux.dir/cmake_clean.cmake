file(REMOVE_RECURSE
  "CMakeFiles/mochi_flux.dir/resource_manager.cpp.o"
  "CMakeFiles/mochi_flux.dir/resource_manager.cpp.o.d"
  "libmochi_flux.a"
  "libmochi_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
