file(REMOVE_RECURSE
  "libmochi_flux.a"
)
