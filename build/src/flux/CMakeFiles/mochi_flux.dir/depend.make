# Empty dependencies file for mochi_flux.
# This may be replaced when dependencies are built.
