file(REMOVE_RECURSE
  "CMakeFiles/mochi_poesie.dir/provider.cpp.o"
  "CMakeFiles/mochi_poesie.dir/provider.cpp.o.d"
  "libmochi_poesie.a"
  "libmochi_poesie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_poesie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
