file(REMOVE_RECURSE
  "libmochi_poesie.a"
)
