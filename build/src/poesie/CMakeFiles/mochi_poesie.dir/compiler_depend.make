# Empty compiler generated dependencies file for mochi_poesie.
# This may be replaced when dependencies are built.
