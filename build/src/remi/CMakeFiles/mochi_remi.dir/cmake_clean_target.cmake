file(REMOVE_RECURSE
  "libmochi_remi.a"
)
