# Empty compiler generated dependencies file for mochi_remi.
# This may be replaced when dependencies are built.
