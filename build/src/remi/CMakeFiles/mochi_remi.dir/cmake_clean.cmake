file(REMOVE_RECURSE
  "CMakeFiles/mochi_remi.dir/provider.cpp.o"
  "CMakeFiles/mochi_remi.dir/provider.cpp.o.d"
  "CMakeFiles/mochi_remi.dir/sim_file_store.cpp.o"
  "CMakeFiles/mochi_remi.dir/sim_file_store.cpp.o.d"
  "libmochi_remi.a"
  "libmochi_remi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_remi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
