file(REMOVE_RECURSE
  "libmochi_raft.a"
)
