file(REMOVE_RECURSE
  "CMakeFiles/mochi_raft.dir/raft.cpp.o"
  "CMakeFiles/mochi_raft.dir/raft.cpp.o.d"
  "libmochi_raft.a"
  "libmochi_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
