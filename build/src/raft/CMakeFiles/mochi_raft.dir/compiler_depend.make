# Empty compiler generated dependencies file for mochi_raft.
# This may be replaced when dependencies are built.
