file(REMOVE_RECURSE
  "libmochi_ssg.a"
)
