file(REMOVE_RECURSE
  "CMakeFiles/mochi_ssg.dir/group.cpp.o"
  "CMakeFiles/mochi_ssg.dir/group.cpp.o.d"
  "libmochi_ssg.a"
  "libmochi_ssg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_ssg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
