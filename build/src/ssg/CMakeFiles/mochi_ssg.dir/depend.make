# Empty dependencies file for mochi_ssg.
# This may be replaced when dependencies are built.
