file(REMOVE_RECURSE
  "CMakeFiles/mochi_pufferscale.dir/rebalancer.cpp.o"
  "CMakeFiles/mochi_pufferscale.dir/rebalancer.cpp.o.d"
  "libmochi_pufferscale.a"
  "libmochi_pufferscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_pufferscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
