# Empty compiler generated dependencies file for mochi_pufferscale.
# This may be replaced when dependencies are built.
