file(REMOVE_RECURSE
  "libmochi_pufferscale.a"
)
