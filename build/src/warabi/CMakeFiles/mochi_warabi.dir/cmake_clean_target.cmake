file(REMOVE_RECURSE
  "libmochi_warabi.a"
)
