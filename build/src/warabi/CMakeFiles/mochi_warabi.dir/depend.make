# Empty dependencies file for mochi_warabi.
# This may be replaced when dependencies are built.
