file(REMOVE_RECURSE
  "CMakeFiles/mochi_warabi.dir/provider.cpp.o"
  "CMakeFiles/mochi_warabi.dir/provider.cpp.o.d"
  "libmochi_warabi.a"
  "libmochi_warabi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_warabi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
