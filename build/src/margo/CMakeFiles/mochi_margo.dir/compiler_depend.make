# Empty compiler generated dependencies file for mochi_margo.
# This may be replaced when dependencies are built.
