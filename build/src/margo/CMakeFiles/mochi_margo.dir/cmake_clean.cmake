file(REMOVE_RECURSE
  "CMakeFiles/mochi_margo.dir/instance.cpp.o"
  "CMakeFiles/mochi_margo.dir/instance.cpp.o.d"
  "CMakeFiles/mochi_margo.dir/monitoring.cpp.o"
  "CMakeFiles/mochi_margo.dir/monitoring.cpp.o.d"
  "libmochi_margo.a"
  "libmochi_margo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_margo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
