file(REMOVE_RECURSE
  "libmochi_margo.a"
)
