
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/margo/instance.cpp" "src/margo/CMakeFiles/mochi_margo.dir/instance.cpp.o" "gcc" "src/margo/CMakeFiles/mochi_margo.dir/instance.cpp.o.d"
  "/root/repo/src/margo/monitoring.cpp" "src/margo/CMakeFiles/mochi_margo.dir/monitoring.cpp.o" "gcc" "src/margo/CMakeFiles/mochi_margo.dir/monitoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mochi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/mochi_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/mercury/CMakeFiles/mochi_mercury.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
