file(REMOVE_RECURSE
  "CMakeFiles/mochi_mercury.dir/fabric.cpp.o"
  "CMakeFiles/mochi_mercury.dir/fabric.cpp.o.d"
  "libmochi_mercury.a"
  "libmochi_mercury.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_mercury.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
