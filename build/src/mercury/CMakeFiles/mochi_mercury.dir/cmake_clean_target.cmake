file(REMOVE_RECURSE
  "libmochi_mercury.a"
)
