# Empty dependencies file for mochi_mercury.
# This may be replaced when dependencies are built.
