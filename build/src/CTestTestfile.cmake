# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("abt")
subdirs("mercury")
subdirs("margo")
subdirs("bedrock")
subdirs("poesie")
subdirs("yokan")
subdirs("warabi")
subdirs("remi")
subdirs("ssg")
subdirs("raft")
subdirs("pufferscale")
subdirs("flux")
subdirs("composed")
