# Empty compiler generated dependencies file for mochi_common.
# This may be replaced when dependencies are built.
