file(REMOVE_RECURSE
  "libmochi_common.a"
)
