file(REMOVE_RECURSE
  "CMakeFiles/mochi_common.dir/json.cpp.o"
  "CMakeFiles/mochi_common.dir/json.cpp.o.d"
  "CMakeFiles/mochi_common.dir/logging.cpp.o"
  "CMakeFiles/mochi_common.dir/logging.cpp.o.d"
  "libmochi_common.a"
  "libmochi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
