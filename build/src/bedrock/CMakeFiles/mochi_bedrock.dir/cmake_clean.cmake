file(REMOVE_RECURSE
  "CMakeFiles/mochi_bedrock.dir/client.cpp.o"
  "CMakeFiles/mochi_bedrock.dir/client.cpp.o.d"
  "CMakeFiles/mochi_bedrock.dir/component.cpp.o"
  "CMakeFiles/mochi_bedrock.dir/component.cpp.o.d"
  "CMakeFiles/mochi_bedrock.dir/jx9.cpp.o"
  "CMakeFiles/mochi_bedrock.dir/jx9.cpp.o.d"
  "CMakeFiles/mochi_bedrock.dir/process.cpp.o"
  "CMakeFiles/mochi_bedrock.dir/process.cpp.o.d"
  "libmochi_bedrock.a"
  "libmochi_bedrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_bedrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
