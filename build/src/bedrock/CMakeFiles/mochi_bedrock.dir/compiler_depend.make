# Empty compiler generated dependencies file for mochi_bedrock.
# This may be replaced when dependencies are built.
