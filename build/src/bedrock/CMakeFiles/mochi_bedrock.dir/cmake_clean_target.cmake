file(REMOVE_RECURSE
  "libmochi_bedrock.a"
)
