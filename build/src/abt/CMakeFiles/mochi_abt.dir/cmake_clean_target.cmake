file(REMOVE_RECURSE
  "libmochi_abt.a"
)
