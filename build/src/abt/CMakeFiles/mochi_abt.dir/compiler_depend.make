# Empty compiler generated dependencies file for mochi_abt.
# This may be replaced when dependencies are built.
