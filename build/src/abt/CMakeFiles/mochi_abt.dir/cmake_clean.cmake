file(REMOVE_RECURSE
  "CMakeFiles/mochi_abt.dir/pool.cpp.o"
  "CMakeFiles/mochi_abt.dir/pool.cpp.o.d"
  "CMakeFiles/mochi_abt.dir/runtime.cpp.o"
  "CMakeFiles/mochi_abt.dir/runtime.cpp.o.d"
  "CMakeFiles/mochi_abt.dir/sync.cpp.o"
  "CMakeFiles/mochi_abt.dir/sync.cpp.o.d"
  "CMakeFiles/mochi_abt.dir/timer.cpp.o"
  "CMakeFiles/mochi_abt.dir/timer.cpp.o.d"
  "libmochi_abt.a"
  "libmochi_abt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_abt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
