file(REMOVE_RECURSE
  "CMakeFiles/mochi_yokan.dir/backend.cpp.o"
  "CMakeFiles/mochi_yokan.dir/backend.cpp.o.d"
  "CMakeFiles/mochi_yokan.dir/provider.cpp.o"
  "CMakeFiles/mochi_yokan.dir/provider.cpp.o.d"
  "libmochi_yokan.a"
  "libmochi_yokan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mochi_yokan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
