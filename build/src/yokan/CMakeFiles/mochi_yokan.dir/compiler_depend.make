# Empty compiler generated dependencies file for mochi_yokan.
# This may be replaced when dependencies are built.
