file(REMOVE_RECURSE
  "libmochi_yokan.a"
)
