file(REMOVE_RECURSE
  "CMakeFiles/elastic_kv.dir/elastic_kv.cpp.o"
  "CMakeFiles/elastic_kv.dir/elastic_kv.cpp.o.d"
  "elastic_kv"
  "elastic_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
