# Empty dependencies file for elastic_kv.
# This may be replaced when dependencies are built.
