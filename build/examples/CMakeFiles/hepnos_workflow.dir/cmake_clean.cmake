file(REMOVE_RECURSE
  "CMakeFiles/hepnos_workflow.dir/hepnos_workflow.cpp.o"
  "CMakeFiles/hepnos_workflow.dir/hepnos_workflow.cpp.o.d"
  "hepnos_workflow"
  "hepnos_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
