# Empty dependencies file for hepnos_workflow.
# This may be replaced when dependencies are built.
