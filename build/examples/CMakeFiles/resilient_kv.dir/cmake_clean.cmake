file(REMOVE_RECURSE
  "CMakeFiles/resilient_kv.dir/resilient_kv.cpp.o"
  "CMakeFiles/resilient_kv.dir/resilient_kv.cpp.o.d"
  "resilient_kv"
  "resilient_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
