# Empty dependencies file for resilient_kv.
# This may be replaced when dependencies are built.
