file(REMOVE_RECURSE
  "CMakeFiles/bench_raft.dir/bench_raft.cpp.o"
  "CMakeFiles/bench_raft.dir/bench_raft.cpp.o.d"
  "bench_raft"
  "bench_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
