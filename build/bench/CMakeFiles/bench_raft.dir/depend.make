# Empty dependencies file for bench_raft.
# This may be replaced when dependencies are built.
