# Empty dependencies file for bench_ult.
# This may be replaced when dependencies are built.
