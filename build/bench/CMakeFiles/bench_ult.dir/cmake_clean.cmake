file(REMOVE_RECURSE
  "CMakeFiles/bench_ult.dir/bench_ult.cpp.o"
  "CMakeFiles/bench_ult.dir/bench_ult.cpp.o.d"
  "bench_ult"
  "bench_ult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
