
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_shutdown.cpp" "bench/CMakeFiles/bench_shutdown.dir/bench_shutdown.cpp.o" "gcc" "bench/CMakeFiles/bench_shutdown.dir/bench_shutdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/margo/CMakeFiles/mochi_margo.dir/DependInfo.cmake"
  "/root/repo/build/src/mercury/CMakeFiles/mochi_mercury.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/mochi_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mochi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
