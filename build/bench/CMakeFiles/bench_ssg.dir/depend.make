# Empty dependencies file for bench_ssg.
# This may be replaced when dependencies are built.
