file(REMOVE_RECURSE
  "CMakeFiles/bench_ssg.dir/bench_ssg.cpp.o"
  "CMakeFiles/bench_ssg.dir/bench_ssg.cpp.o.d"
  "bench_ssg"
  "bench_ssg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
