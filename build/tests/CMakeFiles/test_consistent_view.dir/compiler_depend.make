# Empty compiler generated dependencies file for test_consistent_view.
# This may be replaced when dependencies are built.
