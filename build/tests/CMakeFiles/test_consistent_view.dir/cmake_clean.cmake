file(REMOVE_RECURSE
  "CMakeFiles/test_consistent_view.dir/test_consistent_view.cpp.o"
  "CMakeFiles/test_consistent_view.dir/test_consistent_view.cpp.o.d"
  "test_consistent_view"
  "test_consistent_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistent_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
