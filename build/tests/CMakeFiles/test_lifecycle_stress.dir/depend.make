# Empty dependencies file for test_lifecycle_stress.
# This may be replaced when dependencies are built.
