file(REMOVE_RECURSE
  "CMakeFiles/test_lifecycle_stress.dir/test_lifecycle_stress.cpp.o"
  "CMakeFiles/test_lifecycle_stress.dir/test_lifecycle_stress.cpp.o.d"
  "test_lifecycle_stress"
  "test_lifecycle_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifecycle_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
