
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lifecycle_stress.cpp" "tests/CMakeFiles/test_lifecycle_stress.dir/test_lifecycle_stress.cpp.o" "gcc" "tests/CMakeFiles/test_lifecycle_stress.dir/test_lifecycle_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/margo/CMakeFiles/mochi_margo.dir/DependInfo.cmake"
  "/root/repo/build/src/remi/CMakeFiles/mochi_remi.dir/DependInfo.cmake"
  "/root/repo/build/src/ssg/CMakeFiles/mochi_ssg.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock/CMakeFiles/mochi_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/mercury/CMakeFiles/mochi_mercury.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/mochi_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mochi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
