file(REMOVE_RECURSE
  "CMakeFiles/test_yokan.dir/test_yokan.cpp.o"
  "CMakeFiles/test_yokan.dir/test_yokan.cpp.o.d"
  "test_yokan"
  "test_yokan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yokan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
