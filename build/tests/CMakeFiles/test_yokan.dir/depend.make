# Empty dependencies file for test_yokan.
# This may be replaced when dependencies are built.
