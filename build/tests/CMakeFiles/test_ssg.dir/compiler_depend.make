# Empty compiler generated dependencies file for test_ssg.
# This may be replaced when dependencies are built.
