file(REMOVE_RECURSE
  "CMakeFiles/test_ssg.dir/test_ssg.cpp.o"
  "CMakeFiles/test_ssg.dir/test_ssg.cpp.o.d"
  "test_ssg"
  "test_ssg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
