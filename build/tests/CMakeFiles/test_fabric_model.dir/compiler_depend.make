# Empty compiler generated dependencies file for test_fabric_model.
# This may be replaced when dependencies are built.
