file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_model.dir/test_fabric_model.cpp.o"
  "CMakeFiles/test_fabric_model.dir/test_fabric_model.cpp.o.d"
  "test_fabric_model"
  "test_fabric_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
