file(REMOVE_RECURSE
  "CMakeFiles/test_remi.dir/test_remi.cpp.o"
  "CMakeFiles/test_remi.dir/test_remi.cpp.o.d"
  "test_remi"
  "test_remi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
