# Empty compiler generated dependencies file for test_remi.
# This may be replaced when dependencies are built.
