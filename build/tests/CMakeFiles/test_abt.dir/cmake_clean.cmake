file(REMOVE_RECURSE
  "CMakeFiles/test_abt.dir/test_abt.cpp.o"
  "CMakeFiles/test_abt.dir/test_abt.cpp.o.d"
  "test_abt"
  "test_abt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
