file(REMOVE_RECURSE
  "CMakeFiles/test_warabi.dir/test_warabi.cpp.o"
  "CMakeFiles/test_warabi.dir/test_warabi.cpp.o.d"
  "test_warabi"
  "test_warabi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warabi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
