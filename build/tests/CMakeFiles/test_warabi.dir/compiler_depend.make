# Empty compiler generated dependencies file for test_warabi.
# This may be replaced when dependencies are built.
