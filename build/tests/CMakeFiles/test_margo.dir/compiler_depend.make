# Empty compiler generated dependencies file for test_margo.
# This may be replaced when dependencies are built.
