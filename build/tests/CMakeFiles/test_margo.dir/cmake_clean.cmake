file(REMOVE_RECURSE
  "CMakeFiles/test_margo.dir/test_margo.cpp.o"
  "CMakeFiles/test_margo.dir/test_margo.cpp.o.d"
  "test_margo"
  "test_margo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_margo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
