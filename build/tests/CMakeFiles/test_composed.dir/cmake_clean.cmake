file(REMOVE_RECURSE
  "CMakeFiles/test_composed.dir/test_composed.cpp.o"
  "CMakeFiles/test_composed.dir/test_composed.cpp.o.d"
  "test_composed"
  "test_composed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
