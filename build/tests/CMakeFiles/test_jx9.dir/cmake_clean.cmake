file(REMOVE_RECURSE
  "CMakeFiles/test_jx9.dir/test_jx9.cpp.o"
  "CMakeFiles/test_jx9.dir/test_jx9.cpp.o.d"
  "test_jx9"
  "test_jx9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jx9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
