# Empty compiler generated dependencies file for test_jx9.
# This may be replaced when dependencies are built.
