file(REMOVE_RECURSE
  "CMakeFiles/test_raft.dir/test_raft.cpp.o"
  "CMakeFiles/test_raft.dir/test_raft.cpp.o.d"
  "test_raft"
  "test_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
