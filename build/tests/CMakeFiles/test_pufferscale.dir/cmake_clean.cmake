file(REMOVE_RECURSE
  "CMakeFiles/test_pufferscale.dir/test_pufferscale.cpp.o"
  "CMakeFiles/test_pufferscale.dir/test_pufferscale.cpp.o.d"
  "test_pufferscale"
  "test_pufferscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pufferscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
