# Empty dependencies file for test_pufferscale.
# This may be replaced when dependencies are built.
