file(REMOVE_RECURSE
  "CMakeFiles/test_poesie.dir/test_poesie.cpp.o"
  "CMakeFiles/test_poesie.dir/test_poesie.cpp.o.d"
  "test_poesie"
  "test_poesie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poesie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
