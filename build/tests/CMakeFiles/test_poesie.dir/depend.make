# Empty dependencies file for test_poesie.
# This may be replaced when dependencies are built.
