# Empty dependencies file for test_bedrock.
# This may be replaced when dependencies are built.
