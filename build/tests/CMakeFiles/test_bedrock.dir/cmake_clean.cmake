file(REMOVE_RECURSE
  "CMakeFiles/test_bedrock.dir/test_bedrock.cpp.o"
  "CMakeFiles/test_bedrock.dir/test_bedrock.cpp.o.d"
  "test_bedrock"
  "test_bedrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bedrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
