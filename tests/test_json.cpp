// Unit tests for the JSON substrate (parser, writer, accessors, hashing).
#include "common/json.hpp"

#include <gtest/gtest.h>

using mochi::json::Value;
using mochi::json::Type;

TEST(Json, ParseScalars) {
    EXPECT_TRUE(Value::parse("null")->is_null());
    EXPECT_EQ(Value::parse("true")->as_bool(), true);
    EXPECT_EQ(Value::parse("false")->as_bool(), false);
    EXPECT_EQ(Value::parse("42")->as_integer(), 42);
    EXPECT_EQ(Value::parse("-17")->as_integer(), -17);
    EXPECT_DOUBLE_EQ(Value::parse("3.5")->as_real(), 3.5);
    EXPECT_DOUBLE_EQ(Value::parse("1e3")->as_real(), 1000.0);
    EXPECT_DOUBLE_EQ(Value::parse("-2.5e-2")->as_real(), -0.025);
    EXPECT_EQ(Value::parse("\"hello\"")->as_string(), "hello");
}

TEST(Json, ParseStructures) {
    auto v = Value::parse(R"({"a": [1, 2, 3], "b": {"c": "d"}, "e": null})");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->is_object());
    EXPECT_EQ((*v)["a"].size(), 3u);
    EXPECT_EQ((*v)["a"][1u].as_integer(), 2);
    EXPECT_EQ((*v)["b"]["c"].as_string(), "d");
    EXPECT_TRUE((*v)["e"].is_null());
    EXPECT_TRUE(v->contains("e"));
    EXPECT_FALSE(v->contains("zz"));
}

TEST(Json, ParseStringEscapes) {
    auto v = Value::parse(R"("a\"b\\c\/d\b\f\n\r\t")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_string(), "a\"b\\c/d\b\f\n\r\t");
    auto u = Value::parse(R"("Aé中😀")");
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->as_string(), "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
}

TEST(Json, ParseErrors) {
    EXPECT_FALSE(Value::parse("").has_value());
    EXPECT_FALSE(Value::parse("{").has_value());
    EXPECT_FALSE(Value::parse("[1,").has_value());
    EXPECT_FALSE(Value::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(Value::parse("tru").has_value());
    EXPECT_FALSE(Value::parse("1 2").has_value());
    EXPECT_FALSE(Value::parse("\"unterminated").has_value());
    EXPECT_FALSE(Value::parse("\"bad \\q escape\"").has_value());
    EXPECT_FALSE(Value::parse("-").has_value());
    // Parse errors carry an offset.
    auto e = Value::parse("[1, }");
    ASSERT_FALSE(e.has_value());
    EXPECT_NE(e.error().message.find("offset"), std::string::npos);
}

TEST(Json, DeepNestingRejected) {
    std::string deep(10000, '[');
    deep += std::string(10000, ']');
    EXPECT_FALSE(Value::parse(deep).has_value());
}

TEST(Json, RoundTrip) {
    const char* docs[] = {
        R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})",
        R"([])",
        R"({})",
        R"([[[1]]])",
        R"({"empty_arr":[],"empty_obj":{}})",
    };
    for (const char* doc : docs) {
        auto v = Value::parse(doc);
        ASSERT_TRUE(v.has_value()) << doc;
        auto v2 = Value::parse(v->dump());
        ASSERT_TRUE(v2.has_value()) << doc;
        EXPECT_EQ(*v, *v2) << doc;
    }
}

TEST(Json, PrettyDumpParsesBack) {
    auto v = Value::parse(R"({"a":[1,2],"b":{"c":"d"}})");
    auto pretty = v->dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    auto v2 = Value::parse(pretty);
    ASSERT_TRUE(v2.has_value());
    EXPECT_EQ(*v, *v2);
}

TEST(Json, BuildersAndMutation) {
    Value v;
    v["name"] = "provider_a";
    v["pool"]["size"] = 4;
    v["tags"].push_back("kv");
    v["tags"].push_back("store");
    EXPECT_EQ(v["name"].as_string(), "provider_a");
    EXPECT_EQ(v["pool"]["size"].as_integer(), 4);
    EXPECT_EQ(v["tags"].size(), 2u);
    EXPECT_TRUE(v.erase("name"));
    EXPECT_FALSE(v.erase("name"));
    EXPECT_FALSE(v.contains("name"));
}

TEST(Json, TypedGetters) {
    auto v = *Value::parse(R"({"s":"x","i":7,"r":2.5,"b":true})");
    EXPECT_EQ(v.get_string("s"), "x");
    EXPECT_EQ(v.get_string("nope", "def"), "def");
    EXPECT_EQ(v.get_integer("i"), 7);
    EXPECT_EQ(v.get_integer("nope", -1), -1);
    EXPECT_DOUBLE_EQ(v.get_real("r"), 2.5);
    EXPECT_DOUBLE_EQ(v.get_real("i"), 7.0); // numeric coercion
    EXPECT_TRUE(v.get_bool("b"));
    EXPECT_TRUE(v.get_bool("nope", true));
}

TEST(Json, NumericEquality) {
    EXPECT_EQ(*Value::parse("3"), *Value::parse("3.0"));
    EXPECT_NE(*Value::parse("3"), *Value::parse("4"));
    EXPECT_NE(*Value::parse("3"), *Value::parse("\"3\""));
}

TEST(Json, IntegerOverflowBecomesReal) {
    auto v = Value::parse("99999999999999999999999999");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->is_real());
}

TEST(Json, HashStableAndDiscriminating) {
    auto a = *Value::parse(R"({"x":1,"y":[2,3]})");
    auto b = *Value::parse(R"({"y":[2,3],"x":1})"); // same content, same sorted dump
    auto c = *Value::parse(R"({"x":1,"y":[2,4]})");
    EXPECT_EQ(mochi::json::hash(a), mochi::json::hash(b));
    EXPECT_NE(mochi::json::hash(a), mochi::json::hash(c));
}

TEST(Json, ControlCharactersEscapedInDump) {
    Value v{std::string("a\x01" "b\nc")};
    auto s = v.dump();
    EXPECT_EQ(s, "\"a\\u0001b\\nc\"");
    EXPECT_EQ(Value::parse(s)->as_string(), v.as_string());
}

TEST(Json, ConstAccessMissingKeyIsNullAndDoesNotInsert) {
    const Value v = *Value::parse(R"({"a":1})");
    EXPECT_TRUE(v["missing"].is_null());
    EXPECT_EQ(v.size(), 1u);
}
