// Tests for Pufferscale (§6 Obs. 6): rescale planning, balance quality, the
// load/data/time objective tradeoff, and dependency-injected execution.
#include "pufferscale/rebalancer.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace mochi;
using namespace mochi::pufferscale;

namespace {

std::vector<Resource> uniform_resources(int count, int nodes, double load = 10,
                                        double size = 100) {
    std::vector<Resource> out;
    for (int i = 0; i < count; ++i)
        out.push_back(Resource{"r" + std::to_string(i), "n" + std::to_string(i % nodes),
                               load, size});
    return out;
}

std::vector<std::string> node_names(int n, int first = 0) {
    std::vector<std::string> out;
    for (int i = first; i < first + n; ++i) out.push_back("n" + std::to_string(i));
    return out;
}

} // namespace

TEST(Pufferscale, EvaluateMetrics) {
    std::vector<Resource> rs = {
        {"a", "n0", 10, 100}, {"b", "n0", 10, 100}, {"c", "n1", 10, 100}};
    auto m = evaluate(rs, node_names(2), {});
    // n0 carries 2/3 of everything, mean is 1.5 units -> max/mean - 1 = 1/3.
    EXPECT_NEAR(m.load_imbalance, 1.0 / 3, 1e-9);
    EXPECT_NEAR(m.data_imbalance, 1.0 / 3, 1e-9);
    // Perfectly balanced:
    std::vector<Resource> balanced = {{"a", "n0", 10, 100}, {"b", "n1", 10, 100}};
    EXPECT_NEAR(evaluate(balanced, node_names(2), {}).objective, 0.0, 1e-9);
}

TEST(Pufferscale, InvalidInputsRejected) {
    EXPECT_FALSE(plan_rescale({}, {}, {}).has_value());
    std::vector<Resource> dup = {{"a", "n0", 1, 1}, {"a", "n1", 1, 1}};
    EXPECT_FALSE(plan_rescale(dup, node_names(2), {}).has_value());
    std::vector<Resource> neg = {{"a", "n0", -1, 1}};
    EXPECT_FALSE(plan_rescale(neg, node_names(1), {}).has_value());
}

TEST(Pufferscale, ScaleUpSpreadsResources) {
    // 12 resources on 2 nodes -> 4 nodes: expect near-perfect balance.
    auto rs = uniform_resources(12, 2);
    auto plan = plan_rescale(rs, node_names(4), {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_GT(plan->moves.size(), 0u);
    EXPECT_LT(plan->after.load_imbalance, 0.01);
    EXPECT_LT(plan->after.data_imbalance, 0.01);
    EXPECT_LT(plan->after.objective, plan->before.objective);
    // Scale-up should move roughly half the resources, not more.
    EXPECT_LE(plan->moves.size(), 6u);
}

TEST(Pufferscale, ScaleDownEvacuatesRemovedNodes) {
    auto rs = uniform_resources(12, 4);
    auto plan = plan_rescale(rs, node_names(2), {}); // n2, n3 removed
    ASSERT_TRUE(plan.has_value());
    // All resources from n2/n3 are moved onto surviving nodes.
    for (const auto& m : plan->moves) {
        EXPECT_TRUE(m.to == "n0" || m.to == "n1") << m.to;
    }
    std::size_t evacuated = 0;
    for (const auto& m : plan->moves)
        if (m.from == "n2" || m.from == "n3") ++evacuated;
    EXPECT_EQ(evacuated, 6u);
    EXPECT_LT(plan->after.load_imbalance, 0.01);
}

TEST(Pufferscale, HeterogeneousResourcesBalanceWell) {
    std::mt19937 rng{42};
    std::uniform_real_distribution<double> load_dist{1, 100}, size_dist{10, 1000};
    std::vector<Resource> rs;
    for (int i = 0; i < 64; ++i)
        rs.push_back(Resource{"r" + std::to_string(i), "n" + std::to_string(i % 3),
                              load_dist(rng), size_dist(rng)});
    // With the default objectives (which charge for bytes moved), the plan
    // is a compromise: close to balanced, not perfect.
    auto plan = plan_rescale(rs, node_names(8), {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_LT(plan->after.load_imbalance, 0.35);
    EXPECT_LT(plan->after.data_imbalance, 0.35);
    // With free migrations the greedy must balance tightly in both
    // dimensions simultaneously.
    Objectives free_moves;
    free_moves.w_time = 0.0;
    auto tight = plan_rescale(rs, node_names(8), free_moves);
    ASSERT_TRUE(tight.has_value());
    EXPECT_LT(tight->after.load_imbalance, 0.2);
    EXPECT_LT(tight->after.data_imbalance, 0.2);
    EXPECT_GE(tight->after.bytes_moved, plan->after.bytes_moved);
}

TEST(Pufferscale, TimeWeightTradesBalanceForFewerMoves) {
    auto rs = uniform_resources(32, 2);
    Objectives cheap_moves;
    cheap_moves.w_time = 0.0;
    Objectives costly_moves;
    costly_moves.w_time = 50.0;
    auto plan_cheap = plan_rescale(rs, node_names(4), cheap_moves);
    auto plan_costly = plan_rescale(rs, node_names(4), costly_moves);
    ASSERT_TRUE(plan_cheap.has_value());
    ASSERT_TRUE(plan_costly.has_value());
    // With expensive migration, the planner moves less data (the paper's
    // "compromise between these three objectives").
    EXPECT_LE(plan_costly->after.bytes_moved, plan_cheap->after.bytes_moved);
    // And accepts worse balance in exchange.
    EXPECT_GE(plan_costly->after.load_imbalance, plan_cheap->after.load_imbalance);
}

TEST(Pufferscale, PureLoadObjectiveIgnoresData) {
    // Two resources: one hot & small, one cold & big, plus fillers.
    std::vector<Resource> rs = {
        {"hot", "n0", 100, 1}, {"cold", "n0", 1, 1000},
        {"f1", "n1", 50, 500}, {"f2", "n1", 51, 501},
    };
    Objectives load_only;
    load_only.w_load = 1.0;
    load_only.w_data = 0.0;
    load_only.w_time = 0.0;
    auto plan = plan_rescale(rs, node_names(2), load_only);
    ASSERT_TRUE(plan.has_value());
    EXPECT_LT(plan->after.load_imbalance, 0.02);
}

TEST(Pufferscale, AlreadyBalancedPlansNoMoves) {
    auto rs = uniform_resources(8, 4);
    auto plan = plan_rescale(rs, node_names(4), {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->moves.empty());
    EXPECT_NEAR(plan->after.objective, 0.0, 1e-9);
}

TEST(Pufferscale, ExecuteCallsInjectedMigrateInPlanOrder) {
    auto rs = uniform_resources(6, 3);
    auto plan = plan_rescale(rs, node_names(2), {});
    ASSERT_TRUE(plan.has_value());
    ASSERT_FALSE(plan->moves.empty());
    std::vector<std::string> migrated;
    auto st = execute(*plan, [&](const Move& m) -> Status {
        migrated.push_back(m.resource + ":" + m.from + "->" + m.to);
        return {};
    });
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(migrated.size(), plan->moves.size());
}

TEST(Pufferscale, ExecuteStopsOnFirstFailure) {
    auto rs = uniform_resources(8, 4);
    auto plan = plan_rescale(rs, node_names(2), {});
    ASSERT_TRUE(plan.has_value());
    ASSERT_GE(plan->moves.size(), 2u);
    int calls = 0;
    auto st = execute(*plan, [&](const Move&) -> Status {
        if (++calls == 2) return Error{Error::Code::Unreachable, "node died"};
        return {};
    });
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(calls, 2);
}

TEST(Pufferscale, SingleNodeTargetGathersEverything) {
    auto rs = uniform_resources(6, 3);
    auto plan = plan_rescale(rs, {"n0"}, {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->moves.size(), 4u); // everything not already on n0
    for (const auto& m : plan->moves) EXPECT_EQ(m.to, "n0");
    // One node: imbalance is 0 by definition.
    EXPECT_NEAR(plan->after.load_imbalance, 0.0, 1e-9);
}
