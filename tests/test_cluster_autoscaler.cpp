// Tests for the closed-loop cluster elasticity controller.
//
// The decision core (AutoscalePolicy) is pure — snapshots in, one action
// out — so its damping behaviors (hysteresis, cooldown, the anti-flap dead
// band, the idle gate) are pinned here with injected snapshots, no cluster
// required. The live half is covered by a lightweight-node scale test (the
// shared-executor refactor that makes 100+ margo instances cheap) and a
// 100-node convergence run: a skewed workload heats one shard, the control
// loop must detect it from scraped metrics, split it, and settle, with zero
// client-visible errors throughout.
#include "composed/cluster_autoscaler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

using namespace mochi;
using namespace mochi::composed;
using namespace std::chrono_literals;

namespace {

/// Snapshot builder: shards[i] = {ops, node index}; nodes get their ops from
/// the shards they host unless overridden.
ClusterSnapshot snap(const std::vector<std::pair<double, int>>& shards,
                     int num_nodes, double pool_depth = 0) {
    ClusterSnapshot s;
    for (int n = 0; n < num_nodes; ++n) {
        NodeStats ns;
        ns.address = "sim://n" + std::to_string(n);
        ns.pool_depth = pool_depth;
        s.nodes.push_back(std::move(ns));
    }
    std::uint32_t id = 0;
    for (const auto& [ops, node] : shards) {
        ShardStats ss;
        ss.id = id++;
        ss.node = "sim://n" + std::to_string(node);
        ss.ops = ops;
        s.shards.push_back(ss);
        s.nodes[static_cast<std::size_t>(node)].ops += ops;
        ++s.nodes[static_cast<std::size_t>(node)].shards;
    }
    return s;
}

PolicyConfig test_policy() {
    PolicyConfig cfg;
    cfg.hysteresis = 2;
    cfg.cooldown = 3;
    cfg.hot_shard_factor = 4.0;
    cfg.min_hot_ops = 64.0;
    cfg.cold_shard_factor = 0.1;
    cfg.min_total_ops = 16.0;
    return cfg;
}

int count_threads() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line))
        if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
    return -1;
}

} // namespace

// ---------------------------------------------------------------------------
// AutoscalePolicy: injected-snapshot decision tests
// ---------------------------------------------------------------------------

TEST(AutoscalePolicy, HysteresisDelaysSplitUntilSignalPersists) {
    AutoscalePolicy policy{test_policy()};
    // Shard 0 is far above 4x the mean — but one hot period must not act.
    auto hot = snap({{1000, 0}, {10, 0}, {10, 1}, {10, 1}}, 2);
    EXPECT_EQ(policy.decide(hot).kind, ActionKind::None);
    auto action = policy.decide(hot);
    EXPECT_EQ(action.kind, ActionKind::SplitShard);
    EXPECT_EQ(action.shard, 0u);
    // Child placed on the least-loaded *other* node, not the hot host.
    EXPECT_EQ(action.node, "sim://n1");
}

TEST(AutoscalePolicy, TransientSpikeNeverFires) {
    AutoscalePolicy policy{test_policy()};
    auto hot = snap({{1000, 0}, {10, 1}}, 2);
    auto calm = snap({{50, 0}, {50, 1}}, 2);
    // Oscillating load (hot, calm, hot, calm, ...) resets the streak every
    // other period: with hysteresis 2 the policy must never act.
    for (int round = 0; round < 20; ++round) {
        auto a = policy.decide(round % 2 == 0 ? hot : calm);
        EXPECT_EQ(a.kind, ActionKind::None) << "round " << round;
    }
}

TEST(AutoscalePolicy, CooldownBlocksAndResetsHysteresis) {
    auto cfg = test_policy();
    AutoscalePolicy policy{cfg};
    auto hot = snap({{1000, 0}, {10, 0}, {10, 1}, {10, 1}}, 2);
    EXPECT_EQ(policy.decide(hot).kind, ActionKind::None);
    EXPECT_EQ(policy.decide(hot).kind, ActionKind::SplitShard);
    // Cooldown periods: identical pressure, no action.
    for (std::size_t i = 0; i < cfg.cooldown; ++i)
        EXPECT_EQ(policy.decide(hot).kind, ActionKind::None) << "cooldown " << i;
    // After cooldown the streak restarts from zero: hysteresis-1 more quiet
    // periods, then the action fires again.
    EXPECT_EQ(policy.decide(hot).kind, ActionKind::None);
    EXPECT_EQ(policy.decide(hot).kind, ActionKind::SplitShard);
}

TEST(AutoscalePolicy, IdleClusterTakesNoActions) {
    AutoscalePolicy policy{test_policy()};
    // Total load below min_total_ops: shard 1 is relatively "cold" (0 ops
    // vs mean ~3) but an idle cluster must not be reshaped.
    auto idle = snap({{6, 0}, {0, 1}, {6, 1}}, 2);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(policy.decide(idle).kind, ActionKind::None);
}

TEST(AutoscalePolicy, MergesPersistentlyColdShard) {
    AutoscalePolicy policy{test_policy()};
    // Mean = 250; shard 3 at 2 ops < 0.1 * mean. Hot threshold (4x mean)
    // not reached by anyone.
    auto cold = snap({{330, 0}, {330, 0}, {330, 1}, {2, 1}}, 2);
    EXPECT_EQ(policy.decide(cold).kind, ActionKind::None);
    auto action = policy.decide(cold);
    EXPECT_EQ(action.kind, ActionKind::MergeShard);
    EXPECT_EQ(action.shard, 3u);
}

TEST(AutoscalePolicy, MinShardsBlocksMerge) {
    auto cfg = test_policy();
    cfg.min_shards = 4;
    AutoscalePolicy policy{cfg};
    auto cold = snap({{330, 0}, {330, 0}, {330, 1}, {2, 1}}, 2);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(policy.decide(cold).kind, ActionKind::None);
}

TEST(AutoscalePolicy, MaxShardsBlocksSplit) {
    auto cfg = test_policy();
    cfg.max_shards = 2;
    AutoscalePolicy policy{cfg};
    auto hot = snap({{1000, 0}, {10, 1}}, 2);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(policy.decide(hot).kind, ActionKind::None);
}

TEST(AutoscalePolicy, DeepPoolsGrowTheNodeSet) {
    auto cfg = test_policy();
    cfg.node_add_depth = 32.0;
    AutoscalePolicy policy{cfg};
    // Balanced shards (no split candidate) but saturated pools.
    auto deep = snap({{100, 0}, {100, 1}}, 2, /*pool_depth=*/80.0);
    EXPECT_EQ(policy.decide(deep).kind, ActionKind::None);
    EXPECT_EQ(policy.decide(deep).kind, ActionKind::AddNode);
    // Cooldown, then it may fire again — unless max_nodes caps it.
    AutoscalePolicy capped{[&] {
        auto c = cfg;
        c.max_nodes = 2;
        return c;
    }()};
    for (int i = 0; i < 6; ++i) EXPECT_EQ(capped.decide(deep).kind, ActionKind::None);
}

TEST(AutoscalePolicy, RemovesPersistentlyIdleNode) {
    auto cfg = test_policy();
    cfg.min_nodes = 1;
    AutoscalePolicy policy{cfg};
    // Node 2 hosts nothing and serves ~nothing; shards are balanced and no
    // pool is deep, so the only applicable action is releasing the node.
    auto lopsided = snap({{100, 0}, {100, 0}, {100, 1}, {100, 1}}, 3);
    EXPECT_EQ(policy.decide(lopsided).kind, ActionKind::None);
    auto action = policy.decide(lopsided);
    EXPECT_EQ(action.kind, ActionKind::RemoveNode);
    EXPECT_EQ(action.node, "sim://n2");
}

TEST(AutoscalePolicy, SplitOutranksReclamation) {
    AutoscalePolicy policy{test_policy()};
    // Hot shard AND an idle node at once: pressure relief wins.
    auto both = snap({{1000, 0}, {10, 0}, {10, 1}, {10, 1}}, 3);
    EXPECT_EQ(policy.decide(both).kind, ActionKind::None);
    EXPECT_EQ(policy.decide(both).kind, ActionKind::SplitShard);
}

// ---------------------------------------------------------------------------
// Lightweight nodes: the shared-executor refactor
// ---------------------------------------------------------------------------

TEST(LightweightNodes, FortyNodesShareAFixedThreadCrew) {
    Cluster cluster;
    cluster.set_lightweight_nodes(true);
    int before = count_threads();
    ASSERT_GT(before, 0);
    ElasticKvConfig cfg;
    cfg.num_shards = 8;
    cfg.enable_swim = false;
    std::vector<std::string> addresses;
    for (int i = 0; i < 40; ++i) addresses.push_back("sim://lw" + std::to_string(i));
    auto svc = ElasticKvService::create(cluster, addresses, cfg);
    ASSERT_TRUE(svc.has_value()) << svc.error().message;
    int after = count_threads();
    // 40 full-weight nodes would cost >= 80 threads (one ES + one timer
    // each, plus handler pools). The shared executor caps the crew at 8
    // workers + 1 timer; leave slack for the controller instance and the
    // progress machinery, but the count must not scale with the node count.
    EXPECT_LT(after - before, 24) << "before=" << before << " after=" << after;

    // The virtual xstreams must actually serve traffic end to end.
    auto app = margo::Instance::create(cluster.fabric(), "sim://lw-app").value();
    ElasticKvClient client{app, (*svc)->controller_address()};
    for (int i = 0; i < 64; ++i)
        ASSERT_TRUE(client.put("lk" + std::to_string(i), "v" + std::to_string(i)).ok());
    for (int i = 0; i < 64; ++i) {
        auto got = client.get("lk" + std::to_string(i));
        ASSERT_TRUE(got.has_value()) << got.error().message;
        EXPECT_EQ(*got, "v" + std::to_string(i));
    }
    app->shutdown();
}

// ---------------------------------------------------------------------------
// 100-node convergence under the live control loop
// ---------------------------------------------------------------------------

TEST(ClusterAutoscalerLive, HundredNodeHotShardConvergence) {
    Cluster cluster;
    cluster.set_lightweight_nodes(true);
    ElasticKvConfig cfg;
    cfg.num_shards = 8;
    cfg.enable_swim = false;
    std::vector<std::string> addresses;
    for (int i = 0; i < 100; ++i) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "sim://c%03d", i);
        addresses.emplace_back(buf);
    }
    auto svc = ElasticKvService::create(cluster, addresses, cfg);
    ASSERT_TRUE(svc.has_value()) << svc.error().message;
    auto& kv = **svc;

    // Collect keys that all route to one shard: the workload below makes it
    // hot while the rest of the ring stays lukewarm.
    const std::uint32_t hot_shard = kv.shard_of("hot-seed");
    std::vector<std::string> hot_keys;
    for (int i = 0; hot_keys.size() < 24; ++i) {
        auto k = "h" + std::to_string(i);
        if (kv.shard_of(k) == hot_shard) hot_keys.push_back(k);
    }

    auto app = margo::Instance::create(cluster.fabric(), "sim://conv-app").value();
    std::atomic<bool> done{false};
    std::atomic<int> client_errors{0}, batches{0};
    std::thread load{[&] {
        ElasticKvClient client{app, kv.controller_address()};
        int round = 0;
        while (!done.load()) {
            std::vector<std::pair<std::string, std::string>> pairs;
            for (const auto& k : hot_keys) pairs.emplace_back(k, "r" + std::to_string(round));
            // A sprinkle of uniform background traffic keeps the mean > 0.
            for (int i = 0; i < 8; ++i)
                pairs.emplace_back("b" + std::to_string((round * 8 + i) % 512), "x");
            if (auto st = client.put_multi(pairs); !st.ok()) {
                ++client_errors;
                ADD_FAILURE() << "put_multi: " << st.error().message;
            }
            std::vector<std::string> keys = hot_keys;
            if (auto got = client.get_multi(keys); !got.has_value()) {
                ++client_errors;
                ADD_FAILURE() << "get_multi: " << got.error().message;
            }
            ++round;
            ++batches;
        }
    }};

    ClusterAutoscalerConfig acfg;
    acfg.policy.hot_shard_factor = 3.0;
    acfg.policy.min_hot_ops = 24.0;
    acfg.policy.min_total_ops = 8.0;
    acfg.policy.hysteresis = 2;
    acfg.policy.cooldown = 2;
    acfg.policy.max_shards = 16;
    ClusterAutoscaler scaler{cluster, kv, acfg};

    // Drive the control loop deterministically: one step per period. The
    // loop has converged when it split the hot shard and then stayed quiet
    // for a full damping window (cooldown + hysteresis + 1 periods).
    constexpr int k_max_periods = 60;
    const int quiet_needed =
        static_cast<int>(acfg.policy.cooldown + acfg.policy.hysteresis) + 1;
    int converged_at = -1, quiet = 0;
    for (int period = 0; period < k_max_periods; ++period) {
        std::this_thread::sleep_for(50ms);
        Action a = scaler.step();
        if (a.kind == ActionKind::None)
            ++quiet;
        else
            quiet = 0;
        if (scaler.stats().splits >= 1 && quiet >= quiet_needed) {
            converged_at = period;
            break;
        }
    }
    done.store(true);
    load.join();

    auto stats = scaler.stats();
    EXPECT_GE(stats.splits, 1u) << "hot shard was never split";
    EXPECT_GE(converged_at, 0) << "loop did not settle within " << k_max_periods
                               << " periods (splits=" << stats.splits << ")";
    EXPECT_EQ(client_errors.load(), 0);
    EXPECT_GT(batches.load(), 0);
    EXPECT_GT(kv.num_shards(), 8u);
    // The child half must have left the hot node: the split sheds load.
    const auto layout = kv.layout();
    std::set<std::string> hosts;
    for (const auto& s : layout.shards()) hosts.insert(s.node);
    EXPECT_GE(hosts.size(), 2u);
    app->shutdown();
}
